//! The §10 future-work feature: spreading a linked-list walk across
//! processors with a serialized pointer chase.
//!
//! ```sh
//! cargo run --example list_spreading
//! ```

use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const SRC: &str = include_str!("../corpus/listwalk.c");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spread = compile(
        SRC,
        &Options {
            spread_lists: true,
            ..Options::parallel()
        },
    )?;
    println!(
        "list loops spread: {} (the work procedure and its inlined copy)",
        spread.reports.spread.spread
    );
    let work = spread.program.proc_by_name("work").unwrap();
    println!("{}", titanc_repro::il::pretty_proc(work));

    let baseline = compile(SRC, &Options::parallel())?;
    for procs in [1u32, 2, 4] {
        let mut sim = Simulator::new(&baseline.program, MachineConfig::optimized(procs));
        let b = sim.run("main", &[])?.stats;
        let mut sim = Simulator::new(&spread.program, MachineConfig::optimized(procs));
        let r = sim.run("main", &[])?;
        println!(
            "{procs} proc(s): spread {:.0} cycles vs unspread {:.0} — speedup {:.2}x, result {}",
            r.stats.cycles,
            b.cycles,
            b.cycles / r.stats.cycles,
            r.value.unwrap().as_int()
        );
    }
    Ok(())
}
