//! The §1 volatile example: a device-polling loop that must survive every
//! optimization phase, demonstrated by scripting the "keyboard status
//! register" from outside the program.
//!
//! ```sh
//! cargo run --example device_poll
//! ```

use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const SRC: &str = r#"
volatile int keyboard_status;

int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);     /* looks infinite -- volatile makes it legal */
    return keyboard_status;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = compile(SRC, &Options::o2())?;
    println!(
        "optimized main (the loop must survive):\n{}",
        titanc_repro::il::pretty_proc(compiled.program.proc_by_name("main").unwrap())
    );

    let mut sim = Simulator::new(&compiled.program, MachineConfig::default());
    // the "device" writes the register on the 4th poll
    sim.push_volatile_values(&[0, 0, 0, 42]);
    let run = sim.run("main", &[])?;
    println!(
        "loop terminated after the device wrote: returned {}, {} volatile loads executed",
        run.value.unwrap().as_int(),
        run.stats.loads
    );

    // and the non-volatile variant really spins forever
    let broken = SRC.replace("volatile int", "int");
    let compiled = compile(&broken, &Options::o2())?;
    let cfg = MachineConfig {
        max_steps: 100_000,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(&compiled.program, cfg);
    match sim.run("main", &[]) {
        Err(e) => println!("without volatile: {e} (as §1 warns)"),
        Ok(_) => println!("unexpected: non-volatile loop terminated"),
    }
    Ok(())
}
