//! The §9 walkthrough: watch the paper's daxpy example move through the
//! pipeline — inlining, while→DO conversion, induction-variable
//! substitution, constant propagation, dead-code elimination,
//! vectorization and parallelization — and reproduce the "12× on two
//! processors" result.
//!
//! ```sh
//! cargo run --example daxpy_walkthrough
//! ```

use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const SRC: &str = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}

float a[100], b[100], c[100];

int main(void)
{
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = compile(
        SRC,
        &Options {
            snapshots: true,
            ..Options::parallel()
        },
    )?;

    for snap in &compiled.snapshots {
        if snap.proc == "main" {
            println!("===== main after `{}` =====\n{}", snap.phase, snap.il);
        }
    }

    // the paper's measurement: 12x over scalar on a two-processor Titan
    let scalar = compile(SRC, &Options::o1())?;
    let mut sim = Simulator::new(&scalar.program, MachineConfig::scalar());
    let s = sim.run("main", &[])?.stats;

    let mut sim = Simulator::new(&compiled.program, MachineConfig::optimized(2));
    let p = sim.run("main", &[])?.stats;

    println!(
        "scalar: {:.0} cycles | vector+parallel (2 procs): {:.0} cycles | speedup {:.1}x (paper: 12x)",
        s.cycles,
        p.cycles,
        s.cycles / p.cycles
    );
    Ok(())
}
