//! The §7 catalog workflow: compile a BLAS-1 library into a serialized
//! procedure database, then inline from it in a separate compilation —
//! "much as include directories are used as a source for header files".
//!
//! ```sh
//! cargo run --example blas_catalog
//! ```

use titanc_repro::il::Catalog;
use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const LIBRARY: &str = r#"
void blas_daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}

void blas_set(float *x, float value, int n)
{
    while (n) {
        *x++ = value;
        n--;
    }
}
"#;

const APP: &str = r#"
void blas_daxpy(float *x, float *y, float *z, float alpha, int n);
void blas_set(float *x, float value, int n);

float a[256], b[256], c[256];

int main(void)
{
    blas_set(b, 2.0f, 256);
    blas_set(c, 3.0f, 256);
    blas_daxpy(a, b, c, 2.0, 256);
    print_float(a[0]);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "compile" the library into a catalog and serialize it
    let lib = titanc_lower::compile_to_il(LIBRARY).expect("library compiles");
    let catalog = Catalog::from_program("blas", &lib);
    let dir = std::env::temp_dir().join("titanc-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("blas.catalog.json");
    catalog.save(&path)?;
    println!(
        "catalog written to {} ({} procedures)",
        path.display(),
        catalog.procs.len()
    );

    // a later compilation loads the catalog and inlines from it
    let catalog = Catalog::load(&path)?;
    let compiled = compile(
        APP,
        &Options {
            catalogs: vec![catalog],
            ..Options::parallel()
        },
    )?;
    println!(
        "inlined {} call sites, vectorized {} loops",
        compiled.reports.inline.inlined, compiled.reports.vector.vectorized
    );

    let mut sim = Simulator::new(&compiled.program, MachineConfig::optimized(2));
    let run = sim.run("main", &[])?;
    println!(
        "a[0] = {} (2 + 2*3 = 8 expected); {:.0} cycles on two processors",
        run.stats.output[0], run.stats.cycles
    );
    Ok(())
}
