//! Quickstart: compile a C kernel with full optimization and run it on the
//! simulated Titan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const SRC: &str = r#"
float a[1000], b[1000], c[1000];

int main(void)
{
    int i;
    for (i = 0; i < 1000; i++) {
        a[i] = b[i] * 2.0f + c[i];
    }
    print_float(a[999]);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile with vectorization + parallelization (the paper's full
    // pipeline: §5 conversion & substitution, §8 propagation, §5/§9
    // vectorizer).
    let compiled = compile(SRC, &Options::parallel())?;
    println!(
        "loops vectorized: {}, while loops converted: {}, induction variables substituted: {}",
        compiled.reports.vector.vectorized,
        compiled.reports.whiledo.converted,
        compiled.reports.ivsub.substituted,
    );
    println!(
        "optimized main:\n{}",
        titanc_repro::il::pretty_proc(compiled.program.proc_by_name("main").unwrap())
    );

    // Run on a two-processor Titan and on the scalar baseline.
    for procs in [1u32, 2] {
        let mut sim = Simulator::new(&compiled.program, MachineConfig::optimized(procs));
        let run = sim.run("main", &[])?;
        println!(
            "{procs} processor(s): {:.0} cycles, {:.2} MFLOPS, output {:?}",
            run.stats.cycles,
            run.stats.mflops(16.0),
            run.stats.output
        );
    }

    let baseline = compile(SRC, &Options::o1())?;
    let mut sim = Simulator::new(&baseline.program, MachineConfig::scalar());
    let run = sim.run("main", &[])?;
    println!(
        "scalar baseline: {:.0} cycles, {:.2} MFLOPS",
        run.stats.cycles,
        run.stats.mflops(16.0)
    );
    Ok(())
}
