//! The §10 graphics workload: 4×4 matrix transforms over a vertex list,
//! with the arrays embedded inside structures — the construct the Titan
//! team "originally did not put much effort into handling", a decision the
//! Doré rendering package proved poor.
//!
//! ```sh
//! cargo run --example graphics_transform
//! ```

use titanc_repro::il::ScalarType;
use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const SRC: &str = r#"
struct matrix {
    float m[4][4];
};
struct vertex {
    float v[4];
};

struct matrix xf;
struct vertex pts[256], out_pts[256];

void identity(void)
{
    int r, c;
    for (r = 0; r < 4; r++)
        for (c = 0; c < 4; c++)
            xf.m[r][c] = (r == c) ? 2.0f : 0.0f;   /* uniform scale by 2 */
}

void transform(void)
{
    int i, r, c;
    float acc;
    for (i = 0; i < 256; i++) {
        for (r = 0; r < 4; r++) {
            acc = 0.0f;
            for (c = 0; c < 4; c++)
                acc += xf.m[r][c] * pts[i].v[c];
            out_pts[i].v[r] = acc;
        }
    }
}

int main(void)
{
    int i;
    identity();
    for (i = 0; i < 256; i++) {
        pts[i].v[0] = i;
        pts[i].v[1] = i + 0.25f;
        pts[i].v[2] = i + 0.5f;
        pts[i].v[3] = 1.0f;
    }
    transform();
    print_float(out_pts[100].v[0]);
    print_float(out_pts[100].v[3]);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scalar = compile(SRC, &Options::o1())?;
    let mut sim = Simulator::new(&scalar.program, MachineConfig::scalar());
    let s = sim.run("main", &[])?.stats;

    let optimized = compile(SRC, &Options::o2())?;
    println!(
        "while->DO: {}, induction variables: {}, strength-reduced addresses: {}",
        optimized.reports.whiledo.converted,
        optimized.reports.ivsub.substituted,
        optimized.reports.strength.reduced,
    );
    let mut sim = Simulator::new(&optimized.program, MachineConfig::optimized(1));
    let o = sim.run("main", &[])?.stats;

    println!(
        "out_pts[100] = ({}, ..., {})  [expect 200, 2]",
        o.output[0], o.output[1]
    );
    println!(
        "scalar-only: {:.0} cycles ({:.2} MFLOPS) | optimized: {:.0} cycles ({:.2} MFLOPS) | {:.2}x",
        s.cycles,
        s.mflops(16.0),
        o.cycles,
        o.mflops(16.0),
        s.cycles / o.cycles
    );

    // the embedded arrays are observable as flat memory too
    let mut sim = Simulator::new(&optimized.program, MachineConfig::optimized(1));
    sim.run("main", &[])?;
    let x = sim.read_global("out_pts", ScalarType::Float, 100 * 4)?;
    assert_eq!(x.as_float(), 200.0);
    Ok(())
}
