/* The §1 example: a legitimate (and common) device-polling fragment.
 * Without `volatile` this loop looks infinite; with it, every read must
 * go to memory and no phase may fold, hoist or vectorize it. */
volatile int keyboard_status;

int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);
    return keyboard_status;
}
