/* The §5.3 example: a pointer-walking vector copy. Induction-variable
 * substitution with backtracking exposes the subscripts; the pragma
 * asserts the pointers do not overlap (C provides no way to prove it). */
float dst[8192], src[8192];

int main(void)
{
    float *a, *b;
    int n;
    a = &dst[0];
    b = &src[0];
    n = 8192;
#pragma safe
    while (n) {
        *a++ = *b++;
        n--;
    }
    return 0;
}
