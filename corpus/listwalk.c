/* The §10 planned enhancement: a while loop walking a linked list cannot
 * vectorize, but its work can be spread across processors once the pointer
 * chase is pulled into the serialized portion of the parallel loop —
 * assuming each motion down a pointer goes to independent storage. */
struct node {
    float v;
    float out;
    struct node *next;
};

struct node pool[1024];

void build(void)
{
    int i;
    for (i = 0; i < 1023; i++) {
        pool[i].v = i;
        pool[i].next = &pool[i + 1];
    }
    pool[1023].v = 1023;
    pool[1023].next = (struct node *)0;
}

void work(struct node *p)
{
    while (p) {
        p->out = p->v * p->v + 0.5f * p->v + 1.0f;
        p = p->next;
    }
}

int main(void)
{
    build();
    work(&pool[0]);
    return (int)pool[1023].out;
}
