/* The paper's §9 driving example: a C analog of the BLAS daxpy routine,
 * inlined into main and then vectorized and parallelized. */
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}

float a[100], b[100], c[100];

int main(void)
{
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
