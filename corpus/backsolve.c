/* The §6 example: a typical loop used in backsolving linear systems.
 * q reads values stored through p on the previous iteration, so the loop
 * cannot run in vector or parallel — but the dependence is regular and
 * the Titan compiler pulls it into a register, schedules around it, and
 * strength-reduces the subscripts. */
float x[1026], y[1026], z[1026];

int main(void)
{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < 1024; i++)
        p[i] = z[i] * (y[i] - q[i]);
    return 0;
}
