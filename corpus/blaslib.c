/* A small BLAS-1 library, compiled into a catalog (§7) and used as a base
 * for cross-file inlining, the way the Titan compiler used its math
 * library databases. */
void blas_daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}

void blas_copy(float *dst, float *src, int n)
{
    while (n) {
        *dst++ = *src++;
        n--;
    }
}

void blas_scal(float *x, float alpha, int n)
{
    while (n) {
        *x = *x * alpha;
        x++;
        n--;
    }
}

void blas_set(float *x, float value, int n)
{
    while (n) {
        *x++ = value;
        n--;
    }
}
