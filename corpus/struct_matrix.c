/* The §10 lesson from Doré: arrays embedded within structures appear
 * everywhere in graphics code. A 4x4 transform applied to a vertex list. */
struct matrix {
    float m[4][4];
};
struct vertex {
    float v[4];
};

struct matrix xf;
struct vertex pts[256], out_pts[256];

int main(void)
{
    int i, r, c;
    float acc;
    for (i = 0; i < 256; i++) {
        for (r = 0; r < 4; r++) {
            acc = 0.0f;
            for (c = 0; c < 4; c++)
                acc += xf.m[r][c] * pts[i].v[c];
            out_pts[i].v[r] = acc;
        }
    }
    return 0;
}
