//! Umbrella crate for the `titanc` workspace.
//!
//! This crate exists so that repo-root `tests/` and `examples/` can exercise
//! the whole compiler through one import. All functionality lives in the
//! member crates; see [`titanc`] for the driver API.

pub use titanc;
pub use titanc_il as il;
pub use titanc_titan as titan;
