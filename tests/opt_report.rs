//! End-to-end tests for the observability layer: the per-loop
//! optimization report accounts for every source loop in the corpus, is
//! byte-identical across `-j` values, the Chrome trace export is valid
//! JSON, and the front-end error cap reports what it suppressed.

use titanc_repro::titanc::{chrome_trace, compile, OptReport, Options};

fn corpus_files() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            if p.extension()? == "c" {
                let name = p.file_name()?.to_string_lossy().to_string();
                Some((name, std::fs::read_to_string(&p).ok()?))
            } else {
                None
            }
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus is empty");
    files
}

fn report_options(jobs: usize) -> Options {
    Options {
        jobs,
        spread_lists: true,
        ..Options::parallel()
    }
}

/// Source lines that open a loop (`for`/`while` statement heads). The
/// corpus is plain enough that a syntactic scan is exact.
fn loop_lines(src: &str) -> Vec<u32> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with("for (") || t.starts_with("while (")
        })
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

/// Acceptance: `--opt-report` accounts for every loop in `corpus/*.c` —
/// each source line that opens a loop appears as a reported loop span.
#[test]
fn every_corpus_loop_is_accounted_for() {
    for (name, src) in corpus_files() {
        let c = compile(&src, &report_options(1)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = OptReport::build(&c.reports, &c.trace);
        let lines = loop_lines(&src);
        assert!(!lines.is_empty(), "{name}: corpus file with no loops?");
        for line in lines {
            assert!(
                report.loops.iter().any(|l| l.span.line == line),
                "{name}: loop at line {line} missing from the report:\n{}",
                report.render()
            );
        }
        // every reported loop carries a definite classification
        for l in &report.loops {
            assert!(
                matches!(
                    l.classification,
                    "vectorized" | "parallelized" | "spread" | "scalar"
                ),
                "{name}: unclassified loop {l:?}"
            );
            if l.classification == "scalar" {
                assert!(
                    l.reason.is_some(),
                    "{name}: scalar loop at {} has no defeating reason",
                    l.span
                );
            }
        }
    }
}

/// Acceptance: the report is byte-identical between `-j 1` and `-j 4`,
/// in both text and JSON form.
#[test]
fn report_is_deterministic_across_jobs() {
    for (name, src) in corpus_files() {
        let c1 = compile(&src, &report_options(1)).unwrap();
        let c4 = compile(&src, &report_options(4)).unwrap();
        let r1 = OptReport::build(&c1.reports, &c1.trace);
        let r4 = OptReport::build(&c4.reports, &c4.trace);
        assert_eq!(r1.render(), r4.render(), "{name}: text report differs");
        assert_eq!(
            r1.to_json().to_string_compact(),
            r4.to_json().to_string_compact(),
            "{name}: JSON report differs"
        );
    }
}

/// The counters surface the paper's coverage numbers: the corpus has
/// vectorized loops, spread loops, and inline expansions.
#[test]
fn counters_track_the_corpus() {
    let mut vectorized = 0;
    let mut spread = 0;
    let mut inlined = 0;
    for (_, src) in corpus_files() {
        let c = compile(&src, &report_options(1)).unwrap();
        let counters = OptReport::build(&c.reports, &c.trace).counters;
        vectorized += counters.get("loops.vectorized");
        spread += counters.get("loops.list_spread");
        inlined += counters.get("inline.expanded");
        // the JSON form parses back
        let json = counters.to_json().to_string_compact();
        titanc_repro::il::json::parse(&json).expect("counters JSON parses");
    }
    assert!(vectorized > 0, "corpus vectorizes nothing");
    assert!(spread > 0, "corpus spreads no list walks");
    assert!(inlined > 0, "corpus inlines nothing");
}

/// Two distinct call sites sharing one source span — `sq(2) + sq(3)`
/// lowers both calls onto the statement's span — are distinct inline
/// decisions: the report dedupes on site identity, not span equality.
#[test]
fn same_span_call_sites_stay_distinct_in_the_report() {
    let src = "\
int sq(int x)
{
    return x * x;
}

int main(void)
{
    return sq(2) + sq(3);
}
";
    let c = compile(src, &Options::o2()).expect("compiles");
    let report = OptReport::build_for(&c.reports, &c.trace, &c.program.files);
    let sites: Vec<_> = report
        .inline
        .iter()
        .filter(|e| e.caller == "main" && e.callee == "sq")
        .collect();
    assert_eq!(
        sites.len(),
        2,
        "both physical call sites must survive dedupe: {:?}",
        report.inline
    );
    assert_ne!(
        sites[0].site, sites[1].site,
        "each site carries its own ordinal"
    );
    // and the JSON form exposes the ordinal so downstream consumers can
    // key on it too
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"site\":"), "{json}");
}

/// The Chrome trace export is valid JSON with one complete event per
/// (pass × procedure) timeline entry and consistent worker lanes.
#[test]
fn chrome_trace_round_trips() {
    let (_, src) = corpus_files().remove(0);
    let c = compile(&src, &report_options(4)).unwrap();
    let json = chrome_trace(&c.trace).to_string_compact();
    let parsed = titanc_repro::il::json::parse(&json).expect("trace JSON parses");
    let events = parsed
        .field("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .to_vec();
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.field("ph").unwrap().as_str().unwrap() == "X")
        .collect();
    assert_eq!(
        complete.len(),
        c.trace.timeline.len(),
        "one X event per timeline item"
    );
    assert!(!complete.is_empty(), "empty timeline");
    for e in &complete {
        assert!(e.field("ts").unwrap().as_i64().unwrap() >= 0);
        assert!(e.field("dur").unwrap().as_i64().is_ok());
        assert!(e.field("tid").unwrap().as_i64().is_ok());
        assert!(e.field("name").unwrap().as_str().is_ok());
    }
}

/// `--max-errors 1` stops the front end at the cap, still counts what it
/// suppressed, and says so in the diagnostics.
#[test]
fn error_cap_reports_suppressed_count() {
    let src = r#"
int main(void)
{
    int x;
    x = ;
    x = ;
    x = ;
    return x;
}
"#;
    let opts = Options {
        max_errors: 1,
        ..Options::o2()
    };
    let err = compile(src, &opts).expect_err("garbage must not compile");
    let rendered: Vec<String> = err.diagnostics.iter().map(ToString::to_string).collect();
    let errors = rendered
        .iter()
        .filter(|d| !d.contains("warning:") && !d.contains("remark:"))
        .count();
    assert_eq!(errors, 1, "cap of 1 stores exactly one error: {rendered:?}");
    assert!(
        rendered
            .iter()
            .any(|d| d.contains("suppressed by --max-errors")),
        "suppressed count not reported: {rendered:?}"
    );
    // uncapped, the same source yields more than one stored error
    let err = compile(src, &Options::o2()).expect_err("still garbage");
    let stored = err
        .diagnostics
        .iter()
        .map(ToString::to_string)
        .filter(|d| !d.contains("warning:") && !d.contains("remark:"))
        .count();
    assert!(stored > 1, "expected several stored errors, got {stored}");
}
