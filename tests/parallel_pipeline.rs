//! Parallel-pipeline regression tests: `-j 1` and `-j N` must produce
//! byte-identical output (the merge is by procedure order, not worker
//! order), the generation-keyed analysis cache must never serve a stale
//! artifact across a mutating pass, and procedures whose generation did
//! not move must be skipped by the snapshotter.

use titanc_repro::titanc::{compile, Options};

/// A corpus of independent procedures, each with a constant chain hidden
/// behind agreeing conditional definitions (forward substitution cannot
/// see through the joins, so constant propagation resolves one chain link
/// per round off the cached use–def chains — the §5.2 repair path) and
/// two vectorizable/convertible loops.
fn corpus(nprocs: usize) -> String {
    let mut src = String::new();
    for k in 0..nprocs {
        let seed = k + 2;
        src.push_str(&format!("float a{k}[64], b{k}[64], c{k}[64];\n"));
        src.push_str(&format!(
            "void p{k}(int n)\n\
             {{\n\
             \x20   int i, t0, t1, t2, t3;\n\
             \x20   if (n) t0 = {seed}; else t0 = {seed};\n\
             \x20   if (n) t1 = t0 * t0; else t1 = t0 * t0;\n\
             \x20   if (n) t2 = t1 + t1; else t2 = t1 + t1;\n\
             \x20   t3 = t2 * t1;\n\
             \x20   for (i = 0; i < 64; i++)\n\
             \x20       a{k}[i] = b{k}[i] * t3 + c{k}[i] * t2;\n\
             \x20   while (n > 0) {{\n\
             \x20       a{k}[0] = a{k}[0] + 1.0f;\n\
             \x20       n = n - 1;\n\
             \x20   }}\n\
             }}\n"
        ));
    }
    src.push_str("int main(void) { return 0; }\n");
    src
}

fn opts_with_jobs(jobs: usize) -> Options {
    Options {
        jobs,
        snapshots: true,
        verify: true,
        ..Options::parallel()
    }
}

#[test]
fn jobs_1_and_jobs_4_are_byte_identical() {
    let src = corpus(9);
    let serial = compile(&src, &opts_with_jobs(1)).unwrap();
    let fanned = compile(&src, &opts_with_jobs(4)).unwrap();

    // identical program, procedure by procedure
    assert_eq!(serial.program.procs.len(), fanned.program.procs.len());
    for (a, b) in serial.program.procs.iter().zip(&fanned.program.procs) {
        assert_eq!(
            titanc_il::pretty_proc(a),
            titanc_il::pretty_proc(b),
            "procedure `{}` diverged between -j 1 and -j 4",
            a.name
        );
    }

    // identical aggregate reports
    assert_eq!(
        format!("{:?}", serial.reports),
        format!("{:?}", fanned.reports)
    );

    // identical trace: same passes in the same order, with the same
    // change flags, per-pass deltas, and cache counters (durations are
    // the only nondeterministic field)
    assert_eq!(serial.trace.records.len(), fanned.trace.records.len());
    for (a, b) in serial.trace.records.iter().zip(&fanned.trace.records) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.changed, b.changed, "changed flag for `{}`", a.name);
        assert_eq!(
            format!("{:?}", a.delta),
            format!("{:?}", b.delta),
            "delta for `{}`",
            a.name
        );
        assert_eq!(a.cache, b.cache, "cache counters for `{}`", a.name);
    }

    // identical snapshot sequence (pass-major, procedure order)
    assert_eq!(serial.snapshots, fanned.snapshots);
}

#[test]
fn pipeline_reuses_and_repairs_analyses() {
    // the constant chains force several constprop rounds; with the
    // generation-keyed cache each follow-up round hits the repaired
    // use–def chains instead of rebuilding them
    let c = compile(&corpus(6), &opts_with_jobs(2)).unwrap();
    let totals = c.trace.cache_totals();
    assert!(
        totals.usedef_hits > 0,
        "constprop rounds must hit the cached use-def chains: {totals:?}"
    );
    assert!(
        totals.repairs > 0,
        "the §5.2 repair path (rekey/note_repair) must fire: {totals:?}"
    );
    assert!(
        totals.invalidations > 0,
        "structural passes must invalidate: {totals:?}"
    );
    // the per-pass attribution adds up to the totals
    let constprop = c.trace.record("constprop").unwrap();
    assert!(constprop.cache.usedef_hits > 0, "{:?}", constprop.cache);
}

#[test]
fn mutating_pass_bumps_generation_and_stale_usedef_is_dropped() {
    use titanc_analysis::ProcAnalyses;

    let prog = titanc_lower::compile_to_il(
        "void f(float *a, int n) { int i; i = 0; while (i < n) { a[i] = 0; i = i + 1; } }",
    )
    .unwrap();
    let mut proc = prog.procs[0].clone();
    let mut analyses = ProcAnalyses::new();

    let before = proc.generation();
    let stale = analyses.usedef(&proc);
    let report = titanc_opt::convert_while_loops_cached(&mut proc, &mut analyses);
    assert!(report.converted >= 1, "{report:?}");
    assert!(
        proc.generation() > before,
        "a mutating pass must bump the generation"
    );
    let fresh = analyses.usedef(&proc);
    assert!(
        !std::sync::Arc::ptr_eq(&stale, &fresh),
        "stale use-def chains must never be served after a mutation"
    );
    assert_eq!(analyses.cached_generation(), Some(proc.generation()));
}

#[test]
fn unchanged_procedures_skip_snapshots() {
    // `id` is already optimal: no pass changes it, so after "lower" it
    // must never be snapshotted again, while the loopy `p0` is
    let src = format!("int id(int x) {{ return x; }}\n{}", corpus(1));
    let c = compile(&src, &opts_with_jobs(2)).unwrap();
    let id_phases: Vec<&str> = c
        .snapshots
        .iter()
        .filter(|s| s.proc == "id")
        .map(|s| s.phase.as_str())
        .collect();
    assert_eq!(id_phases, vec!["lower"], "unchanged proc re-snapshotted");
    let p0_phases: Vec<&str> = c
        .snapshots
        .iter()
        .filter(|s| s.proc == "p0")
        .map(|s| s.phase.as_str())
        .collect();
    assert!(p0_phases.len() > 1, "changed proc must be snapshotted");
}

#[test]
fn effective_jobs_resolves_auto() {
    assert_eq!(
        Options {
            jobs: 3,
            ..Options::o2()
        }
        .effective_jobs(),
        3
    );
    assert!(
        Options {
            jobs: 0,
            ..Options::o2()
        }
        .effective_jobs()
            >= 1
    );
}
