//! Cross-crate pipeline facts that don't fit a single crate's unit tests:
//! catalog workflows, option interactions, report plumbing, and IL
//! pretty-printer round-trips through the whole stack.

use titanc_repro::il::{Catalog, ScalarType};
use titanc_repro::titan::{MachineConfig, Simulator};
use titanc_repro::titanc::{compile, compile_and_run, Aliasing, Options};

#[test]
fn catalog_file_round_trip_through_driver() {
    let lib = titanc_lower::compile_to_il("float twice(float x) { return x * 2.0f; }").unwrap();
    let catalog = Catalog::from_program("m", &lib);
    let dir = std::env::temp_dir().join("titanc-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.json");
    catalog.save(&path).unwrap();
    let loaded = Catalog::load(&path).unwrap();

    let c = compile(
        "float twice(float x);\nint main(void) { return (int)twice(21.0f); }",
        &Options {
            catalogs: vec![loaded],
            ..Options::o2()
        },
    )
    .unwrap();
    assert_eq!(c.reports.inline.inlined, 1);
    let mut sim = Simulator::new(&c.program, MachineConfig::default());
    assert_eq!(sim.run("main", &[]).unwrap().value.unwrap().as_int(), 42);
}

#[test]
fn missing_catalog_procedure_is_a_runtime_error_not_a_compile_error() {
    let c = compile(
        "void missing(void);\nint main(void) { missing(); return 0; }",
        &Options::o2(),
    )
    .unwrap();
    let mut sim = Simulator::new(&c.program, MachineConfig::default());
    let err = sim.run("main", &[]).unwrap_err();
    assert!(err.message.contains("undefined procedure"));
}

#[test]
fn strip_length_option_respected() {
    let src = r#"
float a[100], b[100];
int main(void) { int i; for (i = 0; i < 100; i++) a[i] = b[i]; return 0; }
"#;
    let c = compile(
        src,
        &Options {
            strip: 16,
            ..Options::parallel()
        },
    )
    .unwrap();
    let text = titanc_repro::il::pretty_proc(c.program.proc_by_name("main").unwrap());
    assert!(text.contains("min(16,"), "{text}");
}

#[test]
fn max_vl_splits_large_single_vectors() {
    let src = r#"
float a[4096], b[4096];
int main(void) { int i; for (i = 0; i < 4096; i++) a[i] = b[i]; return 0; }
"#;
    let c = compile(src, &Options::o2()).unwrap();
    let text = titanc_repro::il::pretty_proc(c.program.proc_by_name("main").unwrap());
    // 4096 > 2048: must strip-mine even without parallelization
    assert!(text.contains("min(2048,"), "{text}");
    let (obs, _) = titanc_repro::titan::observe(
        &c.program,
        MachineConfig::default(),
        "main",
        &[("a", ScalarType::Float, 4096)],
    )
    .unwrap();
    assert_eq!(obs.value.unwrap().as_int(), 0);
}

#[test]
fn fortran_aliasing_option_is_dangerous_but_available() {
    // with actually-overlapping pointers, Fortran semantics miscompiles —
    // exactly why it is an option (§9). We only check it *changes* the
    // compilation, not the (undefined) result.
    let src = r#"
float buf[64];
int main(void)
{
    float *a, *b;
    int n;
    a = &buf[1];
    b = &buf[0];
    n = 32;
    while (n) { *a++ = *b++ + 1.0f; n--; }
    return 0;
}
"#;
    let c_strict = compile(src, &Options::o2()).unwrap();
    assert_eq!(
        c_strict.reports.vector.vectorized, 0,
        "overlap detected: same base"
    );
    let c_fortran = compile(
        src,
        &Options {
            aliasing: Aliasing::Fortran,
            ..Options::o2()
        },
    )
    .unwrap();
    // same-base references are still tested precisely — even Fortran
    // semantics does not license ignoring a provable overlap
    assert_eq!(c_fortran.reports.vector.vectorized, 0);
}

#[test]
fn inline_depth_limits_nested_expansion() {
    // declared top-down so one inlining round expands exactly one layer
    // (declared bottom-up, the round's in-order sweep cascades fully)
    let src = r#"
int l4(int x);
int l3(int x);
int l2(int x);
int l1(int x);
int main(void) { return l4(0); }
int l4(int x) { return l3(x) + 1; }
int l3(int x) { return l2(x) + 1; }
int l2(int x) { return l1(x) + 1; }
int l1(int x) { return x + 1; }
"#;
    let shallow = compile(
        src,
        &Options {
            inline_opts: titanc_repro::titanc::InlineOptions {
                max_depth: 1,
                ..Default::default()
            },
            ..Options::o2()
        },
    )
    .unwrap();
    let deep = compile(src, &Options::o2()).unwrap();
    assert!(deep.reports.inline.inlined > shallow.reports.inline.inlined);
    // both still compute 4
    for prog in [&shallow.program, &deep.program] {
        let mut sim = Simulator::new(prog, MachineConfig::default());
        assert_eq!(sim.run("main", &[]).unwrap().value.unwrap().as_int(), 4);
    }
}

#[test]
fn compile_and_run_propagates_simulator_faults() {
    let err = compile_and_run(
        "int main(void) { int z; z = 0; return 1 / z; }",
        &Options::o0(),
        MachineConfig::default(),
        "main",
    )
    .unwrap_err();
    assert!(err.contains("division"), "{err}");
}

#[test]
fn print_output_is_ordered_across_inlined_calls() {
    let src = r#"
void shout(int x) { print_int(x); }
int main(void) { shout(1); shout(2); shout(3); return 0; }
"#;
    for opts in [Options::o0(), Options::o2()] {
        let c = compile(src, &opts).unwrap();
        let mut sim = Simulator::new(&c.program, MachineConfig::default());
        let r = sim.run("main", &[]).unwrap();
        assert_eq!(r.stats.output, vec!["1", "2", "3"]);
    }
}

#[test]
fn two_dimensional_iteration_vectorizes_inner_loop() {
    let src = r#"
float m[32][32], v[32][32];
int main(void)
{
    int i, j;
    for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
            m[i][j] = v[i][j] * 2.0f;
    return 0;
}
"#;
    let c = compile(src, &Options::o2()).unwrap();
    assert!(
        c.reports.vector.vectorized >= 1,
        "inner loop vectorizes: {:?}\n{}",
        c.reports.vector,
        titanc_repro::il::pretty_proc(c.program.proc_by_name("main").unwrap())
    );
    let (obs, _) = titanc_repro::titan::observe(
        &c.program,
        MachineConfig::default(),
        "main",
        &[("m", ScalarType::Float, 1024)],
    )
    .unwrap();
    let (base_obs, _) = {
        let b = compile(src, &Options::o0()).unwrap();
        titanc_repro::titan::observe(
            &b.program,
            MachineConfig::default(),
            "main",
            &[("m", ScalarType::Float, 1024)],
        )
        .unwrap()
    };
    assert_eq!(obs, base_obs);
}

#[test]
fn simulator_flop_accounting_matches_kernel_math() {
    // daxpy does 2 flops per element
    let src = r#"
float a[64], b[64], c[64];
int main(void)
{
    int i;
    for (i = 0; i < 64; i++)
        a[i] = b[i] + 2.0f * c[i];
    return 0;
}
"#;
    let c = compile(src, &Options::o2()).unwrap();
    let mut sim = Simulator::new(&c.program, MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.stats.flops, 128, "2 flops x 64 elements");
}
