//! Property-based differential testing: random C programs must behave
//! identically at every optimization level.
//!
//! The generator produces structured programs (assignments, arithmetic,
//! branches, bounded counted loops, array stores) over `int` scalars and a
//! `float` array; observable state is the return value plus the contents
//! of the output arrays. The Titan simulator is the semantic referee.

use proptest::prelude::*;
use titanc_repro::il::ScalarType;
use titanc_repro::titan::MachineConfig;
use titanc_repro::titanc::{compile, Options};

const INT_VARS: [&str; 4] = ["va", "vb", "vc", "vd"];
const OUT_LEN: usize = 16;

#[derive(Clone, Debug)]
enum E {
    Const(i32),
    Var(usize),
    LoopVar,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    /// call the generated helper (fuzzes the inliner)
    Call(Box<E>, Box<E>),
}

impl E {
    /// `loop_level` = nesting depth of counted loops (0 = outside); nested
    /// loops use distinct counters `l1…` — sharing one counter between
    /// nests makes genuinely infinite programs (an inner loop leaving the
    /// counter below the outer bound forever).
    fn render(&self, loop_level: usize) -> String {
        match self {
            E::Const(c) => format!("{c}"),
            E::Var(i) => INT_VARS[*i % INT_VARS.len()].to_string(),
            E::LoopVar => {
                if loop_level > 0 {
                    format!("l{loop_level}")
                } else {
                    "1".into()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(loop_level), b.render(loop_level)),
            E::Sub(a, b) => format!("({} - {})", a.render(loop_level), b.render(loop_level)),
            E::Mul(a, b) => format!("({} * {})", a.render(loop_level), b.render(loop_level)),
            E::Lt(a, b) => format!("({} < {})", a.render(loop_level), b.render(loop_level)),
            E::Call(a, b) => format!(
                "helper({}, {})",
                a.render(loop_level),
                b.render(loop_level)
            ),
        }
    }
}

#[derive(Clone, Debug)]
enum S {
    Assign(usize, E),
    Store(usize, E),
    If(E, Vec<S>, Vec<S>),
    CountedLoop(u8, Vec<S>),
    StoreAtLoopVar(E),
    FloatStore(usize, E),
}

const MAX_LOOP_LEVEL: usize = 4;

fn render_block(stmts: &[S], out: &mut String, depth: usize, loop_level: usize) {
    let pad = "    ".repeat(depth);
    for s in stmts {
        match s {
            S::Assign(v, e) => {
                out.push_str(&format!(
                    "{pad}{} = {};\n",
                    INT_VARS[*v % INT_VARS.len()],
                    e.render(loop_level)
                ));
            }
            S::Store(idx, e) => {
                out.push_str(&format!(
                    "{pad}out_g[{}] = {};\n",
                    idx % OUT_LEN,
                    e.render(loop_level)
                ));
            }
            S::FloatStore(idx, e) => {
                out.push_str(&format!(
                    "{pad}out_f[{}] = {} * 0.5f;\n",
                    idx % OUT_LEN,
                    e.render(loop_level)
                ));
            }
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.render(loop_level)));
                render_block(t, out, depth + 1, loop_level);
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_block(f, out, depth + 1, loop_level);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            S::CountedLoop(n, body) => {
                let lv = (loop_level + 1).min(MAX_LOOP_LEVEL);
                out.push_str(&format!(
                    "{pad}for (l{lv} = 0; l{lv} < {}; l{lv}++) {{\n",
                    n % 12 + 1
                ));
                render_block(body, out, depth + 1, lv);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::StoreAtLoopVar(e) => {
                // counters stay < 12 < OUT_LEN
                if loop_level > 0 {
                    out.push_str(&format!(
                        "{pad}out_g[l{loop_level}] = {};\n",
                        e.render(loop_level)
                    ));
                } else {
                    out.push_str(&format!("{pad}out_g[0] = {};\n", e.render(loop_level)));
                }
            }
        }
    }
}

fn render_program(stmts: &[S], helper: &[S], helper_ret: &E, ret: &E) -> String {
    let mut body = String::new();
    render_block(stmts, &mut body, 1, 0);
    let mut hbody = String::new();
    render_block(helper, &mut hbody, 1, 0);
    let decls = "int va, vb, vc, vd, l1, l2, l3, l4;";
    let inits = "l1 = 0; l2 = 0; l3 = 0; l4 = 0;";
    format!(
        "int out_g[{OUT_LEN}];\nfloat out_f[{OUT_LEN}];\n\
         int helper(int ha, int hb)\n{{\n    {decls}\n    va = ha; vb = hb; vc = 3; vd = 4; {inits}\n{hbody}    return {};\n}}\n\
         int main(void)\n{{\n    {decls}\n    va = 1; vb = 2; vc = 3; vd = 4; {inits}\n{body}    return {};\n}}\n",
        helper_ret.render(0),
        ret.render(0)
    )
}

fn expr_strategy(depth: u32, allow_calls: bool) -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(E::Const),
        (0usize..4).prop_map(E::Var),
        Just(E::LoopVar),
    ];
    leaf.prop_recursive(depth, 16, 2, move |inner| {
        let call = (inner.clone(), inner.clone())
            .prop_map(|(a, b)| E::Call(Box::new(a), Box::new(b)));
        if allow_calls {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
                call,
            ]
            .boxed()
        } else {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            ]
            .boxed()
        }
    })
}

fn stmt_strategy(depth: u32, allow_calls: bool) -> BoxedStrategy<S> {
    let leaf = prop_oneof![
        (0usize..4, expr_strategy(2, allow_calls)).prop_map(|(v, e)| S::Assign(v, e)),
        (0usize..OUT_LEN, expr_strategy(2, allow_calls)).prop_map(|(i, e)| S::Store(i, e)),
        (0usize..OUT_LEN, expr_strategy(2, allow_calls)).prop_map(|(i, e)| S::FloatStore(i, e)),
        expr_strategy(2, allow_calls).prop_map(S::StoreAtLoopVar),
    ];
    leaf.prop_recursive(depth, 24, 4, move |inner| {
        prop_oneof![
            (
                expr_strategy(2, allow_calls),
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            (any::<u8>(), prop::collection::vec(inner, 1..4))
                .prop_map(|(n, b)| S::CountedLoop(n, b)),
        ]
    })
    .boxed()
}

fn program_strategy() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(stmt_strategy(2, true), 1..8),
        prop::collection::vec(stmt_strategy(1, false), 1..5),
        expr_strategy(2, false),
        expr_strategy(2, true),
    )
        .prop_map(|(stmts, helper, helper_ret, ret)| {
            render_program(&stmts, &helper, &helper_ret, &ret)
        })
}

fn observe(src: &str, opts: &Options, machine: MachineConfig) -> titanc_repro::titan::Observation {
    let compiled = compile(src, opts).expect("generated program compiles");
    titanc_repro::titan::observe(
        &compiled.program,
        machine,
        "main",
        &[
            ("out_g", ScalarType::Int, OUT_LEN as u32),
            ("out_f", ScalarType::Float, OUT_LEN as u32),
        ],
    )
    .unwrap_or_else(|e| {
        panic!(
            "run failed: {e}\nsource:\n{src}\nIL:\n{}",
            titanc_repro::il::pretty_proc(compiled.program.proc_by_name("main").unwrap())
        )
    })
    .0
}

fn fuzz_cases() -> u32 {
    // differential cases are expensive (4 compiles + 4 simulator runs
    // each); default modestly and let CI turn the dial
    std::env::var("TITANC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: fuzz_cases(),
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// O1, O2 and O2-parallel agree with the unoptimized program.
    #[test]
    fn optimization_levels_agree(src in program_strategy()) {
        let base = observe(&src, &Options::o0(), MachineConfig::default());
        let o1 = observe(&src, &Options::o1(), MachineConfig::default());
        prop_assert_eq!(&base, &o1, "O1 diverged on:\n{}", src);
        let o2 = observe(&src, &Options::o2(), MachineConfig::optimized(1));
        prop_assert_eq!(&base, &o2, "O2 diverged on:\n{}", src);
        let par = observe(&src, &Options::parallel(), MachineConfig::optimized(4));
        prop_assert_eq!(&base, &par, "O2-parallel diverged on:\n{}", src);
    }

    /// The parser round-trips through the lowering pipeline without
    /// crashing for every generated program (fuzz smoke).
    #[test]
    fn front_end_total(src in program_strategy()) {
        let tu = titanc_cfront::parse(&src).expect("parses");
        let prog = titanc_lower::lower(&tu).expect("lowers");
        prop_assert!(!prog.is_empty());
    }
}
