//! Property-based differential testing: random C programs must behave
//! identically at every optimization level.
//!
//! The generator produces structured programs (assignments, arithmetic,
//! branches, bounded counted loops, array stores) over `int` scalars and a
//! `float` array; observable state is the return value plus the contents
//! of the output arrays. The Titan simulator is the semantic referee.
//! Random programs come from a fixed-seed xorshift generator so the suite
//! needs no external crates and every run checks the same cases
//! (`TITANC_FUZZ_CASES` turns the dial).

use titanc_repro::il::ScalarType;
use titanc_repro::titan::MachineConfig;
use titanc_repro::titanc::{compile, Options};

const INT_VARS: [&str; 4] = ["va", "vb", "vc", "vd"];
const OUT_LEN: usize = 16;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

#[derive(Clone, Debug)]
enum E {
    Const(i32),
    Var(usize),
    LoopVar,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    /// call the generated helper (fuzzes the inliner)
    Call(Box<E>, Box<E>),
}

impl E {
    /// `loop_level` = nesting depth of counted loops (0 = outside); nested
    /// loops use distinct counters `l1…` — sharing one counter between
    /// nests makes genuinely infinite programs (an inner loop leaving the
    /// counter below the outer bound forever).
    fn render(&self, loop_level: usize) -> String {
        match self {
            E::Const(c) => format!("{c}"),
            E::Var(i) => INT_VARS[*i % INT_VARS.len()].to_string(),
            E::LoopVar => {
                if loop_level > 0 {
                    format!("l{loop_level}")
                } else {
                    "1".into()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(loop_level), b.render(loop_level)),
            E::Sub(a, b) => format!("({} - {})", a.render(loop_level), b.render(loop_level)),
            E::Mul(a, b) => format!("({} * {})", a.render(loop_level), b.render(loop_level)),
            E::Lt(a, b) => format!("({} < {})", a.render(loop_level), b.render(loop_level)),
            E::Call(a, b) => format!("helper({}, {})", a.render(loop_level), b.render(loop_level)),
        }
    }
}

#[derive(Clone, Debug)]
enum S {
    Assign(usize, E),
    Store(usize, E),
    If(E, Vec<S>, Vec<S>),
    CountedLoop(u8, Vec<S>),
    StoreAtLoopVar(E),
    FloatStore(usize, E),
}

const MAX_LOOP_LEVEL: usize = 4;

fn render_block(stmts: &[S], out: &mut String, depth: usize, loop_level: usize) {
    let pad = "    ".repeat(depth);
    for s in stmts {
        match s {
            S::Assign(v, e) => {
                out.push_str(&format!(
                    "{pad}{} = {};\n",
                    INT_VARS[*v % INT_VARS.len()],
                    e.render(loop_level)
                ));
            }
            S::Store(idx, e) => {
                out.push_str(&format!(
                    "{pad}out_g[{}] = {};\n",
                    idx % OUT_LEN,
                    e.render(loop_level)
                ));
            }
            S::FloatStore(idx, e) => {
                out.push_str(&format!(
                    "{pad}out_f[{}] = {} * 0.5f;\n",
                    idx % OUT_LEN,
                    e.render(loop_level)
                ));
            }
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.render(loop_level)));
                render_block(t, out, depth + 1, loop_level);
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_block(f, out, depth + 1, loop_level);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            S::CountedLoop(n, body) => {
                let lv = (loop_level + 1).min(MAX_LOOP_LEVEL);
                out.push_str(&format!(
                    "{pad}for (l{lv} = 0; l{lv} < {}; l{lv}++) {{\n",
                    n % 12 + 1
                ));
                render_block(body, out, depth + 1, lv);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::StoreAtLoopVar(e) => {
                // counters stay < 12 < OUT_LEN
                if loop_level > 0 {
                    out.push_str(&format!(
                        "{pad}out_g[l{loop_level}] = {};\n",
                        e.render(loop_level)
                    ));
                } else {
                    out.push_str(&format!("{pad}out_g[0] = {};\n", e.render(loop_level)));
                }
            }
        }
    }
}

fn render_program(stmts: &[S], helper: &[S], helper_ret: &E, ret: &E) -> String {
    let mut body = String::new();
    render_block(stmts, &mut body, 1, 0);
    let mut hbody = String::new();
    render_block(helper, &mut hbody, 1, 0);
    let decls = "int va, vb, vc, vd, l1, l2, l3, l4;";
    let inits = "l1 = 0; l2 = 0; l3 = 0; l4 = 0;";
    format!(
        "int out_g[{OUT_LEN}];\nfloat out_f[{OUT_LEN}];\n\
         int helper(int ha, int hb)\n{{\n    {decls}\n    va = ha; vb = hb; vc = 3; vd = 4; {inits}\n{hbody}    return {};\n}}\n\
         int main(void)\n{{\n    {decls}\n    va = 1; vb = 2; vc = 3; vd = 4; {inits}\n{body}    return {};\n}}\n",
        helper_ret.render(0),
        ret.render(0)
    )
}

fn gen_expr(rng: &mut Rng, depth: u32, allow_calls: bool) -> E {
    if depth == 0 || rng.below(5) < 2 {
        return match rng.below(3) {
            0 => E::Const(rng.range(-20, 20) as i32),
            1 => E::Var(rng.below(4) as usize),
            _ => E::LoopVar,
        };
    }
    let a = Box::new(gen_expr(rng, depth - 1, allow_calls));
    let b = Box::new(gen_expr(rng, depth - 1, allow_calls));
    match rng.below(if allow_calls { 5 } else { 4 }) {
        0 => E::Add(a, b),
        1 => E::Sub(a, b),
        2 => E::Mul(a, b),
        3 => E::Lt(a, b),
        _ => E::Call(a, b),
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32, allow_calls: bool) -> S {
    if depth > 0 && rng.below(3) == 0 {
        return match rng.below(2) {
            0 => {
                let cond = gen_expr(rng, 2, allow_calls);
                let then_len = rng.range(1, 4);
                let else_len = rng.range(0, 3);
                let t = (0..then_len)
                    .map(|_| gen_stmt(rng, depth - 1, allow_calls))
                    .collect();
                let f = (0..else_len)
                    .map(|_| gen_stmt(rng, depth - 1, allow_calls))
                    .collect();
                S::If(cond, t, f)
            }
            _ => {
                let n = rng.below(256) as u8;
                let body_len = rng.range(1, 4);
                let body = (0..body_len)
                    .map(|_| gen_stmt(rng, depth - 1, allow_calls))
                    .collect();
                S::CountedLoop(n, body)
            }
        };
    }
    match rng.below(4) {
        0 => S::Assign(rng.below(4) as usize, gen_expr(rng, 2, allow_calls)),
        1 => S::Store(
            rng.below(OUT_LEN as u64) as usize,
            gen_expr(rng, 2, allow_calls),
        ),
        2 => S::FloatStore(
            rng.below(OUT_LEN as u64) as usize,
            gen_expr(rng, 2, allow_calls),
        ),
        _ => S::StoreAtLoopVar(gen_expr(rng, 2, allow_calls)),
    }
}

fn gen_program(rng: &mut Rng) -> String {
    let stmts: Vec<S> = (0..rng.range(1, 8))
        .map(|_| gen_stmt(rng, 2, true))
        .collect();
    let helper: Vec<S> = (0..rng.range(1, 5))
        .map(|_| gen_stmt(rng, 1, false))
        .collect();
    let helper_ret = gen_expr(rng, 2, false);
    let ret = gen_expr(rng, 2, true);
    render_program(&stmts, &helper, &helper_ret, &ret)
}

fn observe(src: &str, opts: &Options, machine: MachineConfig) -> titanc_repro::titan::Observation {
    let compiled = compile(src, opts).expect("generated program compiles");
    titanc_repro::titan::observe(
        &compiled.program,
        machine,
        "main",
        &[
            ("out_g", ScalarType::Int, OUT_LEN as u32),
            ("out_f", ScalarType::Float, OUT_LEN as u32),
        ],
    )
    .unwrap_or_else(|e| {
        panic!(
            "run failed: {e}\nsource:\n{src}\nIL:\n{}",
            titanc_repro::il::pretty_proc(compiled.program.proc_by_name("main").unwrap())
        )
    })
    .0
}

fn fuzz_cases() -> u32 {
    // differential cases are expensive (4 compiles + 4 simulator runs
    // each); default modestly and let CI turn the dial
    std::env::var("TITANC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// O1, O2 and O2-parallel agree with the unoptimized program.
#[test]
fn optimization_levels_agree() {
    let mut rng = Rng(0xD1FF);
    for _ in 0..fuzz_cases() {
        let src = gen_program(&mut rng);
        let base = observe(&src, &Options::o0(), MachineConfig::default());
        let o1 = observe(&src, &Options::o1(), MachineConfig::default());
        assert_eq!(base, o1, "O1 diverged on:\n{src}");
        let o2 = observe(&src, &Options::o2(), MachineConfig::optimized(1));
        assert_eq!(base, o2, "O2 diverged on:\n{src}");
        let par = observe(&src, &Options::parallel(), MachineConfig::optimized(4));
        assert_eq!(base, par, "O2-parallel diverged on:\n{src}");
    }
}

/// The parser round-trips through the lowering pipeline without
/// crashing for every generated program (fuzz smoke).
#[test]
fn front_end_total() {
    let mut rng = Rng(0xF207);
    for _ in 0..fuzz_cases() {
        let src = gen_program(&mut rng);
        let tu = titanc_cfront::parse(&src).expect("parses");
        let prog = titanc_lower::lower(&tu).expect("lowers");
        assert!(!prog.is_empty(), "empty lowering for:\n{src}");
    }
}
