//! Regression tests for miscompiles found by the property-based suite and
//! the experiment harness during development. Each one is a distilled
//! program that once diverged between optimization levels.

use titanc_repro::il::ScalarType;
use titanc_repro::titan::{observe, MachineConfig};
use titanc_repro::titanc::{compile, Options};

fn check(src: &str, globals: &[(&str, ScalarType, u32)]) {
    let base = compile(src, &Options::o0()).expect("O0");
    let (expect, _) =
        observe(&base.program, MachineConfig::default(), "main", globals).expect("O0 runs");
    for (name, opts) in [
        ("O1", Options::o1()),
        ("O2", Options::o2()),
        ("O2-parallel", Options::parallel()),
    ] {
        let c = compile(src, &opts).unwrap();
        let (got, _) = observe(&c.program, MachineConfig::optimized(2), "main", globals)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(expect, got, "{name} diverged");
    }
}

/// Hoisting `vd = 11` above an earlier read of `vd` gave the first
/// iteration the wrong value (found by proptest).
#[test]
fn hoist_must_not_pass_prior_reads() {
    check(
        r#"
int out_g[16];
float out_f[16];
int main(void)
{
    int va, vd, li;
    va = 1; vd = 4;
    for (li = 0; li < 1; li++) {
        if (li) {
            va = 2;
        } else {
            out_f[1] = (0 - vd) * 0.5f;
            out_g[li] = 1;
        }
        vd = 11;
    }
    return va;
}
"#,
        &[
            ("out_g", ScalarType::Int, 16),
            ("out_f", ScalarType::Float, 16),
        ],
    );
}

/// Hoisting out of a zero-trip loop must not execute the assignment at
/// all when the variable is read afterwards.
#[test]
fn hoist_must_not_fire_for_zero_trip_loops() {
    check(
        r#"
int out_g[1];
int main(void)
{
    int v, li, n;
    v = 7;
    n = 0;
    for (li = 0; li < n; li++) {
        v = 99;
        out_g[0] = v;
    }
    return v;
}
"#,
        &[("out_g", ScalarType::Int, 1)],
    );
}

/// A countdown copy over overlapping pointers is a recurrence: the
/// distance must be computed in iteration space, not loop-variable space
/// (negative steps flipped true deps into anti deps and vectorized it).
#[test]
fn countdown_recurrence_must_not_vectorize() {
    let src = r#"
float buf[64];
int main(void)
{
    float *a, *b;
    int n;
    a = &buf[1];
    b = &buf[0];
    buf[0] = 1.0f;
    n = 32;
    while (n) { *a++ = *b++ + 1.0f; n--; }
    return (int)buf[32];
}
"#;
    let c = compile(src, &Options::o2()).unwrap();
    assert_eq!(
        c.reports.vector.vectorized, 0,
        "recurrence wrongly vectorized"
    );
    check(src, &[("buf", ScalarType::Float, 64)]);
}

/// Multi-term affine bases (outer-loop offsets riding along) must still
/// disambiguate distinct named arrays — the 2-D copy failed to vectorize.
#[test]
fn two_d_distinct_arrays_vectorize() {
    let src = r#"
float m[32][32], v[32][32];
int main(void)
{
    int i, j;
    for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
            m[i][j] = v[i][j] * 2.0f;
    return 0;
}
"#;
    let c = compile(src, &Options::o2()).unwrap();
    assert!(c.reports.vector.vectorized >= 1, "{:?}", c.reports.vector);
    check(src, &[("m", ScalarType::Float, 1024)]);
}

/// Forward substitution across labels merged values from different paths
/// (the inlined `classify` returned 0 for every input).
#[test]
fn forward_substitution_stops_at_joins() {
    check(
        r#"
int classify(int x) { if (x > 10) return 2; if (x > 0) return 1; return 0; }
int out_g[3];
int main(void)
{
    out_g[0] = classify(-4);
    out_g[1] = classify(4);
    out_g[2] = classify(40);
    return out_g[0] + out_g[1] * 10 + out_g[2] * 100;
}
"#,
        &[("out_g", ScalarType::Int, 3)],
    );
}

/// An accumulation is not an induction variable: `s += i` must not be
/// "substituted" using the loop counter (the increment reads the loop
/// variable, which the DO header defines).
#[test]
fn accumulation_is_not_an_induction_variable() {
    check(
        "int out_g[1]; int main(void) { int i, s; s = 0; for (i = 1; i <= 10; i++) s += i; out_g[0] = s; return s; }",
        &[("out_g", ScalarType::Int, 1)],
    );
}

/// Inlining remapped memory-target addresses twice; when a caller variable
/// id collided with a callee id the store base changed arrays entirely
/// (found via the graphics-transform example: stores to `out_pts` landed
/// on `&in_transform_c`).
#[test]
fn inline_does_not_double_remap_store_addresses() {
    check(
        r#"
float xf[4], pts[8], out_pts[8];
void transform(void)
{
    int i;
    float acc;
    for (i = 0; i < 8; i++) {
        acc = xf[i & 3] * pts[i];
        out_pts[i] = acc;
    }
}
int main(void)
{
    int i;
    for (i = 0; i < 4; i++) xf[i] = i + 1;
    for (i = 0; i < 8; i++) pts[i] = i;
    transform();
    return (int)out_pts[7];
}
"#,
        &[("out_pts", ScalarType::Float, 8)],
    );
}

/// Stores inside an `If` body were invisible to the dependence graph, so
/// distribution hoisted a later store to the same cell above the branch
/// (found by proptest with the multi-procedure generator).
#[test]
fn distribution_sees_stores_inside_branches() {
    check(
        r#"
int out_g[16];
int main(void)
{
    int vb, li;
    vb = 2;
    for (li = 0; li < 1; li++) {
        if (vb - 1) {
            vb = 0;
            out_g[li] = 3 + li;
        }
        out_g[li] = 0;
    }
    return out_g[0];
}
"#,
        &[("out_g", ScalarType::Int, 16)],
    );
}

/// An inner loop vectorized into a Section statement left no memory
/// references in the outer loop's dependence graph, so distribution moved
/// a later store to the same array ahead of it (fuzzer case 1215).
#[test]
fn section_statements_constrain_outer_distribution() {
    check(
        r#"
int out_g[16];
int helper(int ha, int hb)
{
    int va, vb, l1;
    va = ha; vb = hb;
    for (l1 = 0; l1 < 11; l1++) {
        out_g[l1] = (va * (vb + -4));
    }
    return 4;
}
int main(void)
{
    int vd, l1;
    vd = 4;
    for (l1 = 0; l1 < 8; l1++) {
        out_g[l1] = helper((vd + vd), (vd + l1));
    }
    return 0;
}
"#,
        &[("out_g", ScalarType::Int, 16)],
    );
}
