//! End-to-end tests for multi-file sessions and the persistent
//! compilation cache: warm runs are byte-identical to cold runs and to
//! every `-j` value, a fully warm run executes zero optimization
//! passes, `--no-inline` sessions invalidate per procedure, inlining
//! sessions invalidate the edited procedure's dependency cone only,
//! duplicate definitions are diagnosed with both origins named, and
//! origin-tagged spans attribute loops to the file they were written
//! in.

use std::path::PathBuf;

use titanc_repro::titanc::{compile_session, OptReport, Options, SessionCompilation, SourceFile};

/// A fresh per-test cache directory under the target dir (parallel test
/// threads must not share one).
fn cache_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/test-caches"))
        .join(format!("{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus(name: &str) -> SourceFile {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")).join(name);
    SourceFile::new(
        format!("corpus/{name}"),
        std::fs::read_to_string(path).expect("corpus file"),
    )
}

const LIB_SRC: &str = "\
float buf[64];
void fill(int n, float v)
{
    int i;
    for (i = 0; i < n; i++)
        buf[i] = v;
}
";

const MAIN_SRC: &str = "\
int total;
int main(void)
{
    int i;
    total = 0;
    for (i = 0; i < 32; i++)
        total = total + i;
    return total;
}
";

fn opt_report_json(sc: &SessionCompilation) -> String {
    OptReport::build_for(
        &sc.compilation.reports,
        &sc.compilation.trace,
        &sc.compilation.program.files,
    )
    .to_json()
    .to_string_compact()
}

fn il_text(sc: &SessionCompilation) -> String {
    sc.compilation
        .program
        .procs
        .iter()
        .map(titanc_il::pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Acceptance: the warm run is byte-identical to the cold run — same
/// optimized IL, same `--opt-report=json` — while executing **zero**
/// optimization passes.
#[test]
fn warm_run_is_byte_identical_and_runs_no_passes() {
    let dir = cache_dir("warm-identical");
    let files = [corpus("daxpy.c"), corpus("blaslib.c")];
    let options = Options::o2();

    let cold = compile_session(&files, &options, Some(&dir)).expect("cold compile");
    assert!(cold.stats.hits == 0 && cold.stats.misses > 0 && !cold.stats.full_warm);
    assert!(cold.stats.passes_executed > 0);

    let warm = compile_session(&files, &options, Some(&dir)).expect("warm compile");
    assert!(warm.stats.full_warm, "second run should be fully warm");
    assert_eq!(warm.stats.passes_executed, 0, "warm run must run no passes");
    assert_eq!(warm.stats.hits, warm.compilation.program.procs.len());

    assert_eq!(il_text(&cold), il_text(&warm), "optimized IL must match");
    assert_eq!(
        opt_report_json(&cold),
        opt_report_json(&warm),
        "opt report must be byte-identical cold vs warm"
    );
    assert_eq!(
        cold.compilation.diagnostics.len(),
        warm.compilation.diagnostics.len(),
        "remarks must replay on warm runs"
    );
}

/// The warm run is also byte-identical across `-j` values, preserving
/// the PR 2 invariant through the cache.
#[test]
fn warm_run_is_byte_identical_across_jobs() {
    let dir = cache_dir("warm-jobs");
    let files = [corpus("daxpy.c"), corpus("backsolve.c")];
    let mut options = Options::o2();
    options.jobs = 1;
    let cold = compile_session(&files, &options, Some(&dir)).expect("cold compile");
    options.jobs = 4;
    let warm = compile_session(&files, &options, Some(&dir)).expect("warm compile");
    assert!(warm.stats.full_warm);
    assert_eq!(il_text(&cold), il_text(&warm));
    assert_eq!(opt_report_json(&cold), opt_report_json(&warm));
}

/// With inlining off the growth budget no longer couples procedures, so
/// editing one procedure invalidates exactly that procedure.
#[test]
fn no_inline_sessions_invalidate_per_procedure() {
    let dir = cache_dir("per-proc");
    let mut options = Options::o2();
    options.inline = false;
    let a = SourceFile::new("a.c", MAIN_SRC);
    let b = SourceFile::new("b.c", LIB_SRC);

    let cold =
        compile_session(&[a.clone(), b.clone()], &options, Some(&dir)).expect("cold compile");
    let n = cold.compilation.program.procs.len();
    assert_eq!(cold.stats.misses, n);

    // edit `fill` only: `main` must stay cached
    let b2 = SourceFile::new("b.c", LIB_SRC.replace("buf[i] = v;", "buf[i] = v + 1.0;"));
    let warm = compile_session(&[a, b2], &options, Some(&dir)).expect("edited compile");
    assert_eq!(warm.stats.hits, n - 1, "unchanged procedures must hit");
    assert_eq!(warm.stats.misses, 1, "only the edited procedure recompiles");
    assert_eq!(
        warm.stats.invalidated, 1,
        "the edit is an invalidation, not a cold miss"
    );
    assert!(!warm.stats.full_warm);
}

/// With inlining on, an edit invalidates exactly the procedures whose
/// inline dependency cone contains the edited procedure — callers that
/// can splice its body — while unrelated procedures stay warm.
#[test]
fn inline_sessions_invalidate_the_dependency_cone() {
    let dir = cache_dir("cone");
    let options = Options::o2();
    // `reset` calls `fill`; `main` calls neither.
    let lib_with_caller = format!("{LIB_SRC}void reset(void)\n{{\n    fill(64, 0.0);\n}}\n");
    let a = SourceFile::new("a.c", MAIN_SRC);
    let b = SourceFile::new("b.c", lib_with_caller.clone());
    let cold = compile_session(&[a.clone(), b], &options, Some(&dir)).expect("cold compile");
    assert_eq!(cold.stats.misses, 3, "main, fill, reset all compile cold");

    // edit `fill` only: its cone consumers are itself and `reset`
    let edited = lib_with_caller.replace("buf[i] = v;", "buf[i] = v + 1.0;");
    let b2 = SourceFile::new("b.c", edited);
    let warm =
        compile_session(&[a.clone(), b2.clone()], &options, Some(&dir)).expect("edited compile");
    assert_eq!(warm.stats.hits, 1, "main does not call fill and stays warm");
    assert_eq!(warm.stats.misses, 2, "fill and its caller reset recompile");
    assert_eq!(warm.stats.invalidated, 2, "both misses are invalidations");
    assert!(!warm.stats.full_warm);

    // the cone-scoped warm compile is byte-identical to a from-scratch one
    let fresh = compile_session(&[a, b2], &options, None).expect("reference compile");
    assert_eq!(il_text(&fresh), il_text(&warm));
    assert_eq!(opt_report_json(&fresh), opt_report_json(&warm));
}

/// Regression: the environment fingerprint rides in every per-procedure
/// key, so editing a global reaches procedures whose own text is
/// untouched — even with inlining off, where no cone links them.
#[test]
fn global_edits_miss_every_procedure_without_inlining() {
    let dir = cache_dir("global-edit");
    let mut options = Options::o2();
    options.inline = false;
    let a = SourceFile::new("a.c", MAIN_SRC);
    let b = SourceFile::new("b.c", LIB_SRC);
    let cold = compile_session(&[a.clone(), b], &options, Some(&dir)).expect("cold compile");
    let n = cold.compilation.program.procs.len();

    // grow `buf`: no procedure body changes, but the layout every
    // procedure was optimized against does
    let b2 = SourceFile::new("b.c", LIB_SRC.replace("buf[64]", "buf[96]"));
    let warm =
        compile_session(&[a.clone(), b2.clone()], &options, Some(&dir)).expect("edited compile");
    assert_eq!(warm.stats.hits, 0, "a global edit must reach every key");
    assert_eq!(warm.stats.misses, n);

    let fresh = compile_session(&[a, b2], &options, None).expect("reference compile");
    assert_eq!(il_text(&fresh), il_text(&warm));
    assert_eq!(opt_report_json(&fresh), opt_report_json(&warm));
}

/// Duplicate procedure definitions keep the first (CLI order) and name
/// both origins in the warning.
#[test]
fn duplicate_procedures_warn_with_both_origins() {
    let first = SourceFile::new("one.c", "int f(void) { return 1; }\n");
    let second = SourceFile::new(
        "two.c",
        "int f(void) { return 2; }\nint g(void) { return f(); }\n",
    );
    let sc = compile_session(&[first, second], &Options::o2(), None).expect("compiles");
    let warning = sc
        .compilation
        .diagnostics
        .iter()
        .find(|d| d.message.contains("shadowed"))
        .expect("expected a shadow warning");
    assert!(
        warning.message.contains("`f`")
            && warning.message.contains("two.c")
            && warning.message.contains("one.c"),
        "warning must name the procedure and both origins: {}",
        warning.message
    );
    // first definition wins: g() returns 1 through the kept f()
    let sim = titanc_repro::titan::Simulator::new(
        &sc.compilation.program,
        titanc_repro::titan::MachineConfig::optimized(1),
    );
    let mut sim = sim;
    let result = sim.run("g", &[]).expect("g runs");
    assert_eq!(result.value.expect("g returns").as_int(), 1);
}

/// Catalog procedures shadowed by the TU (or an earlier catalog) are
/// diagnosed too — previously `Catalog::link_into` dropped them
/// silently.
#[test]
fn shadowed_catalog_procedures_are_diagnosed() {
    let lib = compile_session(&[SourceFile::new("lib.c", LIB_SRC)], &Options::o2(), None)
        .expect("lib compiles");
    let catalog = titanc_il::Catalog::from_program("libcat", &lib.compilation.program);
    let mut options = Options::o2();
    options.catalogs.push(catalog);
    // the TU defines `fill` as well: the TU definition must win, with a
    // warning naming the catalog
    let src = format!("{LIB_SRC}{MAIN_SRC}");
    let sc = compile_session(&[SourceFile::new("app.c", src)], &options, None).expect("compiles");
    let warning = sc
        .compilation
        .diagnostics
        .iter()
        .find(|d| d.message.contains("shadowed"))
        .expect("expected a catalog shadow warning");
    assert!(
        warning.message.contains("`fill`") && warning.message.contains("libcat"),
        "warning must name the procedure and the catalog: {}",
        warning.message
    );
}

/// Loops merged from another TU report against their origin file, not
/// the consumer's line numbers.
#[test]
fn opt_report_attributes_loops_to_their_origin_file() {
    let a = SourceFile::new("main.c", MAIN_SRC);
    let b = SourceFile::new("lib.c", LIB_SRC);
    let sc = compile_session(&[a, b], &Options::o2(), None).expect("compiles");
    let report = OptReport::build_for(
        &sc.compilation.reports,
        &sc.compilation.trace,
        &sc.compilation.program.files,
    );
    let rendered = report.render();
    assert!(
        rendered.contains("lib.c:5:"),
        "fill's loop must be attributed to lib.c line 5:\n{rendered}"
    );
    assert!(
        rendered.contains("main.c:6:"),
        "main's loop must be attributed to main.c line 6:\n{rendered}"
    );
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"file\":\"lib.c\""), "{json}");
}

/// Several sessions racing into one cache directory stay byte-identical
/// to a no-cache compile, and the directory they leave behind is a
/// consistent, fully warm cache — the advisory writer lock keeps the
/// derived index and manifest from tearing.
#[test]
fn concurrent_sessions_share_one_directory_safely() {
    let dir = cache_dir("concurrent");
    let files = [corpus("daxpy.c"), corpus("blaslib.c")];
    let options = Options::o2();
    let reference = compile_session(&files, &options, None).expect("reference compile");

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (dir, files, options) = (&dir, &files, &options);
                scope.spawn(move || {
                    compile_session(files, options, Some(dir)).expect("racing compile")
                })
            })
            .collect();
        for h in handles {
            let sc = h.join().expect("racing session must not panic");
            assert_eq!(il_text(&reference), il_text(&sc));
            assert_eq!(opt_report_json(&reference), opt_report_json(&sc));
            assert_eq!(sc.stats.corrupt, 0, "a race is not corruption");
        }
    });

    // whatever interleaving happened, the survivors form a complete,
    // consistent cache: the next run is fully warm and clean
    let warm = compile_session(&files, &options, Some(&dir)).expect("warm compile");
    assert!(
        warm.stats.full_warm,
        "racing sessions must leave a fully warm cache"
    );
    assert_eq!(warm.stats.invalidated, 0, "no phantom invalidations");
    assert_eq!(warm.stats.corrupt, 0, "no corruption from the race");
    assert_eq!(il_text(&reference), il_text(&warm));
    assert_eq!(opt_report_json(&reference), opt_report_json(&warm));
}

/// A cache directory written by a pre-v3 compiler (entries on disk, no
/// `FORMAT` marker) is refused cleanly: the compile succeeds cold with
/// exactly one explanatory remark, and the old files are left exactly
/// as they were — never adopted, rewritten, or quarantined.
#[test]
fn v2_era_cache_dirs_fall_back_cold_with_one_remark() {
    let dir = cache_dir("v2-era");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stale_index = r#"{"procs":{"main":"00ff"}}"#;
    std::fs::write(dir.join("index.json"), stale_index).expect("seed v2 index");
    std::fs::write(dir.join("0123abcd.json"), "{\"version\":0}").expect("seed v2 entry");

    let files = [corpus("daxpy.c"), corpus("blaslib.c")];
    let reference = compile_session(&files, &Options::o2(), None).expect("reference compile");
    let sc = compile_session(&files, &Options::o2(), Some(&dir)).expect("v2 dir must not error");

    assert_eq!(sc.stats.hits, 0, "a refused directory cannot serve hits");
    assert!(!sc.stats.full_warm);
    assert_eq!(il_text(&reference), il_text(&sc));
    assert_eq!(opt_report_json(&reference), opt_report_json(&sc));

    let remarks: Vec<_> = sc
        .compilation
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("predates"))
        .collect();
    assert_eq!(
        remarks.len(),
        1,
        "exactly one format-skew remark: {:?}",
        sc.compilation
            .diagnostics
            .iter()
            .map(|d| &d.message)
            .collect::<Vec<_>>()
    );

    assert!(
        !dir.join("FORMAT").exists(),
        "a refused directory must not be adopted"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("index.json")).expect("index survives"),
        stale_index,
        "the v2 files must be untouched"
    );
    assert!(dir.join("0123abcd.json").exists());

    // a later run behaves the same way — refusal is stable, not sticky
    // state that decays into an error
    let again = compile_session(&files, &Options::o2(), Some(&dir)).expect("still compiles");
    assert_eq!(again.stats.hits, 0);
    assert_eq!(il_text(&reference), il_text(&again));
}

/// A directory written by the v3 format — whole-program inline keys,
/// pre-site-ordinal events — carries a marker naming the old version
/// and is refused the same way: one remark, cold compile, files
/// untouched.
#[test]
fn v3_era_cache_dirs_fall_back_cold_with_one_remark() {
    let dir = cache_dir("v3-era");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("FORMAT"), "titanc-cache-v3").expect("seed v3 marker");
    std::fs::write(dir.join("0123abcd.json"), "titanc-cache-v3 00ff\n{}").expect("seed v3 entry");

    let files = [corpus("daxpy.c"), corpus("blaslib.c")];
    let reference = compile_session(&files, &Options::o2(), None).expect("reference compile");
    let sc = compile_session(&files, &Options::o2(), Some(&dir)).expect("v3 dir must not error");

    assert_eq!(sc.stats.hits, 0, "a refused directory cannot serve hits");
    assert!(!sc.stats.full_warm);
    assert_eq!(il_text(&reference), il_text(&sc));
    assert_eq!(opt_report_json(&reference), opt_report_json(&sc));

    let remarks: Vec<_> = sc
        .compilation
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("titanc-cache-v3"))
        .collect();
    assert_eq!(
        remarks.len(),
        1,
        "exactly one format-skew remark: {:?}",
        sc.compilation
            .diagnostics
            .iter()
            .map(|d| &d.message)
            .collect::<Vec<_>>()
    );

    assert_eq!(
        std::fs::read_to_string(dir.join("FORMAT")).expect("marker survives"),
        "titanc-cache-v3",
        "the refused marker must not be rewritten"
    );
    assert!(dir.join("0123abcd.json").exists(), "old entries untouched");
}

/// `keep_parsed` snapshots the program before any pass runs — the §7
/// catalog payload.
#[test]
fn keep_parsed_snapshots_the_pre_pipeline_program() {
    let mut options = Options::o2();
    options.keep_parsed = true;
    let sc = compile_session(&[corpus("daxpy.c")], &options, None).expect("compiles");
    let parsed = sc.compilation.parsed.as_ref().expect("parsed snapshot");
    assert_ne!(
        parsed, &sc.compilation.program,
        "the parsed snapshot must predate optimization"
    );
    // the snapshot still has the un-inlined call; the optimized main
    // does not (daxpy was expanded into it)
    let parsed_main = parsed.proc_by_name("main").expect("parsed main");
    let opt_main = sc.compilation.program.proc_by_name("main").expect("main");
    let calls = |p: &titanc_il::Procedure| titanc_il::pretty_proc(p).contains("daxpy(");
    assert!(calls(parsed_main), "parsed main still calls daxpy");
    assert!(!calls(opt_main), "optimized main has daxpy inlined away");
}
