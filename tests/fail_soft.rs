//! Fail-soft acceptance tests: a pass that faults on one procedure is
//! contained — the procedure rolls back to its last-verified IL, every
//! other procedure is still fully optimized, exactly one [`PassIncident`]
//! lands on the trace, and the result is identical at `-j 1` and `-j 4`.

use titanc_il::{pretty_proc, Procedure, Program, StmtKind};
use titanc_repro::titanc::{
    compile, compile_with, Compilation, IncidentKind, Options, Pass, PassContext, PassOutcome,
    Pipeline, ProcAnalyses, ProcPass, Reports,
};
use titanc_titan::{MachineConfig, Simulator};

/// Three independent procedures so containment in one is observable in
/// the others: two vectorizable kernels and a faulty target.
const KERNEL: &str = r#"
float a[64], b[64], c[64];
void left(void) { int i; for (i = 0; i < 64; i++) a[i] = b[i] + c[i]; }
void faulty(void) { int i; for (i = 0; i < 64; i++) b[i] = 2.0f * c[i]; }
void right(void) { int i; for (i = 0; i < 64; i++) c[i] = a[i] * a[i]; }
int main(void) { left(); faulty(); right(); return 21; }
"#;

fn options(jobs: usize) -> Options {
    Options {
        inline: false, // keep the three procedures separate and comparable
        verify: true,
        jobs,
        ..Options::o2()
    }
}

/// Panics on the chosen procedure after wrecking it, so a surviving wreck
/// would be visible: rollback must restore the pre-pass IL exactly.
struct Boom;

impl ProcPass for Boom {
    fn name(&self) -> &'static str {
        "boom"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _cx: &PassContext<'_>,
        _analyses: &mut ProcAnalyses,
        _delta: &mut Reports,
    ) -> PassOutcome {
        if proc.name == "faulty" {
            proc.body.clear();
            proc.bump_generation();
            panic!("injected fault in `{}`", proc.name);
        }
        PassOutcome::unchanged()
    }
}

/// Corrupts the chosen procedure *without* panicking: a goto to a label
/// that is never defined. The inter-pass verifier must catch it and the
/// manager must roll back, exactly as for a panic.
struct Corrupt;

impl ProcPass for Corrupt {
    fn name(&self) -> &'static str {
        "corrupt"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _cx: &PassContext<'_>,
        _analyses: &mut ProcAnalyses,
        _delta: &mut Reports,
    ) -> PassOutcome {
        if proc.name == "faulty" {
            let dangling = proc.fresh_label();
            let st = proc.stamp(StmtKind::Goto(dangling));
            proc.body.push(st);
            proc.bump_generation();
            return PassOutcome::changed();
        }
        PassOutcome::unchanged()
    }
}

fn compile_injected(pass: impl ProcPass + 'static, jobs: usize) -> Compilation {
    let opts = options(jobs);
    let mut pipeline = Pipeline::for_options(&opts);
    pipeline.push_proc(pass);
    compile_with(KERNEL, &opts, pipeline).expect("front end is clean")
}

fn pretty_all(program: &Program) -> Vec<(String, String)> {
    program
        .procs
        .iter()
        .map(|p| (p.name.clone(), pretty_proc(p)))
        .collect()
}

#[test]
fn injected_panic_is_contained_and_rolled_back() {
    let reference = compile(KERNEL, &options(1)).expect("reference compile");
    assert!(!reference.has_incidents());

    let faulted = compile_injected(Boom, 1);

    // exactly one incident, attributed to the right pass and procedure
    assert_eq!(
        faulted.trace.incidents.len(),
        1,
        "{:?}",
        faulted.trace.incidents
    );
    let incident = &faulted.trace.incidents[0];
    assert_eq!(incident.pass, "boom");
    assert_eq!(incident.proc.as_deref(), Some("faulty"));
    assert_eq!(incident.kind, IncidentKind::Panic);
    assert!(incident.detail.contains("injected fault"));

    // the faulty procedure rolled back to its last-verified IL — which,
    // with the fault injected after the standard pipeline, is the fully
    // optimized body — and every other procedure is untouched by the
    // containment: the whole program matches the reference compile
    assert_eq!(pretty_all(&faulted.program), pretty_all(&reference.program));

    // and the other procedures really were optimized, not just preserved
    assert!(
        faulted.reports.vector.vectorized >= 2,
        "{:?}",
        faulted.reports.vector
    );
}

#[test]
fn verifier_rejection_is_contained_like_a_panic() {
    let reference = compile(KERNEL, &options(1)).expect("reference compile");
    let faulted = compile_injected(Corrupt, 1);

    assert_eq!(
        faulted.trace.incidents.len(),
        1,
        "{:?}",
        faulted.trace.incidents
    );
    let incident = &faulted.trace.incidents[0];
    assert_eq!(incident.pass, "corrupt");
    assert_eq!(incident.proc.as_deref(), Some("faulty"));
    assert_eq!(incident.kind, IncidentKind::VerifyFailed);

    assert_eq!(pretty_all(&faulted.program), pretty_all(&reference.program));
}

#[test]
fn containment_is_identical_across_job_counts() {
    let j1 = compile_injected(Boom, 1);
    let j4 = compile_injected(Boom, 4);

    assert_eq!(j1.trace.incidents, j4.trace.incidents);
    assert_eq!(pretty_all(&j1.program), pretty_all(&j4.program));
    let names1: Vec<_> = j1.trace.records.iter().map(|r| r.name).collect();
    let names4: Vec<_> = j4.trace.records.iter().map(|r| r.name).collect();
    assert_eq!(names1, names4);
}

#[test]
fn degraded_program_still_executes() {
    let faulted = compile_injected(Boom, 4);
    let mut sim = Simulator::new(&faulted.program, MachineConfig::optimized(1));
    let result = sim.run("main", &[]).expect("degraded program runs");
    assert_eq!(result.value.map(|v| v.as_int()), Some(21));
}

/// A whole-program pass that wrecks the program then panics: containment
/// at program granularity must restore the backup wholesale.
struct ProgramBoom;

impl Pass for ProgramBoom {
    fn name(&self) -> &'static str {
        "program-boom"
    }

    fn run(
        &self,
        program: &mut Program,
        _cx: &PassContext<'_>,
        _delta: &mut Reports,
    ) -> PassOutcome {
        program.procs.clear();
        panic!("injected whole-program fault");
    }
}

#[test]
fn whole_program_pass_panic_restores_the_backup() {
    let reference = compile(KERNEL, &options(1)).expect("reference compile");
    let opts = options(1);
    let mut pipeline = Pipeline::for_options(&opts);
    pipeline.push(ProgramBoom);
    let faulted = compile_with(KERNEL, &opts, pipeline).expect("front end is clean");

    assert_eq!(
        faulted.trace.incidents.len(),
        1,
        "{:?}",
        faulted.trace.incidents
    );
    let incident = &faulted.trace.incidents[0];
    assert_eq!(incident.pass, "program-boom");
    assert_eq!(incident.proc, None);
    assert_eq!(incident.kind, IncidentKind::Panic);

    assert_eq!(pretty_all(&faulted.program), pretty_all(&reference.program));
}
