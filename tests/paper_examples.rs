//! Integration tests over the paper's own examples (the corpus), spanning
//! every crate: front end → inliner → scalar optimizer → dependence
//! analysis → vectorizer → Titan simulator.

use titanc_repro::il::ScalarType;
use titanc_repro::titan::{observe, MachineConfig, Simulator};
use titanc_repro::titanc::{compile, Options};

const DAXPY: &str = include_str!("../corpus/daxpy.c");
const BACKSOLVE: &str = include_str!("../corpus/backsolve.c");
const COPY: &str = include_str!("../corpus/copy.c");
const STRUCT_MATRIX: &str = include_str!("../corpus/struct_matrix.c");
const BLASLIB: &str = include_str!("../corpus/blaslib.c");

fn equivalence(src: &str, globals: &[(&str, ScalarType, u32)]) {
    let base = compile(src, &Options::o0()).expect("O0");
    let (expect, _) =
        observe(&base.program, MachineConfig::default(), "main", globals).expect("O0 runs");
    for (name, opts, procs) in [
        ("O1", Options::o1(), 1u32),
        ("O2", Options::o2(), 1),
        ("parallel-2", Options::parallel(), 2),
        ("parallel-4", Options::parallel(), 4),
    ] {
        let c = compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (got, _) = observe(&c.program, MachineConfig::optimized(procs), "main", globals)
            .unwrap_or_else(|e| panic!("{name} run: {e}"));
        assert_eq!(expect, got, "{name} diverged");
    }
}

#[test]
fn daxpy_all_levels_agree() {
    equivalence(DAXPY, &[("a", ScalarType::Float, 100)]);
}

#[test]
fn daxpy_reaches_twelve_x_on_two_processors() {
    let scalar = compile(DAXPY, &Options::o1()).unwrap();
    let mut sim = Simulator::new(&scalar.program, MachineConfig::scalar());
    let s = sim.run("main", &[]).unwrap().stats;

    let par = compile(DAXPY, &Options::parallel()).unwrap();
    assert!(par.reports.inline.inlined >= 1);
    assert!(par.reports.vector.vectorized >= 1);
    let mut sim = Simulator::new(&par.program, MachineConfig::optimized(2));
    let p = sim.run("main", &[]).unwrap().stats;

    let speedup = s.cycles / p.cycles;
    assert!(
        (8.0..20.0).contains(&speedup),
        "paper claims 12x on two processors; measured {speedup:.2}x"
    );
}

#[test]
fn backsolve_all_levels_agree() {
    equivalence(BACKSOLVE, &[("x", ScalarType::Float, 200)]);
}

#[test]
fn backsolve_mflops_shape() {
    // paper: 0.5 MFLOPS scalar-only, 1.9 MFLOPS dependence-driven
    let scalar = compile(BACKSOLVE, &Options::o1()).unwrap();
    let mut sim = Simulator::new(&scalar.program, MachineConfig::scalar());
    let s = sim.run("main", &[]).unwrap().stats;
    let m_scalar = s.mflops(16.0);

    let opt = compile(BACKSOLVE, &Options::o2()).unwrap();
    assert!(
        opt.reports.strength.promoted >= 1,
        "{:?}",
        opt.reports.strength
    );
    assert_eq!(
        opt.reports.vector.vectorized, 0,
        "recurrence must stay scalar"
    );
    let mut sim = Simulator::new(&opt.program, MachineConfig::optimized(1));
    let o = sim.run("main", &[]).unwrap().stats;
    let m_opt = o.mflops(16.0);

    assert!(
        (0.2..0.8).contains(&m_scalar),
        "scalar baseline near the paper's 0.5 MFLOPS, got {m_scalar:.2}"
    );
    assert!(
        (1.5..3.5).contains(&m_opt),
        "optimized near the paper's 1.9 MFLOPS, got {m_opt:.2}"
    );
}

#[test]
fn copy_all_levels_agree_and_vectorize() {
    equivalence(COPY, &[("dst", ScalarType::Float, 128)]);
    let c = compile(COPY, &Options::o2()).unwrap();
    assert!(c.reports.vector.vectorized >= 1);
    assert!(c.reports.ivsub.substituted >= 3, "{:?}", c.reports.ivsub);
}

#[test]
fn struct_matrix_all_levels_agree() {
    equivalence(STRUCT_MATRIX, &[("out_pts", ScalarType::Float, 64)]);
}

#[test]
fn blaslib_compiles_standalone() {
    // the library alone has no main; all four routines survive O2
    let c = compile(BLASLIB, &Options::o2()).unwrap();
    assert_eq!(c.program.procs.len(), 4);
    for p in &c.program.procs {
        assert!(!p.is_empty(), "{} not emptied by optimization", p.name);
    }
}

#[test]
fn pragma_safe_copy_emits_sections() {
    let c = compile(COPY, &Options::o2()).unwrap();
    let main = c.program.proc_by_name("main").unwrap();
    let text = titanc_repro::il::pretty_proc(main);
    assert!(
        text.contains("(float)["),
        "triplet sections emitted:\n{text}"
    );
}

#[test]
fn daxpy_without_inlining_stays_scalar_under_c_aliasing() {
    // without inlining, x/y/z are pointer parameters that may alias: the
    // paper's central motivation for inline expansion
    let opts = Options {
        inline: false,
        ..Options::o2()
    };
    let c = compile(DAXPY, &opts).unwrap();
    assert_eq!(
        c.reports.vector.vectorized, 0,
        "daxpy body must not vectorize under C aliasing without inlining"
    );
    // but with the Fortran-parameter-semantics option it does (§9)
    let opts = Options {
        inline: false,
        aliasing: titanc_repro::titanc::Aliasing::Fortran,
        ..Options::o2()
    };
    let c = compile(DAXPY, &opts).unwrap();
    assert!(c.reports.vector.vectorized >= 1);
}

#[test]
fn reports_accumulate_sensibly() {
    let c = compile(DAXPY, &Options::parallel()).unwrap();
    assert!(c.reports.whiledo.converted >= 1);
    assert!(c.reports.forward.substituted > 0);
    // forward substitution may propagate the constants first; branch
    // folding still credits constprop
    assert!(c.reports.constprop.replaced + c.reports.constprop.removed > 0);
    assert!(c.reports.dce.removed > 0);
}
