//! Pass-manager regression tests: pipeline ordering pinned through the
//! [`PassTrace`], per-pass delta attribution, custom pipelines, and the
//! opt-in release-mode IL verifier.
//!
//! The orderings asserted here are load-bearing paper facts: while→DO
//! conversion must run before induction-variable substitution (§5.2 — IVS
//! only fires on counted loops), and vectorization must run before the §6
//! strength reductions (which rewrite the vector IL the vectorizer emits).

use titanc_repro::titanc::{compile, Options, Pass, PassContext, PassOutcome, Pipeline};

/// A while-loop kernel that exercises every scalar pass plus the
/// vectorizer: daxpy with pointer bumping, inlined into main.
const KERNEL: &str = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void)
{
    daxpy(a, b, c, 3.0f, 100);
    return 0;
}
"#;

fn index_of(c: &titanc_repro::titanc::Compilation, name: &str) -> usize {
    c.trace
        .index_of(name)
        .unwrap_or_else(|| panic!("pass `{name}` missing from trace: {:?}", pass_names(c)))
}

fn pass_names(c: &titanc_repro::titanc::Compilation) -> Vec<&'static str> {
    c.trace.records.iter().map(|r| r.name).collect()
}

#[test]
fn while_do_conversion_runs_before_ivsub() {
    let c = compile(KERNEL, &Options::parallel()).unwrap();
    assert!(
        index_of(&c, "whiledo") < index_of(&c, "ivsub"),
        "IVS needs counted loops, so while→DO must come first: {:?}",
        pass_names(&c)
    );
    // and the ordering matters: both actually fired on this kernel
    assert!(c.reports.whiledo.converted >= 1);
    assert!(c.reports.ivsub.substituted >= 1);
}

#[test]
fn vectorize_runs_before_strength_reduction() {
    let c = compile(KERNEL, &Options::parallel()).unwrap();
    assert!(
        index_of(&c, "vectorize") < index_of(&c, "strength"),
        "§6 optimizations rewrite vector IL: {:?}",
        pass_names(&c)
    );
    assert!(c.reports.vector.vectorized >= 1);
}

#[test]
fn trace_matches_pipeline_for_options() {
    // the trace is the pipeline: same passes, same order
    let opts = Options::parallel();
    let c = compile(KERNEL, &opts).unwrap();
    assert_eq!(pass_names(&c), Pipeline::for_options(&opts).pass_names());
}

#[test]
fn o0_trace_is_empty_and_o1_has_no_vector_passes() {
    let c0 = compile(KERNEL, &Options::o0()).unwrap();
    assert!(
        c0.trace.records.is_empty(),
        "O0 without inlining runs no passes: {:?}",
        pass_names(&c0)
    );
    let c1 = compile(KERNEL, &Options::o1()).unwrap();
    for forbidden in ["vectorize", "strength", "spread_lists"] {
        assert!(
            c1.trace.index_of(forbidden).is_none(),
            "O1 must not run `{forbidden}`: {:?}",
            pass_names(&c1)
        );
    }
    assert!(c1.trace.index_of("whiledo").is_some());
}

#[test]
fn per_pass_deltas_attribute_work_to_the_right_pass() {
    let c = compile(KERNEL, &Options::parallel()).unwrap();
    let whiledo = c.trace.record("whiledo").unwrap();
    assert!(whiledo.changed);
    assert!(whiledo.delta.whiledo.converted >= 1);
    // a pass's delta contains only its own statistics
    assert_eq!(whiledo.delta.vector.vectorized, 0);
    let vectorize = c.trace.record("vectorize").unwrap();
    assert!(vectorize.delta.vector.vectorized >= 1);
    assert_eq!(vectorize.delta.whiledo.converted, 0);
}

#[test]
fn aggregate_reports_equal_sum_of_deltas() {
    let c = compile(KERNEL, &Options::parallel()).unwrap();
    let summed: usize = c.trace.records.iter().map(|r| r.delta.dce.removed).sum();
    assert_eq!(c.reports.dce.removed, summed, "dce total = sum of deltas");
    let inlined: usize = c.trace.records.iter().map(|r| r.delta.inline.inlined).sum();
    assert_eq!(c.reports.inline.inlined, inlined);
}

#[test]
fn release_mode_verifier_accepts_the_whole_pipeline() {
    // debug builds verify implicitly; `verify: true` covers release runs.
    // A verifier failure panics as an internal compiler error.
    for opts in [
        Options::o0(),
        Options::o1(),
        Options::o2(),
        Options::parallel(),
    ] {
        let c = compile(
            KERNEL,
            &Options {
                verify: true,
                inline: true,
                ..opts
            },
        )
        .unwrap();
        titanc_repro::il::verify_program(&c.program).expect("final IL verifies");
    }
}

#[test]
fn custom_pipeline_runs_user_defined_passes() {
    use std::cell::Cell;
    use std::rc::Rc;

    struct CountProcs {
        seen: Rc<Cell<usize>>,
    }
    impl Pass for CountProcs {
        fn name(&self) -> &'static str {
            "count-procs"
        }
        fn run(
            &self,
            program: &mut titanc_repro::titanc::Program,
            _cx: &PassContext<'_>,
            _delta: &mut titanc_repro::titanc::Reports,
        ) -> PassOutcome {
            self.seen.set(program.procs.len());
            PassOutcome::unchanged()
        }
    }

    let opts = Options::o0();
    let mut program = titanc_lower::compile_to_il(KERNEL).unwrap();
    let seen = Rc::new(Cell::new(0));
    let mut pipeline = Pipeline::new();
    pipeline.push(CountProcs { seen: seen.clone() });
    assert_eq!(pipeline.pass_names(), vec!["count-procs"]);
    let (_, trace) = pipeline.run(&mut program, &opts, &mut Vec::new());
    assert_eq!(seen.get(), 2, "daxpy + main");
    let rec = trace.record("count-procs").expect("custom pass traced");
    assert!(!rec.changed);
}
