//! EXP5 (§5.2): while→DO conversion coverage.
//!
//! "While the conversion of while loops to iterative loops may seem
//! straightforward, there are a surprising number of intricacies involved"
//! — this table runs the loop-form corpus and reports which forms convert
//! and why the rest are rejected.

use titanc_bench::whiledo_corpus;
use titanc_lower::compile_to_il;
use titanc_opt::convert_while_loops;

fn main() {
    println!("== EXP5 while→DO conversion coverage (§5.2)");
    let mut converted = 0;
    let mut total = 0;
    for (name, src, expect) in whiledo_corpus() {
        let prog = compile_to_il(&src).expect("corpus compiles");
        let mut proc = prog.procs[0].clone();
        let rep = convert_while_loops(&mut proc);
        let did = rep.converted > 0;
        let reason = rep
            .rejects
            .first()
            .map(|(_, r)| format!("{r:?}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "   {:<44} {:<9} {}",
            name,
            if did { "converted" } else { "rejected" },
            if did { String::from("-") } else { reason }
        );
        assert_eq!(did, expect, "unexpected outcome for `{name}`");
        total += 1;
        if did {
            converted += 1;
        }
    }
    println!("   {converted}/{total} loop forms converted\n");
    println!("EXP5 ok");
}
