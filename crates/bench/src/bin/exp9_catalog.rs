//! EXP9 (§7): procedure catalogs.
//!
//! "Math libraries can be 'compiled' into databases and used as a base
//! for inlining, much as include directories are used as a source for
//! header files." This experiment compiles the BLAS-1 library into a
//! catalog, round-trips it through its serialized form, inlines from it,
//! and checks the result is exactly as good as same-file inlining.

use titanc::{Catalog, Options};
use titanc_bench::{corpus, print_table, Row};
use titanc_titan::{MachineConfig, Simulator};

const APP: &str = r#"
void blas_daxpy(float *x, float *y, float *z, float alpha, int n);
void blas_set(float *x, float value, int n);
float a[256], b[256], c[256];
int main(void)
{
    blas_set(b, 2.0f, 256);
    blas_set(c, 3.0f, 256);
    blas_daxpy(a, b, c, 2.0, 256);
    return (int)a[255];
}
"#;

fn main() {
    // build the catalog from the separately-compiled library
    let lib = titanc_lower::compile_to_il(corpus::BLASLIB).expect("library compiles");
    let catalog = Catalog::from_program("blas", &lib);
    let json = catalog.to_json();
    let catalog = Catalog::from_json(&json).expect("round-trips");
    println!(
        "catalog `blas`: {} procedures, {} bytes serialized",
        catalog.procs.len(),
        json.len()
    );

    // cross-file: app + catalog
    let cross = titanc::compile(
        APP,
        &Options {
            catalogs: vec![catalog],
            ..Options::parallel()
        },
    )
    .expect("cross-file compile");

    // same-file: paste the library into the app
    let same_src = format!("{}\n{}", corpus::BLASLIB, APP.replace(
        "void blas_daxpy(float *x, float *y, float *z, float alpha, int n);\nvoid blas_set(float *x, float value, int n);\n",
        "",
    ));
    let same = titanc::compile(&same_src, &Options::parallel()).expect("same-file compile");

    let run = |prog: &titanc::Program| {
        let mut sim = Simulator::new(prog, MachineConfig::optimized(2));
        sim.run("main", &[]).expect("runs").stats
    };
    let s_cross = run(&cross.program);
    let s_same = run(&same.program);

    print_table(
        "EXP9 catalog-based cross-file inlining (§7)",
        "inlining from a serialized catalog equals same-file inlining",
        &[
            Row {
                label: "cross-file (catalog) cycles".into(),
                value: s_cross.cycles,
                note: format!("{} call sites inlined", cross.reports.inline.inlined),
            },
            Row {
                label: "same-file cycles".into(),
                value: s_same.cycles,
                note: format!("{} call sites inlined", same.reports.inline.inlined),
            },
        ],
    );
    assert_eq!(cross.reports.inline.inlined, same.reports.inline.inlined);
    assert!(
        (s_cross.cycles - s_same.cycles).abs() < 1e-9,
        "identical code quality"
    );
    assert!(
        cross.reports.vector.vectorized >= 1,
        "library loops vectorize after inlining"
    );
    println!("EXP9 ok");
}
