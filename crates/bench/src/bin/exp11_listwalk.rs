//! EXP11 (§10 future work): spreading linked-list loops.
//!
//! "First, we plan to enhance the parallelization to include list and
//! graph structures … Parallelizing this type of code will enable a wider
//! range of programs to utilize the multiple processors in the Titan."
//! This experiment implements that plan: the pointer chase serializes,
//! the per-node work distributes.

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{corpus, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    let plain = Options::parallel();
    let spread = Options {
        spread_lists: true,
        ..Options::parallel()
    };
    let c = titanc::compile(corpus::LISTWALK, &spread).expect("compiles");
    // the walk appears twice: in `work` and inlined into `main`
    assert!(c.reports.spread.spread >= 1, "{:?}", c.reports.spread);

    let mut cases = vec![ExpCase::new(plain, MachineConfig::optimized(1))];
    for procs in [1u32, 2, 4] {
        cases.push(ExpCase::new(
            spread.clone(),
            MachineConfig::optimized(procs),
        ));
    }
    let stats = run_experiment(corpus::LISTWALK, &cases, engine);
    let base = &stats[0];
    let mut rows = vec![Row {
        label: "list walk, no spreading".into(),
        value: base.cycles,
        note: "cycles".into(),
    }];
    for (s, procs) in stats[1..].iter().zip([1u32, 2, 4]) {
        rows.push(Row {
            label: format!("spread across {procs} proc(s)"),
            value: s.cycles,
            note: format!("cycles, speedup {:.2}x", base.cycles / s.cycles),
        });
        if procs == 4 {
            assert!(
                base.cycles / s.cycles > 1.5,
                "spreading must pay off on 4 processors"
            );
        }
    }
    print_table(
        "EXP11 linked-list loop spreading (§10 future work)",
        "list loops cannot vectorize but spread across processors with a serialized chase",
        &rows,
    );
    println!("EXP11 ok");
}
