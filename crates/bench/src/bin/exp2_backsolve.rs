//! EXP2 (§6): the backsolve loop.
//!
//! `p[i] = z[i] * (y[i] - q[i])` with `p = &x[1], q = &x[0]` carries a
//! distance-1 flow dependence, so it can never vectorize — but the
//! dependence graph drives register promotion, instruction-scheduling
//! overlap and strength reduction. The paper measures **0.5 MFLOPS with
//! scalar optimization only and 1.9 MFLOPS with the dependence-driven
//! optimizations** (within 5% of the best possible code for the loop).

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{backsolve_source, mflops, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    for n in [100usize, 1024] {
        let src = backsolve_source(n);
        let stats = run_experiment(
            &src,
            &[
                // the paper's baseline: scalar optimization only, no
                // dependence information for the scheduler (no overlap)
                ExpCase::new(Options::o1(), MachineConfig::scalar()),
                // dependence-driven: register promotion + strength
                // reduction + scheduling overlap
                ExpCase::new(Options::o2(), MachineConfig::optimized(1)),
            ],
            engine,
        );
        let [scalar, optimized] = &stats[..] else {
            unreachable!("two cases")
        };
        let m_scalar = mflops(scalar);
        let m_opt = mflops(optimized);
        print_table(
            &format!("EXP2 backsolve, n = {n}"),
            "0.5 MFLOPS scalar-only -> 1.9 MFLOPS with dependence-driven optimization (~3.8x)",
            &[
                Row {
                    label: "scalar only (O1, no overlap)".into(),
                    value: m_scalar,
                    note: format!("MFLOPS ({:.0} cycles)", scalar.cycles),
                },
                Row {
                    label: "dependence-driven (O2, overlap)".into(),
                    value: m_opt,
                    note: format!(
                        "MFLOPS ({:.0} cycles), speedup {:.2}x",
                        optimized.cycles,
                        scalar.cycles / optimized.cycles
                    ),
                },
            ],
        );
        assert!(
            m_scalar < 1.0,
            "scalar baseline should be well under 1 MFLOPS"
        );
        assert!(m_opt > 2.0 * m_scalar, "dependence-driven wins clearly");
        assert_eq!(optimized.vector_instrs, 0, "the loop must stay scalar");
    }
    println!("EXP2 ok");
}
