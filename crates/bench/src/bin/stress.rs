//! Differential stress harness for the fail-soft pipeline.
//!
//! Generates random C programs ([`titanc_bench::progen`]) and, for each:
//!
//! * compiles at `-O0` and `-O2`, and at `-O2` with `-j 1` and `-j 4`;
//! * demands **zero contained incidents** — the optimizer must not fault
//!   on well-formed input, even though a fault would be survivable;
//! * runs every build on the Titan simulator and demands identical
//!   observations (return value, output, both output arrays);
//! * demands byte-identical IL between `-j 1` and `-j 4`;
//! * treats an escaping panic anywhere in compile-or-run as a failure.
//!
//! ```text
//! stress [--cases N] [--seed S] [--verbose]
//! ```
//!
//! Exits `0` when every case agrees, `1` otherwise, printing the seed and
//! the offending program so any failure reproduces with `--seed`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use titanc::{compile, Compilation, Options};
use titanc_bench::progen;
use titanc_il::{pretty_proc, ScalarType};
use titanc_titan::{observe, MachineConfig, Observation};

struct Args {
    cases: u64,
    seed: u64,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 100,
        seed: 0x717A_2C57,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--verbose" => args.verbose = true,
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: stress [--cases N] [--seed S] [--verbose]");
    std::process::exit(2);
}

fn opts(opt: Options, jobs: usize) -> Options {
    Options {
        jobs,
        verify: true,
        ..opt
    }
}

/// Compiles, requiring a clean front end and zero contained incidents.
fn build(src: &str, options: &Options, what: &str) -> Result<Compilation, String> {
    let compiled =
        compile(src, options).map_err(|e| format!("{what}: front end rejected input: {e}"))?;
    if compiled.has_incidents() {
        return Err(format!(
            "{what}: {} contained incident(s): {}",
            compiled.trace.incidents.len(),
            compiled
                .trace
                .incidents
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    Ok(compiled)
}

fn run(compiled: &Compilation, machine: MachineConfig, what: &str) -> Result<Observation, String> {
    observe(
        &compiled.program,
        machine,
        "main",
        &[
            ("out_g", ScalarType::Int, progen::OUT_LEN as u32),
            ("out_f", ScalarType::Float, progen::OUT_LEN as u32),
        ],
    )
    .map(|(obs, _stats)| obs)
    .map_err(|e| format!("{what}: simulator fault: {e}"))
}

fn pretty_program(c: &Compilation) -> String {
    c.program
        .procs
        .iter()
        .map(pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

/// One differential case; returns a failure description, if any.
fn check_case(src: &str) -> Result<(), String> {
    let o0 = build(src, &opts(Options::o0(), 1), "O0")?;
    let o2_j1 = build(src, &opts(Options::o2(), 1), "O2 -j1")?;
    let o2_j4 = build(src, &opts(Options::o2(), 4), "O2 -j4")?;

    // parallel pass groups must be invisible in the output
    if pretty_program(&o2_j1) != pretty_program(&o2_j4) {
        return Err("-j1 and -j4 produced different IL".to_string());
    }

    let base = run(&o0, MachineConfig::default(), "O0")?;
    let fast1 = run(&o2_j1, MachineConfig::optimized(1), "O2 -j1")?;
    let fast4 = run(&o2_j4, MachineConfig::optimized(1), "O2 -j4")?;
    if base != fast1 {
        return Err(format!(
            "O0 vs O2 -j1 observation divergence:\n  O0: {base:?}\n  O2: {fast1:?}"
        ));
    }
    if fast1 != fast4 {
        return Err("O2 -j1 vs -j4 observation divergence".to_string());
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let mut rng = progen::Rng::new(args.seed);
    let mut failures = 0u64;
    for case in 0..args.cases {
        let src = progen::program(&mut rng);
        let verdict = catch_unwind(AssertUnwindSafe(|| check_case(&src)));
        let failure = match verdict {
            Ok(Ok(())) => None,
            Ok(Err(why)) => Some(why),
            Err(_) => Some("escaping panic (not contained by the pipeline)".to_string()),
        };
        if let Some(why) = failure {
            failures += 1;
            eprintln!(
                "FAIL case {case} (seed {}): {why}\n--- program ---\n{src}---------------",
                args.seed
            );
        } else if args.verbose {
            eprintln!("ok case {case}");
        }
    }
    if failures == 0 {
        println!(
            "stress: {} cases (seed {}), zero divergence, zero incidents",
            args.cases, args.seed
        );
    } else {
        println!(
            "stress: {failures} of {} cases FAILED (seed {})",
            args.cases, args.seed
        );
        std::process::exit(1);
    }
}
