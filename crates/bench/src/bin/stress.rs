//! Differential stress harness for the fail-soft pipeline.
//!
//! Generates random C programs ([`titanc_bench::progen`]) and, for each:
//!
//! * compiles at `-O0` and `-O2`, and at `-O2` with `-j 1` and `-j 4`;
//! * demands **zero contained incidents** — the optimizer must not fault
//!   on well-formed input, even though a fault would be survivable;
//! * runs every build on the Titan simulator and demands identical
//!   observations (return value, output, both output arrays);
//! * with `--engine both` (the default), runs every build under the
//!   reference interpreter *and* the bytecode VM and demands identical
//!   observations and identical execution statistics (cycle totals
//!   included) between the engines;
//! * demands byte-identical IL between `-j 1` and `-j 4`;
//! * treats an escaping panic anywhere in compile-or-run as a failure.
//!
//! ```text
//! stress [--cases N] [--seed S] [--case-seed S] [--engine interp|vm|both] [--verbose]
//! stress --cache-faults [--cases N] [--seed S] [--case-seed S] [--verbose]
//! stress --server [--cases N] [--seed S] [--case-seed S] [--verbose]
//! ```
//!
//! `--cache-faults` switches to the **cache durability differential**:
//! every case compiles a progen program with no cache (the reference)
//! and then through a `--cache-dir` under escalating abuse — injected
//! IO faults (fail/truncate/delay on reads, writes, renames), random
//! byte flips and truncations of the on-disk entries and manifest, and
//! two sessions racing into one directory — asserting after every
//! scenario that the optimized IL and the opt report are byte-identical
//! to the no-cache reference, that nothing panics, and that detected
//! corruption is counted and quarantined. Each case finishes with a
//! cone-scoped edit: a generated multi-procedure session is populated,
//! one procedure is mutated, and the warm run must miss exactly that
//! procedure's inline cone while matching a no-cache compile of the
//! edited source — clean and again under injected faults. An aggregate accounting
//! summary (hits, misses, corrupt, quarantined, lock-contended,
//! write-failed) prints at the end; CI uploads it as an artifact.
//!
//! `--server` switches to the **compile-server differential**: every
//! case compiles a progen program with no cache (the reference), then
//! fires a burst of concurrent in-process [`titanc::server::Server`]
//! requests racing concurrent one-shot `--cache-dir` sessions into the
//! daemon's write-through directory. Every server response must carry
//! the reference's exact stdout bytes, every one-shot session must
//! match the reference IL and opt report, and a post-burst repeat must
//! skip the pipeline entirely (fully warm). The daemon's aggregate
//! accounting (and the one-shot sessions') prints at the end; CI
//! uploads it as an artifact.
//!
//! Each case gets its own generator seed, mixed (splitmix64-style) from
//! the run seed and the case index, so one case's program depends only on
//! `(run seed, index)` — not on how many programs were generated before
//! it. A `FAIL` line prints the per-case seed, and `--case-seed` replays
//! exactly that one program without regenerating the run. Seeds accept
//! decimal or `0x`-prefixed hex (underscores allowed) and are printed in
//! the same hex form they are accepted in.
//!
//! Exits `0` when every case agrees, `1` otherwise, printing the seeds
//! and the offending program so any failure reproduces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use titanc::server::{
    il_block, opt_report_block, CompileRequest, CompileResponse, Reply, Server, ServerConfig,
    ServerTotals,
};
use titanc::{
    compile, compile_session, install_io_faults, Compilation, FaultMode, IoFaultSpec, IoOp,
    OptReport, Options, SessionCompilation, SourceFile,
};
use titanc_bench::progen;
use titanc_il::json::{parse as parse_json, FromJson, ToJson};
use titanc_il::{pretty_proc, ScalarType};
use titanc_titan::{observe_with, ExecEngine, ExecStats, MachineConfig, Observation};

/// The default run seed (an arbitrary constant, fixed so a bare `stress`
/// run is reproducible across machines and sessions).
const DEFAULT_SEED: u64 = 0x717A_2C57;

/// Which engines a run exercises; `Both` adds the cross-engine
/// differential to every case.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    One(ExecEngine),
    Both,
}

impl EngineChoice {
    fn engines(self) -> Vec<ExecEngine> {
        match self {
            EngineChoice::One(e) => vec![e],
            EngineChoice::Both => vec![ExecEngine::Interp, ExecEngine::Vm],
        }
    }

    fn name(self) -> &'static str {
        match self {
            EngineChoice::One(e) => e.name(),
            EngineChoice::Both => "both",
        }
    }
}

struct Args {
    cases: u64,
    seed: u64,
    /// Replay exactly one case by its per-case seed.
    case_seed: Option<u64>,
    engine: EngineChoice,
    /// Run the cache durability differential instead of the
    /// execution differential.
    cache_faults: bool,
    /// Run the compile-server differential instead of the execution
    /// differential.
    server: bool,
    verbose: bool,
}

/// Parses a seed in decimal or `0x`-prefixed hex; `_` separators are
/// accepted in both forms (so printed seeds round-trip).
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Derives case `i`'s generator seed from the run seed — the splitmix64
/// finalizer over a golden-ratio stride, so nearby indices land far
/// apart and case programs are independent of generation order.
fn case_seed(run_seed: u64, case: u64) -> u64 {
    let mut z = run_seed.wrapping_add(case.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 100,
        seed: DEFAULT_SEED,
        case_seed: None,
        engine: EngineChoice::Both,
        cache_faults: false,
        server: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| parse_seed(&v))
                    .unwrap_or_else(|| usage());
            }
            "--case-seed" => {
                args.case_seed = Some(
                    it.next()
                        .and_then(|v| parse_seed(&v))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("both") => EngineChoice::Both,
                    Some(e) => EngineChoice::One(e.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                };
            }
            "--cache-faults" => args.cache_faults = true,
            "--server" => args.server = true,
            "--verbose" => args.verbose = true,
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: stress [--cases N] [--seed S] [--case-seed S] [--engine interp|vm|both] [--verbose]"
    );
    eprintln!("       stress --cache-faults [--cases N] [--seed S] [--case-seed S] [--verbose]");
    eprintln!("       stress --server [--cases N] [--seed S] [--case-seed S] [--verbose]");
    eprintln!("       seeds are decimal or 0x-prefixed hex");
    std::process::exit(2);
}

fn opts(opt: Options, jobs: usize) -> Options {
    Options {
        jobs,
        verify: true,
        ..opt
    }
}

/// Compiles, requiring a clean front end and zero contained incidents.
fn build(src: &str, options: &Options, what: &str) -> Result<Compilation, String> {
    let compiled =
        compile(src, options).map_err(|e| format!("{what}: front end rejected input: {e}"))?;
    if compiled.has_incidents() {
        return Err(format!(
            "{what}: {} contained incident(s): {}",
            compiled.trace.incidents.len(),
            compiled
                .trace
                .incidents
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    Ok(compiled)
}

/// Runs one build under every requested engine, demanding that the
/// engines agree on the observation *and* on every execution statistic
/// (cycle totals included). The failure string names the engine.
fn run(
    compiled: &Compilation,
    machine: MachineConfig,
    engines: &[ExecEngine],
    what: &str,
) -> Result<Observation, String> {
    let mut first: Option<(ExecEngine, Observation, ExecStats)> = None;
    for &engine in engines {
        let (obs, stats) = observe_with(
            &compiled.program,
            machine.clone(),
            engine,
            "main",
            &[
                ("out_g", ScalarType::Int, progen::OUT_LEN as u32),
                ("out_f", ScalarType::Float, progen::OUT_LEN as u32),
            ],
        )
        .map_err(|e| format!("{what} [{engine}]: simulator fault: {e}"))?;
        match &first {
            None => first = Some((engine, obs, stats)),
            Some((e0, obs0, stats0)) => {
                if obs != *obs0 {
                    return Err(format!(
                        "{what}: engine observation divergence:\n  \
                         {e0}: {obs0:?}\n  {engine}: {obs:?}"
                    ));
                }
                if stats != *stats0 {
                    return Err(format!(
                        "{what}: engine statistics divergence:\n  \
                         {e0}: {stats0:?}\n  {engine}: {stats:?}"
                    ));
                }
            }
        }
    }
    Ok(first.expect("at least one engine").1)
}

fn pretty_program(c: &Compilation) -> String {
    c.program
        .procs
        .iter()
        .map(pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

/// One differential case; returns a failure description, if any.
fn check_case(src: &str, engines: &[ExecEngine]) -> Result<(), String> {
    let o0 = build(src, &opts(Options::o0(), 1), "O0")?;
    let o2_j1 = build(src, &opts(Options::o2(), 1), "O2 -j1")?;
    let o2_j4 = build(src, &opts(Options::o2(), 4), "O2 -j4")?;

    // parallel pass groups must be invisible in the output
    if pretty_program(&o2_j1) != pretty_program(&o2_j4) {
        return Err("-j1 and -j4 produced different IL".to_string());
    }

    let base = run(&o0, MachineConfig::default(), engines, "O0")?;
    let fast1 = run(&o2_j1, MachineConfig::optimized(1), engines, "O2 -j1")?;
    let fast4 = run(&o2_j4, MachineConfig::optimized(1), engines, "O2 -j4")?;
    if base != fast1 {
        return Err(format!(
            "O0 vs O2 -j1 observation divergence:\n  O0: {base:?}\n  O2: {fast1:?}"
        ));
    }
    if fast1 != fast4 {
        return Err("O2 -j1 vs -j4 observation divergence".to_string());
    }
    Ok(())
}

/// Generates and checks the program for one per-case seed; returns the
/// failure description, if any.
fn run_one(cseed: u64, engines: &[ExecEngine]) -> Option<String> {
    let mut rng = progen::Rng::new(cseed);
    let src = progen::program(&mut rng);
    let verdict = catch_unwind(AssertUnwindSafe(|| check_case(&src, engines)));
    let failure = match verdict {
        Ok(Ok(())) => None,
        Ok(Err(why)) => Some(why),
        Err(_) => Some("escaping panic (not contained by the pipeline)".to_string()),
    };
    failure.map(|why| format!("{why}\n--- program ---\n{src}---------------"))
}

// ---------------------------------------------------------------------------
// cache durability differential (`--cache-faults`)
// ---------------------------------------------------------------------------

/// Aggregate cache accounting across every session a `--cache-faults`
/// run performed; printed at the end and uploaded by CI as an artifact.
#[derive(Default, Clone, Copy)]
struct CacheTotals {
    sessions: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
    corrupt: u64,
    quarantined: u64,
    lock_contended: u64,
    write_failed: u64,
}

impl CacheTotals {
    fn absorb(&mut self, sc: &SessionCompilation) {
        self.sessions += 1;
        self.hits += sc.stats.hits as u64;
        self.misses += sc.stats.misses as u64;
        self.invalidated += sc.stats.invalidated as u64;
        self.corrupt += sc.stats.corrupt as u64;
        self.quarantined += sc.stats.quarantined as u64;
        self.lock_contended += sc.stats.lock_contended as u64;
        self.write_failed += sc.stats.write_failed as u64;
    }

    fn merge(&mut self, other: CacheTotals) {
        self.sessions += other.sessions;
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidated += other.invalidated;
        self.corrupt += other.corrupt;
        self.quarantined += other.quarantined;
        self.lock_contended += other.lock_contended;
        self.write_failed += other.write_failed;
    }
}

/// Pretty-prints a session's optimized IL, the byte-identity unit.
fn session_il(sc: &SessionCompilation) -> String {
    sc.compilation
        .program
        .procs
        .iter()
        .map(pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a session's `--opt-report=json`, the second identity unit.
fn session_report(sc: &SessionCompilation) -> String {
    OptReport::build_for(
        &sc.compilation.reports,
        &sc.compilation.trace,
        &sc.compilation.program.files,
    )
    .to_json()
    .to_string_compact()
}

/// The fault mix a case runs under: every operation can fail, writes
/// and reads can tear, and reads can stall — all at rates high enough
/// that a 300-case sweep exercises each path hundreds of times.
fn case_fault_spec(seed: u64) -> IoFaultSpec {
    IoFaultSpec::new(seed)
        .rule(IoOp::Read, FaultMode::Fail, 0.04)
        .rule(IoOp::Read, FaultMode::Truncate, 0.04)
        .rule(IoOp::Read, FaultMode::Delay, 0.02)
        .rule(IoOp::Write, FaultMode::Fail, 0.05)
        .rule(IoOp::Write, FaultMode::Truncate, 0.05)
        .rule(IoOp::Rename, FaultMode::Fail, 0.05)
}

/// Compiles one session, absorbing its accounting into `totals` and
/// verifying byte-identity against the no-cache reference.
fn cache_run(
    src: &str,
    options: &Options,
    dir: Option<&Path>,
    totals: &mut CacheTotals,
    reference: Option<(&str, &str)>,
    what: &str,
) -> Result<SessionCompilation, String> {
    let files = [SourceFile::new("case.c", src)];
    let sc = compile_session(&files, options, dir)
        .map_err(|e| format!("{what}: front end rejected input: {e}"))?;
    totals.absorb(&sc);
    if let Some((ref_il, ref_report)) = reference {
        if session_il(&sc) != ref_il {
            return Err(format!("{what}: optimized IL diverged from no-cache run"));
        }
        if session_report(&sc) != ref_report {
            return Err(format!("{what}: opt report diverged from no-cache run"));
        }
    }
    Ok(sc)
}

/// Damages a populated cache directory in place: one random bit flip in
/// one top-level `*.json` file and a random truncation of another (the
/// same file when only one exists). `FORMAT`, lock files and the
/// quarantine subdirectory are left alone, so every damaged file is one
/// the warm run will actually read and must detect.
fn corrupt_cache_dir(dir: &Path, rng: &mut progen::Rng) -> Result<(), String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err("populated cache dir has no *.json entries to corrupt".to_string());
    }

    // bit flip
    let victim = &files[rng.below(files.len() as u64) as usize];
    let mut bytes = std::fs::read(victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
    if bytes.is_empty() {
        bytes.push(b'!');
    } else {
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1 << rng.below(8);
    }
    std::fs::write(victim, &bytes).map_err(|e| format!("write {}: {e}", victim.display()))?;

    // truncation
    let victim = &files[rng.below(files.len() as u64) as usize];
    let bytes = std::fs::read(victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
    let keep = rng.below(bytes.len().max(1) as u64) as usize;
    std::fs::write(victim, &bytes[..keep.min(bytes.len())])
        .map_err(|e| format!("write {}: {e}", victim.display()))?;
    Ok(())
}

/// Installs `spec`, runs `f`, and uninstalls the fault hook even when
/// `f` panics — faults are process-global, so leaking them would poison
/// every later phase.
fn with_faults<T>(spec: IoFaultSpec, f: impl FnOnce() -> T) -> T {
    install_io_faults(Some(spec));
    let out = catch_unwind(AssertUnwindSafe(f));
    install_io_faults(None);
    match out {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// One cache durability case: a no-cache reference, then the same
/// program through a cache directory under injected IO faults (cold and
/// warm), on-disk corruption, and a two-session race — every scenario
/// byte-compared against the reference.
fn check_cache_case(cseed: u64, src: &str, totals: &mut CacheTotals) -> Result<(), String> {
    let options = opts(Options::o2(), 1);

    // phase 0: no-cache reference
    let reference = cache_run(src, &options, None, totals, None, "reference")?;
    let ref_il = session_il(&reference);
    let ref_report = session_report(&reference);
    let expect = Some((ref_il.as_str(), ref_report.as_str()));

    let scratch = std::env::temp_dir().join(format!(
        "titanc-cache-stress-{}-{cseed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let result = (|| -> Result<(), String> {
        // phase 1: cold populate under injected IO faults
        let dir_faulty = scratch.join("faulty");
        with_faults(case_fault_spec(cseed), || {
            cache_run(
                src,
                &options,
                Some(&dir_faulty),
                totals,
                expect,
                "cold under IO faults",
            )
        })?;

        // phase 2: warm read-back, still under (differently seeded) faults
        with_faults(case_fault_spec(cseed ^ 0xA5A5_A5A5_A5A5_A5A5), || {
            cache_run(
                src,
                &options,
                Some(&dir_faulty),
                totals,
                expect,
                "warm under IO faults",
            )
        })?;

        // phase 3: clean populate, then flip/truncate bytes on disk; the
        // warm run must detect the damage (count it corrupt) and still
        // produce the reference output
        let dir_corrupt = scratch.join("corrupt");
        cache_run(
            src,
            &options,
            Some(&dir_corrupt),
            totals,
            expect,
            "clean populate",
        )?;
        let mut rng = progen::Rng::new(cseed ^ 0x5EED_C0DE);
        corrupt_cache_dir(&dir_corrupt, &mut rng)?;
        let damaged = cache_run(
            src,
            &options,
            Some(&dir_corrupt),
            totals,
            expect,
            "warm after on-disk corruption",
        )?;
        if damaged.stats.corrupt == 0 {
            return Err(
                "on-disk corruption went undetected (corrupt counter stayed zero)".to_string(),
            );
        }

        // phase 4: two sessions racing into one fresh directory, then a
        // warm run over whatever they left behind
        let dir_race = scratch.join("race");
        let mut race_totals = CacheTotals::default();
        std::thread::scope(|scope| -> Result<(), String> {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let dir = &dir_race;
                    let options = &options;
                    scope.spawn(move || {
                        let mut t = CacheTotals::default();
                        let r = cache_run(
                            src,
                            options,
                            Some(dir),
                            &mut t,
                            expect,
                            &format!("racing session {i}"),
                        )
                        .map(|_| ());
                        (t, r)
                    })
                })
                .collect();
            for h in handles {
                let (t, r) = h
                    .join()
                    .map_err(|_| "racing session panicked".to_string())?;
                race_totals.merge(t);
                r?;
            }
            Ok(())
        })?;
        totals.merge(race_totals);
        cache_run(
            src,
            &options,
            Some(&dir_race),
            totals,
            expect,
            "warm after race",
        )?;

        // phase 5: cone-scoped edit — populate with a generated
        // multi-procedure session (inlining on), mutate exactly the
        // last helper (nothing but `main` calls it), and demand that a
        // clean warm run misses exactly that cone while matching a
        // no-cache compile of the edited source byte for byte; then
        // repeat the edited warm run under injected IO faults
        let nprocs = 4;
        let salts = vec![0i64; nprocs];
        let base = progen::session_program(&mut progen::Rng::new(cseed), nprocs, &salts);
        let mut edited_salts = salts;
        edited_salts[nprocs - 1] = (cseed % 1000) as i64 + 1;
        let edited = progen::session_program(&mut progen::Rng::new(cseed), nprocs, &edited_salts);

        let edited_ref = cache_run(&edited, &options, None, totals, None, "edited reference")?;
        let edited_il = session_il(&edited_ref);
        let edited_report = session_report(&edited_ref);
        let edited_expect = Some((edited_il.as_str(), edited_report.as_str()));

        let dir_edit = scratch.join("edit");
        cache_run(
            &base,
            &options,
            Some(&dir_edit),
            totals,
            None,
            "session populate",
        )?;
        let warm_edit = cache_run(
            &edited,
            &options,
            Some(&dir_edit),
            totals,
            edited_expect,
            "edited warm (clean)",
        )?;
        let total_procs = warm_edit.compilation.program.procs.len();
        if warm_edit.stats.misses != 2 {
            return Err(format!(
                "editing the last helper must miss exactly its cone (itself and main), \
                 got {} miss(es) of {total_procs} procedure(s)",
                warm_edit.stats.misses
            ));
        }
        let dir_edit_faulty = scratch.join("edit-faulty");
        cache_run(
            &base,
            &options,
            Some(&dir_edit_faulty),
            totals,
            None,
            "session populate (pre-fault)",
        )?;
        with_faults(case_fault_spec(cseed ^ 0x0DDB_175C_AFE0_0000), || {
            cache_run(
                &edited,
                &options,
                Some(&dir_edit_faulty),
                totals,
                edited_expect,
                "edited warm under IO faults",
            )
        })?;
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// Generates and checks the cache durability case for one per-case
/// seed; returns the failure description, if any.
fn run_one_cache(cseed: u64, totals: &mut CacheTotals) -> Option<String> {
    let mut rng = progen::Rng::new(cseed);
    let src = progen::program(&mut rng);
    let verdict = catch_unwind(AssertUnwindSafe(|| check_cache_case(cseed, &src, totals)));
    install_io_faults(None); // belt and braces: never leak faults across cases
    let failure = match verdict {
        Ok(Ok(())) => None,
        Ok(Err(why)) => Some(why),
        Err(_) => Some("escaping panic (not contained by the pipeline)".to_string()),
    };
    failure.map(|why| format!("{why}\n--- program ---\n{src}---------------"))
}

/// Driver for `--cache-faults`; prints the aggregate accounting summary
/// and exits non-zero on any divergence.
fn run_cache_faults(args: &Args) -> ! {
    let mut totals = CacheTotals::default();

    if let Some(cseed) = args.case_seed {
        let failed = match run_one_cache(cseed, &mut totals) {
            Some(why) => {
                eprintln!("FAIL case seed 0x{cseed:X} (cache-faults): {why}");
                true
            }
            None => false,
        };
        print_cache_totals(&totals);
        if failed {
            println!("stress: cache-faults: case seed 0x{cseed:X} FAILED");
            std::process::exit(1);
        }
        println!("stress: cache-faults: case seed 0x{cseed:X} ok");
        std::process::exit(0);
    }

    let mut failures = 0u64;
    for case in 0..args.cases {
        let cseed = case_seed(args.seed, case);
        if let Some(why) = run_one_cache(cseed, &mut totals) {
            failures += 1;
            eprintln!(
                "FAIL case {case} (case seed 0x{cseed:X}, run seed 0x{:X}, cache-faults): {why}\n\
                 replay with: stress --cache-faults --case-seed 0x{cseed:X}",
                args.seed
            );
        } else if args.verbose {
            eprintln!("ok case {case} (case seed 0x{cseed:X}, cache-faults)");
        }
    }
    print_cache_totals(&totals);
    if failures == 0 {
        println!(
            "stress: cache-faults: {} cases (run seed 0x{:X}), zero divergence",
            args.cases, args.seed
        );
        std::process::exit(0);
    }
    println!(
        "stress: cache-faults: {failures} of {} cases FAILED (run seed 0x{:X})",
        args.cases, args.seed
    );
    std::process::exit(1);
}

fn print_cache_totals(t: &CacheTotals) {
    println!(
        "stress: cache-faults: totals over {} session(s): {} hit(s), {} miss(es), \
         {} invalidated; {} corrupt, {} quarantined, {} lock-contended, {} write-failed",
        t.sessions,
        t.hits,
        t.misses,
        t.invalidated,
        t.corrupt,
        t.quarantined,
        t.lock_contended,
        t.write_failed
    );
}

// ---------------------------------------------------------------------
// The compile-server differential (--server)
// ---------------------------------------------------------------------

/// Aggregate accounting for the server differential: the daemons' own
/// totals plus the one-shot sessions that raced them.
#[derive(Default)]
struct ServerStressTotals {
    daemon: ServerTotals,
    sessions: CacheTotals,
}

/// Sends one request line to an in-process server and returns the
/// decoded response.
fn server_round_trip(
    srv: &Server,
    req: &CompileRequest,
    what: &str,
) -> Result<CompileResponse, String> {
    let line = req.to_json().to_string_compact();
    match srv.handle_line(&line) {
        Reply::Line(l) => {
            let doc = parse_json(&l).map_err(|e| format!("{what}: bad response json: {e}"))?;
            CompileResponse::from_json(&doc).map_err(|e| format!("{what}: bad response: {e}"))
        }
        Reply::Shutdown(_) => Err(format!("{what}: unexpected shutdown acknowledgement")),
    }
}

/// One compile-server case: a no-cache reference through the plain
/// session entry point, then concurrent server requests racing
/// concurrent one-shot `--cache-dir` sessions into the daemon's
/// write-through directory — every response and every session
/// byte-compared against the reference, and a post-burst repeat must
/// answer fully warm.
fn check_server_case(cseed: u64, src: &str, totals: &mut ServerStressTotals) -> Result<(), String> {
    const SERVER_CLIENTS: usize = 4;
    const ONE_SHOT_SESSIONS: usize = 2;

    let req = CompileRequest {
        files: vec![SourceFile::new("case.c", src)],
        parallelize: true,
        spread_lists: true,
        verify: true,
        print_il: true,
        opt_report: "json".to_string(),
        ..CompileRequest::default()
    };
    let options = req.options();
    let files = [SourceFile::new("case.c", src)];

    // the no-cache reference, and the exact stdout bytes every server
    // response must carry for this request shape
    let reference = compile_session(&files, &options, None)
        .map_err(|e| format!("reference: front end rejected input: {e}"))?;
    let ref_il = session_il(&reference);
    let ref_report = session_report(&reference);
    let ref_stdout = format!(
        "{}{}",
        il_block(&reference.compilation.program),
        opt_report_block(&reference.compilation, true)
    );

    let scratch = std::env::temp_dir().join(format!(
        "titanc-server-stress-{}-{cseed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let dir = scratch.join("cache");
    let srv = Server::new(&ServerConfig {
        cache_dir: Some(dir.clone()),
        workers: SERVER_CLIENTS,
    })
    .quiet();

    let result = (|| -> Result<(), String> {
        // the burst: server clients and one-shot sessions in flight
        // together over one shared directory
        std::thread::scope(|scope| -> Result<(), String> {
            let mut handles = Vec::new();
            for i in 0..SERVER_CLIENTS {
                let (srv, req, ref_stdout) = (&srv, &req, ref_stdout.as_str());
                handles.push(scope.spawn(move || -> Result<CacheTotals, String> {
                    let what = format!("server client {i}");
                    let mut req = req.clone();
                    req.id = i as i64 + 1;
                    let resp = server_round_trip(srv, &req, &what)?;
                    if resp.exit != 0 {
                        return Err(format!("{what}: exit {}:\n{}", resp.exit, resp.stderr));
                    }
                    if resp.stdout != ref_stdout {
                        return Err(format!("{what}: stdout diverged from no-cache reference"));
                    }
                    Ok(CacheTotals::default())
                }));
            }
            for i in 0..ONE_SHOT_SESSIONS {
                let (dir, options, files) = (&dir, &options, &files);
                let (ref_il, ref_report) = (ref_il.as_str(), ref_report.as_str());
                handles.push(scope.spawn(move || -> Result<CacheTotals, String> {
                    let what = format!("one-shot session {i}");
                    let mut t = CacheTotals::default();
                    let sc = compile_session(files, options, Some(dir.as_path()))
                        .map_err(|e| format!("{what}: front end rejected input: {e}"))?;
                    t.absorb(&sc);
                    if session_il(&sc) != ref_il {
                        return Err(format!("{what}: optimized IL diverged from no-cache run"));
                    }
                    if session_report(&sc) != ref_report {
                        return Err(format!("{what}: opt report diverged from no-cache run"));
                    }
                    Ok(t)
                }));
            }
            for h in handles {
                let t = h
                    .join()
                    .map_err(|_| "burst participant panicked".to_string())??;
                totals.sessions.merge(t);
            }
            Ok(())
        })?;

        // post-burst: every cone is published, so a repeat must skip the
        // whole pipeline and still answer byte-identically
        let mut warm_req = req.clone();
        warm_req.id = SERVER_CLIENTS as i64 + 1;
        let warm = server_round_trip(&srv, &warm_req, "post-burst repeat")?;
        if warm.exit != 0 {
            return Err(format!(
                "post-burst repeat: exit {}:\n{}",
                warm.exit, warm.stderr
            ));
        }
        if warm.stdout != ref_stdout {
            return Err("post-burst repeat: stdout diverged from no-cache reference".to_string());
        }
        if !warm.stderr.contains("(fully warm)") {
            return Err(format!(
                "post-burst repeat did not skip the pipeline:\n{}",
                warm.stderr
            ));
        }

        let st = srv.totals();
        if st.protocol_errors != 0 {
            return Err(format!("daemon counted protocol errors: {st}"));
        }
        if st.requests != SERVER_CLIENTS as i64 + 1 {
            return Err(format!(
                "daemon accounting lost requests: expected {}, {st}",
                SERVER_CLIENTS + 1
            ));
        }
        totals.daemon.merge(&st);
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// Generates and checks the compile-server case for one per-case seed;
/// returns the failure description, if any.
fn run_one_server(cseed: u64, totals: &mut ServerStressTotals) -> Option<String> {
    let mut rng = progen::Rng::new(cseed);
    let src = progen::program(&mut rng);
    let verdict = catch_unwind(AssertUnwindSafe(|| check_server_case(cseed, &src, totals)));
    let failure = match verdict {
        Ok(Ok(())) => None,
        Ok(Err(why)) => Some(why),
        Err(_) => Some("escaping panic (not contained by the pipeline)".to_string()),
    };
    failure.map(|why| format!("{why}\n--- program ---\n{src}---------------"))
}

/// Driver for `--server`; prints the aggregate accounting summary and
/// exits non-zero on any divergence.
fn run_server_stress(args: &Args) -> ! {
    let mut totals = ServerStressTotals::default();

    if let Some(cseed) = args.case_seed {
        let failed = match run_one_server(cseed, &mut totals) {
            Some(why) => {
                eprintln!("FAIL case seed 0x{cseed:X} (server): {why}");
                true
            }
            None => false,
        };
        print_server_totals(&totals);
        if failed {
            println!("stress: server: case seed 0x{cseed:X} FAILED");
            std::process::exit(1);
        }
        println!("stress: server: case seed 0x{cseed:X} ok");
        std::process::exit(0);
    }

    let mut failures = 0u64;
    for case in 0..args.cases {
        let cseed = case_seed(args.seed, case);
        if let Some(why) = run_one_server(cseed, &mut totals) {
            failures += 1;
            eprintln!(
                "FAIL case {case} (case seed 0x{cseed:X}, run seed 0x{:X}, server): {why}\n\
                 replay with: stress --server --case-seed 0x{cseed:X}",
                args.seed
            );
        } else if args.verbose {
            eprintln!("ok case {case} (case seed 0x{cseed:X}, server)");
        }
    }
    print_server_totals(&totals);
    if failures == 0 {
        println!(
            "stress: server: {} cases (run seed 0x{:X}), zero divergence",
            args.cases, args.seed
        );
        std::process::exit(0);
    }
    println!(
        "stress: server: {failures} of {} cases FAILED (run seed 0x{:X})",
        args.cases, args.seed
    );
    std::process::exit(1);
}

fn print_server_totals(t: &ServerStressTotals) {
    println!("stress: server: daemon totals: {}", t.daemon);
    println!(
        "stress: server: one-shot totals over {} session(s): {} hit(s), {} miss(es), \
         {} invalidated; {} corrupt, {} quarantined, {} lock-contended, {} write-failed",
        t.sessions.sessions,
        t.sessions.hits,
        t.sessions.misses,
        t.sessions.invalidated,
        t.sessions.corrupt,
        t.sessions.quarantined,
        t.sessions.lock_contended,
        t.sessions.write_failed
    );
}

fn main() {
    let args = parse_args();
    if args.cache_faults {
        run_cache_faults(&args);
    }
    if args.server {
        run_server_stress(&args);
    }
    let engines = args.engine.engines();
    let engine_name = args.engine.name();

    // --case-seed: replay exactly one generated program
    if let Some(cseed) = args.case_seed {
        match run_one(cseed, &engines) {
            Some(why) => {
                eprintln!("FAIL case seed 0x{cseed:X} (engine {engine_name}): {why}");
                println!("stress: case seed 0x{cseed:X} (engine {engine_name}) FAILED");
                std::process::exit(1);
            }
            None => {
                println!("stress: case seed 0x{cseed:X} (engine {engine_name}) ok");
                return;
            }
        }
    }

    let mut failures = 0u64;
    for case in 0..args.cases {
        let cseed = case_seed(args.seed, case);
        if let Some(why) = run_one(cseed, &engines) {
            failures += 1;
            eprintln!(
                "FAIL case {case} (case seed 0x{cseed:X}, run seed 0x{:X}, engine {engine_name}): \
                 {why}\n\
                 replay with: stress --engine {engine_name} --case-seed 0x{cseed:X}",
                args.seed
            );
        } else if args.verbose {
            eprintln!("ok case {case} (case seed 0x{cseed:X}, engine {engine_name})");
        }
    }
    if failures == 0 {
        println!(
            "stress: {} cases (run seed 0x{:X}, engine {engine_name}), \
             zero divergence, zero incidents",
            args.cases, args.seed
        );
    } else {
        println!(
            "stress: {failures} of {} cases FAILED (run seed 0x{:X}, engine {engine_name})",
            args.cases, args.seed
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_round_trips() {
        assert_eq!(parse_seed("1903832151"), Some(1903832151));
        assert_eq!(parse_seed("0x717A_2C57"), Some(0x717A_2C57));
        assert_eq!(parse_seed("0X717a2c57"), Some(0x717A_2C57));
        assert_eq!(parse_seed("1_903_832_151"), Some(1903832151));
        assert_eq!(parse_seed("0x"), None);
        assert_eq!(parse_seed("nope"), None);
        // printed form (`0x{:X}`) parses back to the same value
        let s = case_seed(DEFAULT_SEED, 17);
        assert_eq!(parse_seed(&format!("0x{s:X}")), Some(s));
    }

    #[test]
    fn case_seeds_are_order_independent_and_spread() {
        let a = case_seed(DEFAULT_SEED, 0);
        let b = case_seed(DEFAULT_SEED, 1);
        assert_ne!(a, b);
        // stable: same (run seed, index) -> same case seed
        assert_eq!(a, case_seed(DEFAULT_SEED, 0));
        // different run seeds decorrelate the same index
        assert_ne!(a, case_seed(DEFAULT_SEED + 1, 0));
    }
}
