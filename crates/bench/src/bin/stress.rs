//! Differential stress harness for the fail-soft pipeline.
//!
//! Generates random C programs ([`titanc_bench::progen`]) and, for each:
//!
//! * compiles at `-O0` and `-O2`, and at `-O2` with `-j 1` and `-j 4`;
//! * demands **zero contained incidents** — the optimizer must not fault
//!   on well-formed input, even though a fault would be survivable;
//! * runs every build on the Titan simulator and demands identical
//!   observations (return value, output, both output arrays);
//! * with `--engine both` (the default), runs every build under the
//!   reference interpreter *and* the bytecode VM and demands identical
//!   observations and identical execution statistics (cycle totals
//!   included) between the engines;
//! * demands byte-identical IL between `-j 1` and `-j 4`;
//! * treats an escaping panic anywhere in compile-or-run as a failure.
//!
//! ```text
//! stress [--cases N] [--seed S] [--case-seed S] [--engine interp|vm|both] [--verbose]
//! ```
//!
//! Each case gets its own generator seed, mixed (splitmix64-style) from
//! the run seed and the case index, so one case's program depends only on
//! `(run seed, index)` — not on how many programs were generated before
//! it. A `FAIL` line prints the per-case seed, and `--case-seed` replays
//! exactly that one program without regenerating the run. Seeds accept
//! decimal or `0x`-prefixed hex (underscores allowed) and are printed in
//! the same hex form they are accepted in.
//!
//! Exits `0` when every case agrees, `1` otherwise, printing the seeds
//! and the offending program so any failure reproduces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use titanc::{compile, Compilation, Options};
use titanc_bench::progen;
use titanc_il::{pretty_proc, ScalarType};
use titanc_titan::{observe_with, ExecEngine, ExecStats, MachineConfig, Observation};

/// The default run seed (an arbitrary constant, fixed so a bare `stress`
/// run is reproducible across machines and sessions).
const DEFAULT_SEED: u64 = 0x717A_2C57;

/// Which engines a run exercises; `Both` adds the cross-engine
/// differential to every case.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    One(ExecEngine),
    Both,
}

impl EngineChoice {
    fn engines(self) -> Vec<ExecEngine> {
        match self {
            EngineChoice::One(e) => vec![e],
            EngineChoice::Both => vec![ExecEngine::Interp, ExecEngine::Vm],
        }
    }

    fn name(self) -> &'static str {
        match self {
            EngineChoice::One(e) => e.name(),
            EngineChoice::Both => "both",
        }
    }
}

struct Args {
    cases: u64,
    seed: u64,
    /// Replay exactly one case by its per-case seed.
    case_seed: Option<u64>,
    engine: EngineChoice,
    verbose: bool,
}

/// Parses a seed in decimal or `0x`-prefixed hex; `_` separators are
/// accepted in both forms (so printed seeds round-trip).
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Derives case `i`'s generator seed from the run seed — the splitmix64
/// finalizer over a golden-ratio stride, so nearby indices land far
/// apart and case programs are independent of generation order.
fn case_seed(run_seed: u64, case: u64) -> u64 {
    let mut z = run_seed.wrapping_add(case.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 100,
        seed: DEFAULT_SEED,
        case_seed: None,
        engine: EngineChoice::Both,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| parse_seed(&v))
                    .unwrap_or_else(|| usage());
            }
            "--case-seed" => {
                args.case_seed = Some(
                    it.next()
                        .and_then(|v| parse_seed(&v))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("both") => EngineChoice::Both,
                    Some(e) => EngineChoice::One(e.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                };
            }
            "--verbose" => args.verbose = true,
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: stress [--cases N] [--seed S] [--case-seed S] [--engine interp|vm|both] [--verbose]"
    );
    eprintln!("       seeds are decimal or 0x-prefixed hex");
    std::process::exit(2);
}

fn opts(opt: Options, jobs: usize) -> Options {
    Options {
        jobs,
        verify: true,
        ..opt
    }
}

/// Compiles, requiring a clean front end and zero contained incidents.
fn build(src: &str, options: &Options, what: &str) -> Result<Compilation, String> {
    let compiled =
        compile(src, options).map_err(|e| format!("{what}: front end rejected input: {e}"))?;
    if compiled.has_incidents() {
        return Err(format!(
            "{what}: {} contained incident(s): {}",
            compiled.trace.incidents.len(),
            compiled
                .trace
                .incidents
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    Ok(compiled)
}

/// Runs one build under every requested engine, demanding that the
/// engines agree on the observation *and* on every execution statistic
/// (cycle totals included). The failure string names the engine.
fn run(
    compiled: &Compilation,
    machine: MachineConfig,
    engines: &[ExecEngine],
    what: &str,
) -> Result<Observation, String> {
    let mut first: Option<(ExecEngine, Observation, ExecStats)> = None;
    for &engine in engines {
        let (obs, stats) = observe_with(
            &compiled.program,
            machine.clone(),
            engine,
            "main",
            &[
                ("out_g", ScalarType::Int, progen::OUT_LEN as u32),
                ("out_f", ScalarType::Float, progen::OUT_LEN as u32),
            ],
        )
        .map_err(|e| format!("{what} [{engine}]: simulator fault: {e}"))?;
        match &first {
            None => first = Some((engine, obs, stats)),
            Some((e0, obs0, stats0)) => {
                if obs != *obs0 {
                    return Err(format!(
                        "{what}: engine observation divergence:\n  \
                         {e0}: {obs0:?}\n  {engine}: {obs:?}"
                    ));
                }
                if stats != *stats0 {
                    return Err(format!(
                        "{what}: engine statistics divergence:\n  \
                         {e0}: {stats0:?}\n  {engine}: {stats:?}"
                    ));
                }
            }
        }
    }
    Ok(first.expect("at least one engine").1)
}

fn pretty_program(c: &Compilation) -> String {
    c.program
        .procs
        .iter()
        .map(pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

/// One differential case; returns a failure description, if any.
fn check_case(src: &str, engines: &[ExecEngine]) -> Result<(), String> {
    let o0 = build(src, &opts(Options::o0(), 1), "O0")?;
    let o2_j1 = build(src, &opts(Options::o2(), 1), "O2 -j1")?;
    let o2_j4 = build(src, &opts(Options::o2(), 4), "O2 -j4")?;

    // parallel pass groups must be invisible in the output
    if pretty_program(&o2_j1) != pretty_program(&o2_j4) {
        return Err("-j1 and -j4 produced different IL".to_string());
    }

    let base = run(&o0, MachineConfig::default(), engines, "O0")?;
    let fast1 = run(&o2_j1, MachineConfig::optimized(1), engines, "O2 -j1")?;
    let fast4 = run(&o2_j4, MachineConfig::optimized(1), engines, "O2 -j4")?;
    if base != fast1 {
        return Err(format!(
            "O0 vs O2 -j1 observation divergence:\n  O0: {base:?}\n  O2: {fast1:?}"
        ));
    }
    if fast1 != fast4 {
        return Err("O2 -j1 vs -j4 observation divergence".to_string());
    }
    Ok(())
}

/// Generates and checks the program for one per-case seed; returns the
/// failure description, if any.
fn run_one(cseed: u64, engines: &[ExecEngine]) -> Option<String> {
    let mut rng = progen::Rng::new(cseed);
    let src = progen::program(&mut rng);
    let verdict = catch_unwind(AssertUnwindSafe(|| check_case(&src, engines)));
    let failure = match verdict {
        Ok(Ok(())) => None,
        Ok(Err(why)) => Some(why),
        Err(_) => Some("escaping panic (not contained by the pipeline)".to_string()),
    };
    failure.map(|why| format!("{why}\n--- program ---\n{src}---------------"))
}

fn main() {
    let args = parse_args();
    let engines = args.engine.engines();
    let engine_name = args.engine.name();

    // --case-seed: replay exactly one generated program
    if let Some(cseed) = args.case_seed {
        match run_one(cseed, &engines) {
            Some(why) => {
                eprintln!("FAIL case seed 0x{cseed:X} (engine {engine_name}): {why}");
                println!("stress: case seed 0x{cseed:X} (engine {engine_name}) FAILED");
                std::process::exit(1);
            }
            None => {
                println!("stress: case seed 0x{cseed:X} (engine {engine_name}) ok");
                return;
            }
        }
    }

    let mut failures = 0u64;
    for case in 0..args.cases {
        let cseed = case_seed(args.seed, case);
        if let Some(why) = run_one(cseed, &engines) {
            failures += 1;
            eprintln!(
                "FAIL case {case} (case seed 0x{cseed:X}, run seed 0x{:X}, engine {engine_name}): \
                 {why}\n\
                 replay with: stress --engine {engine_name} --case-seed 0x{cseed:X}",
                args.seed
            );
        } else if args.verbose {
            eprintln!("ok case {case} (case seed 0x{cseed:X}, engine {engine_name})");
        }
    }
    if failures == 0 {
        println!(
            "stress: {} cases (run seed 0x{:X}, engine {engine_name}), \
             zero divergence, zero incidents",
            args.cases, args.seed
        );
    } else {
        println!(
            "stress: {failures} of {} cases FAILED (run seed 0x{:X}, engine {engine_name})",
            args.cases, args.seed
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_round_trips() {
        assert_eq!(parse_seed("1903832151"), Some(1903832151));
        assert_eq!(parse_seed("0x717A_2C57"), Some(0x717A_2C57));
        assert_eq!(parse_seed("0X717a2c57"), Some(0x717A_2C57));
        assert_eq!(parse_seed("1_903_832_151"), Some(1903832151));
        assert_eq!(parse_seed("0x"), None);
        assert_eq!(parse_seed("nope"), None);
        // printed form (`0x{:X}`) parses back to the same value
        let s = case_seed(DEFAULT_SEED, 17);
        assert_eq!(parse_seed(&format!("0x{s:X}")), Some(s));
    }

    #[test]
    fn case_seeds_are_order_independent_and_spread() {
        let a = case_seed(DEFAULT_SEED, 0);
        let b = case_seed(DEFAULT_SEED, 1);
        assert_ne!(a, b);
        // stable: same (run seed, index) -> same case seed
        assert_eq!(a, case_seed(DEFAULT_SEED, 0));
        // different run seeds decorrelate the same index
        assert_ne!(a, case_seed(DEFAULT_SEED + 1, 0));
    }
}
