//! EXP3 (§9): the inlined daxpy walkthrough.
//!
//! Inlining eliminates the aliasing problem; induction-variable
//! substitution, while→DO conversion, constant propagation and dead-code
//! elimination strip the temporaries; the vectorizer emits strip-mined
//! `do parallel` vector statements. "On a two processor Titan, this code
//! executes **12 times faster** than the scalar version of the same
//! routine."

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{corpus, daxpy_source, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    // show the stage-by-stage walkthrough for the paper's n=100 case
    let c = titanc::compile(
        corpus::DAXPY,
        &titanc::Options {
            snapshots: true,
            ..Options::parallel()
        },
    )
    .expect("compiles");
    println!("== EXP3 stage walkthrough (main after each phase)");
    for snap in &c.snapshots {
        if snap.proc == "main" {
            println!("-- after {} --\n{}", snap.phase, snap.il);
        }
    }

    for n in [100usize, 1024] {
        let src = daxpy_source(n);
        let mut cases = vec![ExpCase::new(Options::o1(), MachineConfig::scalar())];
        for procs in [1u32, 2, 4] {
            cases.push(ExpCase::new(
                Options::parallel(),
                MachineConfig::optimized(procs),
            ));
        }
        let stats = run_experiment(&src, &cases, engine);
        let scalar = &stats[0];
        let mut rows = vec![Row {
            label: format!("scalar (O1), n={n}"),
            value: scalar.cycles,
            note: "cycles".into(),
        }];
        for (par, procs) in stats[1..].iter().zip([1u32, 2, 4]) {
            rows.push(Row {
                label: format!("inline+vector+parallel, {procs} proc(s), n={n}"),
                value: par.cycles,
                note: format!("cycles, speedup {:.2}x", scalar.cycles / par.cycles),
            });
            if procs == 2 && n == 100 {
                let speedup = scalar.cycles / par.cycles;
                assert!(
                    speedup > 6.0,
                    "two-processor speedup should be near the paper's 12x, got {speedup:.2}"
                );
            }
        }
        print_table(
            &format!("EXP3 daxpy, n = {n}"),
            "inlined+vectorized+parallelized daxpy runs 12x faster than scalar on a 2-processor Titan",
            &rows,
        );
    }
    println!("EXP3 ok");
}
