//! EXP8 (§10): arrays embedded within structures.
//!
//! "We originally did not put much effort into handling this kind of
//! construct … Given the prevalence with which this appears within
//! graphics code, our decision was poor." The post-Doré compiler handles
//! struct-embedded arrays; this experiment compiles the 4×4 transform
//! kernel, checks that the inner product loops are analyzed, and measures
//! the gain.

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{corpus, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    let c = titanc::compile(corpus::STRUCT_MATRIX, &Options::o2()).expect("compiles");
    println!(
        "while->DO conversions: {}, IVs substituted: {}",
        c.reports.whiledo.converted, c.reports.ivsub.substituted
    );
    assert!(
        c.reports.whiledo.converted >= 3,
        "all three nest levels convert"
    );

    let stats = run_experiment(
        corpus::STRUCT_MATRIX,
        &[
            ExpCase::new(Options::o1(), MachineConfig::scalar()),
            ExpCase::new(Options::o2(), MachineConfig::optimized(1)),
        ],
        engine,
    );
    let [scalar, opt] = &stats[..] else {
        unreachable!("two cases")
    };
    print_table(
        "EXP8 struct-embedded arrays (the Doré lesson, §10)",
        "graphics 4x4 transforms with arrays inside structs are analyzed and optimized",
        &[
            Row {
                label: "scalar only (O1)".into(),
                value: scalar.cycles,
                note: "cycles".into(),
            },
            Row {
                label: "optimized (O2)".into(),
                value: opt.cycles,
                note: format!("cycles, speedup {:.2}x", scalar.cycles / opt.cycles),
            },
        ],
    );
    assert!(
        opt.cycles < scalar.cycles,
        "optimization helps the transform"
    );
    println!("EXP8 ok");
}
