//! EXP10 (§1 item 6, §3): volatile semantics across the whole pipeline.
//!
//! The keyboard-status poll loop "appears as though it will loop forever"
//! unless `volatile` pins every read. This experiment compiles the poll
//! loop at every optimization level, scripts the device register, and
//! verifies the loop still re-reads memory each iteration — and that the
//! non-volatile variant is (correctly) folded into an infinite loop.

use titanc::Options;
use titanc_bench::corpus;
use titanc_bench::harness::engine_arg;
use titanc_titan::{MachineConfig, Simulator};

fn main() {
    let engine = engine_arg();
    println!("== EXP10 volatile poll loop (§1), engine: {engine}");
    for (name, opts) in [
        ("O0", Options::o0()),
        ("O1", Options::o1()),
        ("O2", Options::o2()),
        ("O2 parallel", Options::parallel()),
    ] {
        let c = titanc::compile(corpus::VOLATILE_POLL, &opts).expect("compiles");
        let mut sim = Simulator::with_engine(&c.program, MachineConfig::default(), engine);
        // the device produces three zero reads, then 7
        sim.push_volatile_values(&[0, 0, 0, 7]);
        let r = sim.run("main", &[]).expect("terminates via device write");
        assert_eq!(r.value.unwrap().as_int(), 7);
        println!(
            "   {name:<12} loop survived; {} loads executed, returned {}",
            r.stats.loads,
            r.value.unwrap().as_int()
        );
        assert!(r.stats.loads >= 4, "every poll iteration re-reads");
    }

    // counterpoint: without volatile the loop really is infinite (the
    // step limit fires), proving the qualifier is what pins the read
    let non_volatile = corpus::VOLATILE_POLL.replace("volatile int", "int");
    let c = titanc::compile(&non_volatile, &Options::o2()).expect("compiles");
    let cfg = MachineConfig {
        max_steps: 50_000,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::with_engine(&c.program, cfg, engine);
    sim.push_volatile_values(&[0, 0, 0, 7]); // ignored: no volatile reads
    let err = sim.run("main", &[]).expect_err("spins forever");
    println!("   non-volatile variant: {err} (expected)");
    println!("EXP10 ok");
}
