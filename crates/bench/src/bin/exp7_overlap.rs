//! EXP7 (§2 item 3, §6 item 2): low-level parallelism.
//!
//! "Changing the instruction order so that integer and floating point
//! instructions overlap and so that memory access and computation overlap
//! can provide a significant speedup." The dependence graph licenses the
//! scheduler to overlap; the simulator models overlap as the max of the
//! three unit streams per straight-line region. This experiment measures
//! the backsolve and daxpy kernels with scheduling overlap on and off, at
//! identical optimization levels.

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{backsolve_source, daxpy_source, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    let mut rows = Vec::new();
    for (name, src) in [
        ("backsolve n=1024", backsolve_source(1024)),
        ("daxpy n=1024 (scalar compile)", daxpy_source(1024)),
    ] {
        let stats = run_experiment(
            &src,
            &[
                ExpCase::new(Options::o2_scalar_only(), MachineConfig::scalar()),
                ExpCase::new(
                    Options::o2_scalar_only(),
                    MachineConfig {
                        overlap: true,
                        ..MachineConfig::scalar()
                    },
                ),
            ],
            engine,
        );
        let [off, on] = &stats[..] else {
            unreachable!("two cases")
        };
        rows.push(Row {
            label: format!("{name}: overlap off"),
            value: off.cycles,
            note: "cycles".into(),
        });
        rows.push(Row {
            label: format!("{name}: overlap on"),
            value: on.cycles,
            note: format!("cycles, speedup {:.2}x", off.cycles / on.cycles),
        });
        assert!(on.cycles < off.cycles, "overlap always helps these kernels");
    }
    print_table(
        "EXP7 integer/FP/memory overlap (§6 instruction scheduling)",
        "dependence information lets the scheduler completely overlap integer and FP work",
        &rows,
    );
    println!("EXP7 ok");
}

/// Helper: O2 pipeline but with vectorization disabled so both runs
/// execute the same scalar code and only the machine model differs.
trait ScalarOnly {
    fn o2_scalar_only() -> Options;
}
impl ScalarOnly for Options {
    fn o2_scalar_only() -> Options {
        Options::o1()
    }
}
