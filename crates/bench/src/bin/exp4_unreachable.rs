//! EXP4 (§8): constant propagation with unreachable-code elimination.
//!
//! The paper rejects IF-conversion, basic-block reconstruction and
//! Wegman–Zadeck in favour of a heuristic that re-seeds propagation when
//! eliminated definitions unblock constants, plus a quick postpass for
//! code behind always-taken branches. This experiment compares the
//! heuristic against the rejected "rebuild basic blocks" strategy on the
//! §8 daxpy(alpha = 0) specialization: statements eliminated and compile
//! time.

use std::time::Instant;
use titanc_bench::print_table;
use titanc_bench::Row;
use titanc_inline::{inline_program, InlineOptions};
use titanc_lower::compile_to_il;

const SRC: &str = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void)
{
    daxpy(a, b, c, 0.0, 100);
    return 0;
}
"#;

fn inlined_main() -> titanc_il::Procedure {
    let mut prog = compile_to_il(SRC).expect("compiles");
    inline_program(&mut prog, &InlineOptions::default());
    prog.proc_by_name("main").unwrap().clone()
}

fn main() {
    let reps = 200;

    // strategy A: the paper's heuristic (propagation + branch folding +
    // postpass, re-seeded each round)
    let base_len = inlined_main().len();
    let mut removed_a = 0;
    let mut len_a = 0;
    let t = Instant::now();
    for _ in 0..reps {
        let mut p = inlined_main();
        let r = titanc_opt::constant_propagation(&mut p);
        titanc_opt::eliminate_dead_code(&mut p);
        removed_a = r.removed;
        len_a = p.len();
    }
    let time_a = t.elapsed().as_secs_f64() / reps as f64;

    // strategy B: propagation without branch simplification, alternated
    // with full-CFG unreachable elimination ("rebuild basic blocks")
    let mut removed_b = 0;
    let mut len_b = 0;
    let t = Instant::now();
    for _ in 0..reps {
        let mut p = inlined_main();
        let mut total = 0;
        loop {
            titanc_opt::constant_propagation_no_unreachable(&mut p);
            // fold branch conditions so reachability sees the constants:
            // the CFG rebuild itself only removes graph-unreachable code,
            // which is why the paper found it needed repeated reanalysis
            let before = p.len();
            let r1 = titanc_opt::constant_propagation(&mut p);
            let r2 = titanc_opt::eliminate_unreachable_cfg(&mut p);
            total += r1.removed + r2;
            if p.len() == before {
                break;
            }
        }
        titanc_opt::eliminate_dead_code(&mut p);
        removed_b = total;
        len_b = p.len();
    }
    let time_b = t.elapsed().as_secs_f64() / reps as f64;

    print_table(
        "EXP4 unreachable-code elimination after inlining daxpy(alpha = 0)",
        "the heuristic removes (almost) all unreachable code at lower compile cost than block reconstruction",
        &[
            Row {
                label: "inlined main, statements before".into(),
                value: base_len as f64,
                note: "statements".into(),
            },
            Row {
                label: "heuristic (§8): statements removed".into(),
                value: removed_a as f64,
                note: format!("final {len_a} stmts, {:.1} µs/compile", time_a * 1e6),
            },
            Row {
                label: "CFG rebuild baseline: statements removed".into(),
                value: removed_b as f64,
                note: format!("final {len_b} stmts, {:.1} µs/compile", time_b * 1e6),
            },
        ],
    );
    assert!(len_a <= base_len / 2, "specialization shrinks main sharply");
    assert!(
        len_a <= len_b + 2,
        "the heuristic is about as effective as block reconstruction"
    );
    println!("EXP4 ok");
}
