//! EXP6 (§5.3): the cost of backtracking induction-variable substitution.
//!
//! "In the worst case, this solution is extremely inefficient, requiring n
//! passes over a loop … However, in practice we have never seen this
//! behavior; the average case requires the same simple pass over the loop
//! that is needed in the straightforward algorithm." This experiment
//! grows the number of induction-variable chains in one loop and reports
//! passes and backtracks.

use std::time::Instant;
use titanc_bench::{ivsub_chain_source, print_table, Row};
use titanc_lower::compile_to_il;
use titanc_opt::{convert_while_loops, induction_substitution};

fn main() {
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16, 32] {
        let src = ivsub_chain_source(k, 64);
        let prog = compile_to_il(&src).expect("compiles");
        let mut proc = prog.procs[0].clone();
        convert_while_loops(&mut proc);
        let t = Instant::now();
        let rep = induction_substitution(&mut proc);
        let us = t.elapsed().as_secs_f64() * 1e6;
        rows.push(Row {
            label: format!("{k} pointer chains: IVs substituted"),
            value: rep.substituted as f64,
            note: format!(
                "passes {}, backtracks {}, {us:.0} µs",
                rep.passes, rep.backtracks
            ),
        });
        assert!(rep.substituted >= k, "all chains substituted");
        assert!(
            rep.passes <= 4,
            "the average case stays near one productive pass (got {})",
            rep.passes
        );
    }
    print_table(
        "EXP6 induction-variable substitution cost (§5.3)",
        "worst case n passes over the loop; in practice ~1 productive pass, backtracking rare",
        &rows,
    );

    // where the whole pipeline spends its time on the worst kernel: the
    // pass manager's trace gives per-pass wall-clock — and, since the
    // analysis cache landed, per-pass hit/build counts — for free
    let src = ivsub_chain_source(32, 64);
    let c = titanc::compile(&src, &titanc::Options::o2()).expect("compiles");
    let total = c.trace.total_duration().as_secs_f64() * 1e6;
    println!("== EXP6 per-pass timing (32 chains, full O2 pipeline)");
    for rec in &c.trace.records {
        let us = rec.duration.as_secs_f64() * 1e6;
        println!(
            "  {:<12} {us:>8.0} µs  {:>5.1}%  cache {:>2} hits {:>2} builds {}",
            rec.name,
            100.0 * us / total,
            rec.cache.hits(),
            rec.cache.builds(),
            if rec.changed { "" } else { "(no change)" }
        );
    }
    let totals = c.trace.cache_totals();
    println!(
        "  {:<12} {total:>8.0} µs          cache {:>2} hits {:>2} builds ({} repairs, {} invalidations)",
        "total",
        totals.hits(),
        totals.builds(),
        totals.repairs,
        totals.invalidations
    );
    assert!(
        c.trace.record("ivsub").is_some(),
        "O2 pipeline must include induction-variable substitution"
    );
    assert!(
        totals.hits() > 0,
        "the analysis cache must serve repeated requests: {totals:?}"
    );
    println!("EXP6 ok");
}
