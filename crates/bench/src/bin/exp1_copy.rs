//! EXP1 (§5.3): the pointer-walk copy loop.
//!
//! `while (n) { *a++ = *b++; n--; }` is "straightforwardly vectorized (it
//! is, after all, only a vector copy) once all the garbage is cleared
//! away" — while→DO conversion plus backtracking induction-variable
//! substitution expose the subscripts, and the pragma supplies the
//! aliasing guarantee C cannot.

use titanc::Options;
use titanc_bench::harness::{engine_arg, run_experiment, ExpCase};
use titanc_bench::{copy_source, mflops, print_table, Row};
use titanc_titan::MachineConfig;

fn main() {
    let engine = engine_arg();
    for n in [64usize, 100, 1024, 8192] {
        let src = copy_source(n);
        let stats = run_experiment(
            &src,
            &[
                ExpCase::new(Options::o1(), MachineConfig::scalar()),
                ExpCase::new(Options::o2(), MachineConfig::optimized(1)),
                ExpCase::new(Options::parallel(), MachineConfig::optimized(2)),
            ],
            engine,
        );
        let [scalar, vector, par2] = &stats[..] else {
            unreachable!("three cases")
        };
        let rows = vec![
            Row {
                label: format!("scalar only (O1), n={n}"),
                value: scalar.cycles,
                note: format!("cycles ({:.3} MB/s eq)", mflops(scalar)),
            },
            Row {
                label: format!("vectorized (O2), n={n}"),
                value: vector.cycles,
                note: format!("cycles, speedup {:.2}x", scalar.cycles / vector.cycles),
            },
            Row {
                label: format!("vector + 2 procs, n={n}"),
                value: par2.cycles,
                note: format!("cycles, speedup {:.2}x", scalar.cycles / par2.cycles),
            },
        ];
        print_table(
            &format!("EXP1 pointer-walk copy, n = {n}"),
            "the §5.3 loop vectorizes after backtracking IVS (large speedup expected)",
            &rows,
        );
        assert!(
            vector.cycles < scalar.cycles / 2.0,
            "vectorized copy must be much faster"
        );
        assert!(vector.vector_instrs > 0, "vector instructions issued");
    }
    println!("EXP1 ok");
}
