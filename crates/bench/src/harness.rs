//! A minimal wall-clock timing harness for the `cargo bench` targets.
//!
//! The container this repo builds in has no network access, so the bench
//! targets cannot pull a statistics crate; this module provides the small
//! subset actually needed — warm up, run a fixed number of samples, report
//! min/median/max — with `TITANC_BENCH_SAMPLES` overriding the sample
//! count.

use std::time::{Duration, Instant};

use titanc::Options;
use titanc_titan::{ExecEngine, ExecStats, MachineConfig};

/// One measured configuration of an experiment: a compile recipe plus a
/// simulated machine.
#[derive(Clone, Debug)]
pub struct ExpCase {
    /// Optimization pipeline.
    pub options: Options,
    /// Machine model to run on.
    pub machine: MachineConfig,
}

impl ExpCase {
    /// A case from an options/machine pair.
    pub fn new(options: Options, machine: MachineConfig) -> ExpCase {
        ExpCase { options, machine }
    }
}

/// The shared compile-then-simulate loop behind the `exp*` binaries:
/// compiles `src` once per case and runs `main` on that case's machine
/// with the chosen engine, returning the statistics in case order.
///
/// # Panics
///
/// Panics on compile or runtime errors — experiments are supposed to work.
pub fn run_experiment(src: &str, cases: &[ExpCase], engine: ExecEngine) -> Vec<ExecStats> {
    cases
        .iter()
        .map(|c| crate::run_with(src, &c.options, c.machine.clone(), engine))
        .collect()
}

/// Parses `--engine interp|vm` from the process arguments (both
/// `--engine vm` and `--engine=vm` forms), defaulting to the reference
/// interpreter. Exits with usage on an unknown engine so experiment
/// binaries share one spelling of the flag.
pub fn engine_arg() -> ExecEngine {
    let mut it = std::env::args().skip(1);
    let mut engine = ExecEngine::default();
    while let Some(a) = it.next() {
        let value = if a == "--engine" {
            it.next()
        } else {
            a.strip_prefix("--engine=").map(str::to_string)
        };
        if let Some(v) = value {
            engine = v.parse().unwrap_or_else(|e: String| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
    }
    engine
}

/// Runs closures a fixed number of times and prints timing summaries.
pub struct Bench {
    samples: usize,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::from_env()
    }
}

impl Bench {
    /// A harness taking `TITANC_BENCH_SAMPLES` samples (default 10).
    pub fn from_env() -> Bench {
        let samples = std::env::var("TITANC_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        Bench { samples }
    }

    /// Times `f` over the configured number of samples (after one warm-up
    /// call) and prints `label: median (min .. max)`.
    pub fn time<R>(&self, label: &str, f: impl FnMut() -> R) {
        self.measure(label, f);
    }

    /// Like [`Bench::time`], but also returns the median sample so callers
    /// can compute derived figures (speedups, throughput) or persist the
    /// measurement.
    pub fn measure<R>(&self, label: &str, f: impl FnMut() -> R) -> Duration {
        self.stats(label, f).median
    }

    /// Full summary variant of [`Bench::measure`]. The minimum is the
    /// noise-robust estimator on shared machines — external load only ever
    /// inflates a sample — so speedup comparisons should prefer it.
    pub fn stats<R>(&self, label: &str, mut f: impl FnMut() -> R) -> Measurement {
        std::hint::black_box(f());
        let times = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        self.summarize(label, times)
    }

    /// Like [`Bench::stats`], but the closure times its own region of
    /// interest and returns the elapsed time, so per-sample setup (e.g.
    /// building a fresh simulator memory image) stays out of the
    /// measurement.
    pub fn stats_timed(&self, label: &str, mut f: impl FnMut() -> Duration) -> Measurement {
        std::hint::black_box(f());
        let times = (0..self.samples).map(|_| f()).collect();
        self.summarize(label, times)
    }

    fn summarize(&self, label: &str, mut times: Vec<Duration>) -> Measurement {
        times.sort();
        let m = Measurement {
            min: times[0],
            median: times[times.len() / 2],
            max: times[times.len() - 1],
        };
        println!(
            "bench {label:<40} {} ({} .. {}) n={}",
            fmt_duration(m.median),
            fmt_duration(m.min),
            fmt_duration(m.max),
            self.samples,
        );
        m
    }
}

/// Timing summary over one benchmark's samples.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Fastest sample — the least-contended estimate.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Renders a duration with a unit that keeps 3–4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0us");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00s");
    }

    #[test]
    fn harness_runs_closure() {
        let mut calls = 0;
        Bench { samples: 3 }.time("noop", || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 samples
    }
}
