//! # titanc-bench — the experiment harness
//!
//! One binary per experiment in `DESIGN.md`'s index (EXP1–EXP10), each
//! regenerating the corresponding paper result; `benches/` wraps the same
//! measurements in the [`harness`] timer for `cargo bench`. Run a binary
//! with `cargo run --release -p titanc-bench --bin exp2_backsolve`.

#![forbid(unsafe_code)]

pub mod harness;
pub mod progen;

use titanc::{compile, Options};
use titanc_titan::{ExecEngine, ExecStats, MachineConfig, Simulator};

/// The paper's corpus, embedded.
pub mod corpus {
    /// §9 daxpy example.
    pub const DAXPY: &str = include_str!("../../../corpus/daxpy.c");
    /// §6 backsolve loop.
    pub const BACKSOLVE: &str = include_str!("../../../corpus/backsolve.c");
    /// §5.3 pointer-walk copy.
    pub const COPY: &str = include_str!("../../../corpus/copy.c");
    /// §1 volatile poll loop.
    pub const VOLATILE_POLL: &str = include_str!("../../../corpus/volatile_poll.c");
    /// §10 struct-embedded arrays (graphics transform).
    pub const STRUCT_MATRIX: &str = include_str!("../../../corpus/struct_matrix.c");
    /// BLAS-1 library used for catalog inlining.
    pub const BLASLIB: &str = include_str!("../../../corpus/blaslib.c");
    /// §10 linked-list walk (future-work spreading).
    pub const LISTWALK: &str = include_str!("../../../corpus/listwalk.c");
}

/// Compiles `src` with `options` and runs `main` on `machine`, returning
/// the run statistics.
///
/// # Panics
///
/// Panics on compile or runtime errors — experiments are supposed to work.
pub fn run(src: &str, options: &Options, machine: MachineConfig) -> ExecStats {
    run_with(src, options, machine, ExecEngine::default())
}

/// [`run`], with an explicit execution backend. Both engines report
/// identical statistics, so experiment tables are engine-independent.
///
/// # Panics
///
/// Panics on compile or runtime errors — experiments are supposed to work.
pub fn run_with(
    src: &str,
    options: &Options,
    machine: MachineConfig,
    engine: ExecEngine,
) -> ExecStats {
    let compiled = compile(src, options).expect("experiment source compiles");
    let mut sim = Simulator::with_engine(&compiled.program, machine, engine);
    let result = sim.run("main", &[]).expect("experiment runs");
    result.stats
}

/// Compiles with `options` and returns the program plus reports (for
/// compile-time/shape experiments).
pub fn compile_only(src: &str, options: &Options) -> titanc::Compilation {
    compile(src, options).expect("experiment source compiles")
}

/// MFLOPS at the Titan's 16 MHz clock.
pub fn mflops(stats: &ExecStats) -> f64 {
    stats.mflops(16.0)
}

/// A row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configuration label.
    pub label: String,
    /// Measured value.
    pub value: f64,
    /// Unit/notes.
    pub note: String,
}

/// Prints an experiment table with a title and the paper's claim.
pub fn print_table(title: &str, paper_claim: &str, rows: &[Row]) {
    println!("== {title}");
    println!("   paper: {paper_claim}");
    for r in rows {
        println!("   {:<42} {:>12.3}  {}", r.label, r.value, r.note);
    }
    println!();
}

/// Builds a parameterized daxpy-style kernel source.
pub fn daxpy_source(n: usize) -> String {
    format!(
        r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}}
float a[{n}], b[{n}], c[{n}];
int main(void)
{{
    daxpy(a, b, c, 1.0, {n});
    return 0;
}}
"#
    )
}

/// Builds the §5.3 pointer-copy kernel of a given size.
pub fn copy_source(n: usize) -> String {
    format!(
        r#"
float dst[{n}], src[{n}];
int main(void)
{{
    float *a, *b;
    int n;
    a = &dst[0];
    b = &src[0];
    n = {n};
#pragma safe
    while (n) {{
        *a++ = *b++;
        n--;
    }}
    return 0;
}}
"#
    )
}

/// Builds the §6 backsolve kernel of a given size.
pub fn backsolve_source(n: usize) -> String {
    let arr = n + 2;
    format!(
        r#"
float x[{arr}], y[{arr}], z[{arr}];
int main(void)
{{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < {n}; i++)
        p[i] = z[i] * (y[i] - q[i]);
    return 0;
}}
"#
    )
}

/// The EXP5 loop-form corpus: `(name, source, expected to convert)`.
pub fn whiledo_corpus() -> Vec<(&'static str, String, bool)> {
    vec![
        (
            "canonical for (i = 0; i < n; i++)",
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0; }".into(),
            true,
        ),
        (
            "countdown while (n) { ... n--; }",
            "void f(float *a, int n) { while (n) { *a++ = 0; n--; } }".into(),
            true,
        ),
        (
            "paper §5.2: i = n; while (i) i = temp - s",
            "void f(int n, int s) { int i, temp; i = n; while (i) { temp = i; i = temp - s; } }"
                .into(),
            true,
        ),
        (
            "for (i = n; i >= 0; i--)",
            "void f(float *a, int n) { int i; for (i = n; i >= 0; i--) a[i] = 0; }".into(),
            true,
        ),
        (
            "stride 4: for (i = 0; i < n; i += 4)",
            "void f(float *a, int n) { int i; for (i = 0; i < n; i += 4) a[i] = 0; }".into(),
            true,
        ),
        (
            "i != n with unit step",
            "void f(float *a, int n) { int i; for (i = 0; i != n; i++) a[i] = 0; }".into(),
            true,
        ),
        (
            "branch into loop",
            "void f(int n) { if (n > 5) goto ins; while (n) { ins: n = n - 1; } }".into(),
            false,
        ),
        (
            "break out of loop",
            "void f(int n) { while (n) { if (n == 3) break; n--; } }".into(),
            false,
        ),
        (
            "return inside loop",
            "int f(int n) { while (n) { if (n == 2) return 1; n--; } return 0; }".into(),
            false,
        ),
        (
            "volatile condition (true while loop)",
            "volatile int st; void f(void) { while (!st); }".into(),
            false,
        ),
        (
            "bound varies in loop",
            "void f(int n, int b) { int i; for (i = 0; i < b; i++) b = b - 1; }".into(),
            false,
        ),
        (
            "stride varies in loop",
            "void f(int n, int s) { int i; for (i = 0; i < n; i += s) s = s + 1; }".into(),
            false,
        ),
        (
            "conditional step",
            "void f(int n, int c) { int i; i = 0; while (i < n) { if (c) i = i + 1; } }".into(),
            false,
        ),
        (
            "linked-list walk (true while loop)",
            "struct nd { int v; struct nd *next; };\nvoid f(struct nd *p) { while (p) p = p->next; }"
                .into(),
            false,
        ),
        (
            "wrong direction",
            "void f(int n) { int i; for (i = 0; i < n; i--) { ; } }".into(),
            false,
        ),
        (
            "i != n with stride 2 (may step over)",
            "void f(int n) { int i; for (i = 0; i != n; i += 2) { ; } }".into(),
            false,
        ),
    ]
}

/// Generates a loop whose body contains a chain of `k` interdependent
/// copy/increment pairs — the EXP6 backtracking stressor. Each pointer's
/// increment hides behind the previous pointer's copy temporary.
pub fn ivsub_chain_source(k: usize, n: usize) -> String {
    let mut decls = String::new();
    let mut init = String::new();
    let mut body = String::new();
    for j in 0..k {
        decls.push_str(&format!("    float *p{j};\n"));
        init.push_str(&format!("    p{j} = &data[{j}];\n"));
        body.push_str(&format!("        *p{j}++ = {j}.0f;\n"));
    }
    format!(
        r#"
float data[{size}];
int main(void)
{{
{decls}    int n;
{init}    n = {n};
    while (n) {{
{body}        n--;
    }}
    return 0;
}}
"#,
        size = n * 2 + k + 2,
    )
}

/// Generates a translation unit with `nprocs` independent procedures, each
/// heavy enough that per-procedure optimization dominates compile time —
/// the corpus for the parallel-pipeline benchmark. Every procedure carries
/// a branch-guarded constant chain (several constant-propagation rounds
/// off the cached use–def chains), `loops` vectorizable array loops, and a
/// pointer-walk while loop (while→DO conversion plus induction-variable
/// substitution).
pub fn multi_proc_source(nprocs: usize, loops: usize) -> String {
    let mut src = String::new();
    for k in 0..nprocs {
        let seed = k % 7 + 2;
        src.push_str(&format!("float ma{k}[256], mb{k}[256], mc{k}[256];\n"));
        src.push_str(&format!("void mp{k}(int n)\n{{\n"));
        src.push_str("    float *p, *q;\n    int i, j, t0, t1, t2, t3;\n");
        src.push_str(&format!(
            "    if (n) t0 = {seed}; else t0 = {seed};\n\
             \x20   if (n) t1 = t0 * t0; else t1 = t0 * t0;\n\
             \x20   if (n) t2 = t1 + t1; else t2 = t1 + t1;\n\
             \x20   t3 = t2 * t1;\n"
        ));
        for l in 0..loops {
            match l % 3 {
                0 => src.push_str(&format!(
                    "    for (i = 0; i < 256; i++)\n\
                     \x20       ma{k}[i] = mb{k}[i] * t3 + mc{k}[i] * t2;\n"
                )),
                1 => src.push_str(&format!(
                    "    for (i = 0; i < 256; i++)\n\
                     \x20       mc{k}[i] = ma{k}[i] + mb{k}[i] * t1;\n"
                )),
                _ => src.push_str(&format!(
                    "    for (i = 1; i < 255; i++)\n\
                     \x20       mb{k}[i] = mc{k}[i - 1] * t2 + ma{k}[i + 1];\n"
                )),
            }
        }
        src.push_str(&format!(
            "    p = &ma{k}[0];\n\
             \x20   q = &mb{k}[0];\n\
             \x20   j = 256;\n\
             \x20   while (j) {{\n\
             \x20       *p++ = *q++ + (float)t1;\n\
             \x20       j--;\n\
             \x20   }}\n}}\n"
        ));
    }
    src.push_str("int main(void) { return 0; }\n");
    src
}

/// [`multi_proc_source`] with a call graph: `main` calls every `mpK`,
/// and each `mpK` folds `salts[k]` into its constant chain. Changing one
/// salt "edits" exactly that procedure while every other procedure's
/// text stays byte-identical — the corpus for the incremental-cache
/// edit benchmark, where an edit must invalidate only the edited
/// procedure's inline-cone consumers (here: itself and `main`).
pub fn multi_proc_call_source(nprocs: usize, loops: usize, salts: &[i64]) -> String {
    assert_eq!(salts.len(), nprocs, "one salt per procedure");
    let mut src = multi_proc_call_body(nprocs, loops, salts);
    src.push_str("int main(void)\n{\n");
    for k in 0..nprocs {
        src.push_str(&format!("    mp{k}({});\n", k + 1));
    }
    src.push_str("    return 0;\n}\n");
    src
}

fn multi_proc_call_body(nprocs: usize, loops: usize, salts: &[i64]) -> String {
    let mut src = String::new();
    for (k, &salt) in salts.iter().enumerate().take(nprocs) {
        let seed = k % 7 + 2;
        src.push_str(&format!("float ma{k}[256], mb{k}[256], mc{k}[256];\n"));
        src.push_str(&format!("void mp{k}(int n)\n{{\n"));
        src.push_str("    float *p, *q;\n    int i, j, t0, t1, t2, t3;\n");
        src.push_str(&format!(
            "    if (n) t0 = {seed}; else t0 = {seed};\n\
             \x20   if (n) t1 = t0 * t0; else t1 = t0 * t0;\n\
             \x20   if (n) t2 = t1 + t1; else t2 = t1 + t1;\n\
             \x20   t3 = t2 * t1 + {};\n",
            salt
        ));
        for l in 0..loops {
            match l % 3 {
                0 => src.push_str(&format!(
                    "    for (i = 0; i < 256; i++)\n\
                     \x20       ma{k}[i] = mb{k}[i] * t3 + mc{k}[i] * t2;\n"
                )),
                1 => src.push_str(&format!(
                    "    for (i = 0; i < 256; i++)\n\
                     \x20       mc{k}[i] = ma{k}[i] + mb{k}[i] * t1;\n"
                )),
                _ => src.push_str(&format!(
                    "    for (i = 1; i < 255; i++)\n\
                     \x20       mb{k}[i] = mc{k}[i - 1] * t2 + ma{k}[i + 1];\n"
                )),
            }
        }
        src.push_str(&format!(
            "    p = &ma{k}[0];\n\
             \x20   q = &mb{k}[0];\n\
             \x20   j = 256;\n\
             \x20   while (j) {{\n\
             \x20       *p++ = *q++ + (float)t1;\n\
             \x20       j--;\n\
             \x20   }}\n}}\n"
        ));
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_compiles_at_o2() {
        for (name, src) in [
            ("daxpy", corpus::DAXPY),
            ("backsolve", corpus::BACKSOLVE),
            ("copy", corpus::COPY),
            ("volatile", corpus::VOLATILE_POLL),
            ("struct_matrix", corpus::STRUCT_MATRIX),
            ("blaslib", corpus::BLASLIB),
            ("listwalk", corpus::LISTWALK),
        ] {
            compile(src, &Options::o2()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn generators_compile_and_run() {
        for src in [daxpy_source(16), copy_source(16), backsolve_source(16)] {
            let stats = run(&src, &Options::o2(), MachineConfig::optimized(1));
            assert!(stats.cycles > 0.0);
        }
    }

    #[test]
    fn whiledo_corpus_is_consistent() {
        for (name, src, expect) in whiledo_corpus() {
            let prog = titanc_lower::compile_to_il(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut proc = prog.procs[0].clone();
            let rep = titanc_opt::convert_while_loops(&mut proc);
            assert_eq!(rep.converted > 0, expect, "{name}");
        }
    }

    #[test]
    fn multi_proc_generator_compiles_and_exercises_cache() {
        let src = multi_proc_source(3, 2);
        let c = compile(&src, &Options::o2()).unwrap();
        assert_eq!(c.program.procs.len(), 4, "3 procs + main");
        let totals = c.trace.cache_totals();
        assert!(totals.usedef_hits > 0, "{totals:?}");
        assert!(c.reports.vector.vectorized >= 3, "{:?}", c.reports.vector);
        assert!(c.reports.whiledo.converted >= 3);
    }

    #[test]
    fn ivsub_chain_generator_scales() {
        let src = ivsub_chain_source(4, 8);
        let prog = titanc_lower::compile_to_il(&src).unwrap();
        let mut proc = prog.procs[0].clone();
        titanc_opt::convert_while_loops(&mut proc);
        let rep = titanc_opt::induction_substitution(&mut proc);
        assert!(rep.substituted >= 4);
    }
}
