//! Random C program generation for differential stress testing.
//!
//! Programs are closed (no inputs), deterministic, and terminating by
//! construction: integer scalars, two observable output arrays, a helper
//! procedure to exercise the inliner, `if`/`else`, and bounded counted
//! loops with distinct counters per nesting level. Every generated
//! program is valid C in the compiler's subset, so any front-end
//! rejection, contained incident, or observation divergence found by the
//! stress harness is a compiler bug, not a generator artifact.

/// Names of the integer scalar variables every program declares.
pub const SCALARS: [&str; 4] = ["va", "vb", "vc", "vd"];

/// Length of the observable output arrays `out_g` / `out_f`.
pub const OUT_LEN: usize = 16;

/// Deepest counted-loop nesting the generator emits.
const MAX_LOOP_DEPTH: usize = 3;

/// xorshift64* PRNG — deterministic and dependency-free, so a failing
/// seed reproduces forever.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator; `0` is mapped away (xorshift fixpoint).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

enum Expr {
    Const(i32),
    Scalar(usize),
    Counter,
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Expr::Const(c) => out.push_str(&c.to_string()),
            Expr::Scalar(i) => out.push_str(SCALARS[i % SCALARS.len()]),
            Expr::Counter => {
                if depth > 0 {
                    out.push_str(&format!("k{}", depth.min(MAX_LOOP_DEPTH)));
                } else {
                    out.push('1');
                }
            }
            Expr::Bin(op, a, b) => {
                out.push('(');
                a.render(out, depth);
                out.push_str(&format!(" {op} "));
                b.render(out, depth);
                out.push(')');
            }
            Expr::Call(a, b) => {
                out.push_str("helper(");
                a.render(out, depth);
                out.push_str(", ");
                b.render(out, depth);
                out.push(')');
            }
        }
    }
}

enum Stmt {
    Assign(usize, Expr),
    IntStore(usize, Expr),
    FloatStore(usize, Expr),
    CounterStore(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn gen_expr(rng: &mut Rng, fuel: u32, calls: bool) -> Expr {
    if fuel == 0 || rng.below(5) < 2 {
        return match rng.below(3) {
            0 => Expr::Const(rng.range(-25, 25) as i32),
            1 => Expr::Scalar(rng.below(SCALARS.len() as u64) as usize),
            _ => Expr::Counter,
        };
    }
    let a = Box::new(gen_expr(rng, fuel - 1, calls));
    let b = Box::new(gen_expr(rng, fuel - 1, calls));
    match rng.below(if calls { 6 } else { 5 }) {
        0 => Expr::Bin("+", a, b),
        1 => Expr::Bin("-", a, b),
        2 => Expr::Bin("*", a, b),
        3 => Expr::Bin("<", a, b),
        4 => Expr::Bin("==", a, b),
        _ => Expr::Call(a, b),
    }
}

fn gen_stmt(rng: &mut Rng, fuel: u32, calls: bool) -> Stmt {
    if fuel > 0 && rng.below(3) == 0 {
        let block = |rng: &mut Rng, lo: i64, hi: i64| -> Vec<Stmt> {
            (0..rng.range(lo, hi))
                .map(|_| gen_stmt(rng, fuel - 1, calls))
                .collect()
        };
        return if rng.below(2) == 0 {
            let cond = gen_expr(rng, 2, calls);
            let t = block(rng, 1, 4);
            let f = block(rng, 0, 3);
            Stmt::If(cond, t, f)
        } else {
            let trips = (rng.below(11) + 1) as u8; // 1..=11 < OUT_LEN
            Stmt::Loop(trips, block(rng, 1, 4))
        };
    }
    match rng.below(4) {
        0 => Stmt::Assign(
            rng.below(SCALARS.len() as u64) as usize,
            gen_expr(rng, 2, calls),
        ),
        1 => Stmt::IntStore(rng.below(OUT_LEN as u64) as usize, gen_expr(rng, 2, calls)),
        2 => Stmt::FloatStore(rng.below(OUT_LEN as u64) as usize, gen_expr(rng, 2, calls)),
        _ => Stmt::CounterStore(gen_expr(rng, 2, calls)),
    }
}

fn render_block(stmts: &[Stmt], out: &mut String, indent: usize, depth: usize) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}{} = ", SCALARS[v % SCALARS.len()]));
                e.render(out, depth);
                out.push_str(";\n");
            }
            Stmt::IntStore(i, e) => {
                out.push_str(&format!("{pad}out_g[{}] = ", i % OUT_LEN));
                e.render(out, depth);
                out.push_str(";\n");
            }
            Stmt::FloatStore(i, e) => {
                out.push_str(&format!("{pad}out_f[{}] = 0.25f * ", i % OUT_LEN));
                e.render(out, depth);
                out.push_str(";\n");
            }
            Stmt::CounterStore(e) => {
                // trip counts stay below OUT_LEN, so the counter indexes
                // safely; outside any loop index 0 is used
                let idx = if depth > 0 {
                    format!("k{}", depth.min(MAX_LOOP_DEPTH))
                } else {
                    "0".to_string()
                };
                out.push_str(&format!("{pad}out_g[{idx}] = "));
                e.render(out, depth);
                out.push_str(";\n");
            }
            Stmt::If(c, t, f) => {
                out.push_str(&format!("{pad}if ("));
                c.render(out, depth);
                out.push_str(") {\n");
                render_block(t, out, indent + 1, depth);
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_block(f, out, indent + 1, depth);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::Loop(trips, body) => {
                let d = (depth + 1).min(MAX_LOOP_DEPTH);
                out.push_str(&format!("{pad}for (k{d} = 0; k{d} < {trips}; k{d}++) {{\n"));
                render_block(body, out, indent + 1, d);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// Generates an `n`-helper session corpus for incremental-cache tests.
///
/// Helpers `h1..hn` are defined in order; each may call already-defined
/// lower-index helpers, so the call graph is acyclic but has real
/// depth, and `main` calls every helper. `salts[k]` is folded into
/// `h{k+1}` as one constant, so a test can "edit" exactly one procedure
/// by changing one salt and regenerating with the same seed — every
/// other procedure's text stays byte-identical (no RNG draw depends on
/// a salt's value).
pub fn session_program(rng: &mut Rng, n: usize, salts: &[i64]) -> String {
    assert_eq!(salts.len(), n, "one salt per helper");
    let decls = "int va, vb, vc, vd, k1, k2, k3;";
    let inits = "k1 = 0; k2 = 0; k3 = 0;";
    let mut out = format!("int out_g[{OUT_LEN}];\nfloat out_f[{OUT_LEN}];\n");
    for (k, &salt) in salts.iter().enumerate() {
        let stmts: Vec<Stmt> = (0..rng.range(1, 4))
            .map(|_| gen_stmt(rng, 1, false))
            .collect();
        let ret = gen_expr(rng, 2, false);
        let mut body = String::new();
        render_block(&stmts, &mut body, 1, 0);
        // up to two calls into already-defined helpers; the draws run
        // even when k == 0 so the RNG stream is position-independent
        let mut calls = String::new();
        for _ in 0..2 {
            let want = rng.below(2) == 0;
            let pick = rng.below((k.max(1)) as u64) as usize;
            if want && k > 0 {
                calls.push_str(&format!("    vb = vb + h{}(va, vc);\n", pick + 1));
            }
        }
        let mut rtxt = String::new();
        ret.render(&mut rtxt, 0);
        out.push_str(&format!(
            "int h{}(int ha, int hb)\n{{\n    {decls}\n    \
             va = ha; vb = hb; vc = 5; vd = 7; {inits}\n    \
             va = va + {};\n{body}{calls}    return {rtxt};\n}}\n",
            k + 1,
            salt,
        ));
    }
    let mut mcalls = String::new();
    for k in 0..n {
        mcalls.push_str(&format!("    vd = vd + h{}(va, vb);\n", k + 1));
    }
    out.push_str(&format!(
        "int main(void)\n{{\n    {decls}\n    \
         va = 1; vb = 2; vc = 3; vd = 4; {inits}\n{mcalls}    return vd;\n}}\n"
    ));
    out
}

/// Generates one complete, self-contained C program.
pub fn program(rng: &mut Rng) -> String {
    let main_stmts: Vec<Stmt> = (0..rng.range(2, 9))
        .map(|_| gen_stmt(rng, 2, true))
        .collect();
    let helper_stmts: Vec<Stmt> = (0..rng.range(1, 5))
        .map(|_| gen_stmt(rng, 1, false))
        .collect();
    let helper_ret = gen_expr(rng, 2, false);
    let main_ret = gen_expr(rng, 2, true);

    let decls = "int va, vb, vc, vd, k1, k2, k3;";
    let inits = "k1 = 0; k2 = 0; k3 = 0;";
    let mut body = String::new();
    render_block(&main_stmts, &mut body, 1, 0);
    let mut hbody = String::new();
    render_block(&helper_stmts, &mut hbody, 1, 0);
    let mut hret = String::new();
    helper_ret.render(&mut hret, 0);
    let mut mret = String::new();
    main_ret.render(&mut mret, 0);

    format!(
        "int out_g[{OUT_LEN}];\nfloat out_f[{OUT_LEN}];\n\
         int helper(int ha, int hb)\n{{\n    {decls}\n    \
         va = ha; vb = hb; vc = 5; vd = 7; {inits}\n{hbody}    return {hret};\n}}\n\
         int main(void)\n{{\n    {decls}\n    \
         va = 1; vb = 2; vc = 3; vd = 4; {inits}\n{body}    return {mret};\n}}\n"
    )
}
