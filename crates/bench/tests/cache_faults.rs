//! Cache durability property tests: random on-disk corruption over
//! progen programs never escapes into the output, injected write
//! failures are surfaced (counted plus one warning) without harming the
//! compile, and injected read faults degrade to a cold compile.
//!
//! Fault injection ([`install_io_faults`]) is process-global, so every
//! test here serializes on [`SERIAL`] — this binary is the only place
//! outside the stress harness that installs faults, and the harness is
//! a separate process.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use titanc::{
    compile_session, install_io_faults, FaultMode, IoFaultSpec, IoOp, OptReport, Options,
    SessionCompilation, SourceFile,
};
use titanc_bench::progen;

/// Serializes tests that install process-global IO faults. Poisoning is
/// ignored — a failed test must not cascade into the rest of the suite.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh per-test cache directory under the bench target dir.
fn cache_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/test-caches"
    ))
    .join(format!("faults-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn il_text(sc: &SessionCompilation) -> String {
    sc.compilation
        .program
        .procs
        .iter()
        .map(titanc_il::pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

fn report_json(sc: &SessionCompilation) -> String {
    OptReport::build_for(
        &sc.compilation.reports,
        &sc.compilation.trace,
        &sc.compilation.program.files,
    )
    .to_json()
    .to_string_compact()
}

fn compile(src: &str, dir: Option<&PathBuf>) -> SessionCompilation {
    let files = [SourceFile::new("case.c", src.to_string())];
    compile_session(&files, &Options::o2(), dir.map(|d| d.as_path())).expect("progen compiles")
}

/// Flips one random bit in, and truncates, the top-level `*.json` files
/// of a populated cache directory (sparing `FORMAT`, locks and the
/// quarantine subdirectory, which a warm run does not read as entries).
fn corrupt(dir: &PathBuf, rng: &mut progen::Rng) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "populated dir must hold *.json files");

    let victim = &files[rng.below(files.len() as u64) as usize];
    let mut bytes = std::fs::read(victim).expect("read victim");
    if bytes.is_empty() {
        bytes.push(b'!');
    } else {
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1 << rng.below(8);
    }
    std::fs::write(victim, &bytes).expect("write victim");

    let victim = &files[rng.below(files.len() as u64) as usize];
    let bytes = std::fs::read(victim).expect("read victim");
    let keep = rng.below(bytes.len().max(1) as u64) as usize;
    std::fs::write(victim, &bytes[..keep.min(bytes.len())]).expect("truncate victim");
}

/// Property: whatever bytes rot on disk, the warm run detects the
/// damage (corrupt counter, quarantine) and still emits output
/// byte-identical to a no-cache compile. Several progen seeds, each
/// corrupted with its own RNG stream.
#[test]
fn random_corruption_never_escapes_into_the_output() {
    let _guard = serial();
    install_io_faults(None);
    for seed in [11u64, 1207, 90210, 0xDECAF, 0xFEED_5EED] {
        let mut rng = progen::Rng::new(seed);
        let src = progen::program(&mut rng);
        let reference = compile(&src, None);

        let dir = cache_dir(&format!("corrupt-{seed}"));
        compile(&src, Some(&dir)); // clean populate
        corrupt(&dir, &mut rng);
        let damaged = compile(&src, Some(&dir));

        assert_eq!(
            il_text(&reference),
            il_text(&damaged),
            "seed {seed}: corrupted cache changed the optimized IL"
        );
        assert_eq!(
            report_json(&reference),
            report_json(&damaged),
            "seed {seed}: corrupted cache changed the opt report"
        );
        assert!(
            damaged.stats.corrupt > 0,
            "seed {seed}: damage must be detected, not silently missed"
        );
        assert_eq!(
            damaged.stats.corrupt, damaged.stats.quarantined,
            "seed {seed}: every corrupt file is quarantined"
        );
        let quarantined = std::fs::read_dir(dir.join("quarantine"))
            .map(|d| d.count())
            .unwrap_or(0);
        assert!(
            quarantined >= damaged.stats.quarantined,
            "seed {seed}: quarantined files must be preserved on disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Injected write failures (every write fails) are counted, surfaced as
/// one warning, and leave the compiled output untouched.
#[test]
fn injected_write_failures_are_counted_and_surfaced() {
    let _guard = serial();
    let mut rng = progen::Rng::new(424242);
    let src = progen::program(&mut rng);
    let reference = compile(&src, None);

    let dir = cache_dir("write-fail");
    install_io_faults(Some(IoFaultSpec::new(7).rule(
        IoOp::Write,
        FaultMode::Fail,
        1.0,
    )));
    let crippled = compile(&src, Some(&dir));
    install_io_faults(None);

    assert_eq!(il_text(&reference), il_text(&crippled));
    assert_eq!(report_json(&reference), report_json(&crippled));
    assert!(
        crippled.stats.write_failed > 0,
        "failed writes must be counted"
    );
    let warnings: Vec<_> = crippled
        .compilation
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("cache write(s) failed"))
        .collect();
    assert_eq!(
        warnings.len(),
        1,
        "exactly one surfaced write-failure warning: {:?}",
        crippled
            .compilation
            .diagnostics
            .iter()
            .map(|d| &d.message)
            .collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected read faults (every read fails) demote a warm directory to a
/// cold compile — zero hits, byte-identical output, no panic.
#[test]
fn injected_read_faults_degrade_to_a_cold_compile() {
    let _guard = serial();
    install_io_faults(None);
    let mut rng = progen::Rng::new(31337);
    let src = progen::program(&mut rng);
    let reference = compile(&src, None);

    let dir = cache_dir("read-fail");
    let warm_baseline = compile(&src, Some(&dir)); // clean populate
    assert!(warm_baseline.stats.misses > 0);

    install_io_faults(Some(IoFaultSpec::new(8).rule(
        IoOp::Read,
        FaultMode::Fail,
        1.0,
    )));
    let blinded = compile(&src, Some(&dir));
    install_io_faults(None);

    assert_eq!(blinded.stats.hits, 0, "unreadable cache cannot hit");
    assert_eq!(il_text(&reference), il_text(&blinded));
    assert_eq!(report_json(&reference), report_json(&blinded));

    // with faults lifted, the directory serves again or recovers cold —
    // either way the output still matches
    let recovered = compile(&src, Some(&dir));
    assert_eq!(il_text(&reference), il_text(&recovered));
    let _ = std::fs::remove_dir_all(&dir);
}
