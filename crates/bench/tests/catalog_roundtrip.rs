//! Property test: catalog encoding is a faithful, stable bijection.
//!
//! Over a population of progen-generated programs, asserts that
//! `decode(encode(p)) == p` and that re-encoding the decoded catalog
//! reproduces the original text byte for byte — both for span-bearing
//! procedures (including origin-tagged spans, the PR-5 file dimension)
//! and for legacy span-free catalogs, which predate spans entirely and
//! must keep decoding.

use titanc_bench::progen::{self, Rng};
use titanc_cfront::DiagnosticSink;
use titanc_il::{Catalog, Program};

/// Parses and lowers one generated source into parsed IL.
fn lower(src: &str) -> Program {
    let mut sink = DiagnosticSink::new(0);
    let tu = titanc_cfront::parse_recovering(src, &mut sink);
    assert!(!sink.has_errors(), "progen emitted invalid C:\n{src}");
    titanc_lower::lower(&tu).expect("progen program lowers")
}

/// One round trip: decode(encode(c)) == c, and the re-encoding is
/// byte-identical.
fn assert_roundtrip(catalog: &Catalog, what: &str) {
    let text = catalog.to_json();
    let decoded = Catalog::from_json(&text)
        .unwrap_or_else(|e| panic!("{what}: decode failed: {e:?}\n{text}"));
    assert_eq!(&decoded, catalog, "{what}: decode(encode(c)) != c");
    assert_eq!(
        decoded.to_json(),
        text,
        "{what}: re-encoding not byte-identical"
    );
}

/// The arena refactor's encoder contract: pretty-printing and JSON
/// encoding are pure functions of the arena contents. A clone encodes
/// byte-for-byte identically, and `decode(encode(p))` rebuilds a
/// structurally equal procedure whose re-encoding is byte-identical —
/// over parsed IL and over fully optimized IL (post-transform arenas
/// carry garbage slots, imported subtrees, and compacted layouts).
#[test]
fn pretty_and_json_are_pure_functions_of_the_arena() {
    use titanc_il::json::{FromJson, ToJson};
    for seed in 1..=16u64 {
        let src = progen::program(&mut Rng::new(seed));
        let parsed = lower(&src);
        let optimized = titanc::compile(&src, &titanc::Options::o2())
            .expect("progen program compiles at O2")
            .program;
        for (stage, program) in [("parsed", &parsed), ("optimized", &optimized)] {
            for p in &program.procs {
                let what = format!("seed {seed} ({stage}) proc `{}`", p.name);
                let clone = p.clone();
                assert_eq!(
                    titanc_il::pretty_proc(p),
                    titanc_il::pretty_proc(&clone),
                    "{what}: pretty output not a pure function of the arena"
                );
                assert_eq!(
                    titanc_il::hash_proc(p),
                    titanc_il::hash_proc(&clone),
                    "{what}: arena hash differs across clones"
                );
                let text = p.to_json().to_string_compact();
                assert_eq!(
                    text,
                    clone.to_json().to_string_compact(),
                    "{what}: json encoding differs across clones"
                );
                let parsed_json = titanc_il::json::parse(&text)
                    .unwrap_or_else(|e| panic!("{what}: encoding unparseable: {e:?}"));
                let decoded = titanc_il::Procedure::from_json(&parsed_json)
                    .unwrap_or_else(|e| panic!("{what}: decode failed: {e:?}"));
                assert_eq!(&decoded, p, "{what}: decode(encode(p)) != p");
                // the codec encodes structurally and rebuilds arenas in
                // traversal order on decode, so the *encoding* must be a
                // fixed point even though the layout-sensitive arena hash
                // may legitimately change across the trip
                assert_eq!(
                    decoded.to_json().to_string_compact(),
                    text,
                    "{what}: re-encoding not byte-identical"
                );
            }
        }
    }
}

#[test]
fn generated_programs_roundtrip_through_catalogs() {
    for seed in 1..=32u64 {
        let src = progen::program(&mut Rng::new(seed));
        let program = lower(&src);
        let catalog = Catalog::from_program(format!("gen{seed}"), &program);
        assert_roundtrip(&catalog, &format!("seed {seed} (span-bearing)"));
    }
}

#[test]
fn origin_tagged_spans_roundtrip() {
    for seed in 1..=8u64 {
        let src = progen::program(&mut Rng::new(seed));
        let mut program = lower(&src);
        // simulate a session merge: tag every span as originating in a
        // named file, so the catalog carries the file table too
        let tag = program.intern_file(&format!("gen{seed}.c"));
        let map = vec![tag];
        for p in &mut program.procs {
            p.retag_spans(&map);
        }
        let catalog = Catalog::from_program(format!("gen{seed}"), &program);
        assert!(
            catalog.to_json().contains("\"files\""),
            "seed {seed}: tagged catalog should carry its file table"
        );
        assert_roundtrip(&catalog, &format!("seed {seed} (origin-tagged)"));
    }
}

#[test]
fn legacy_span_free_catalogs_still_decode() {
    for seed in 1..=8u64 {
        let src = progen::program(&mut Rng::new(seed));
        let mut program = lower(&src);
        // a catalog written before spans existed has no span fields at
        // all; erasing every span reproduces that encoding exactly
        for p in &mut program.procs {
            for sp in p.stmts.spans_mut() {
                *sp = titanc_il::SrcSpan::NONE;
            }
        }
        let catalog = Catalog::from_program(format!("gen{seed}"), &program);
        let text = catalog.to_json();
        assert!(
            !text.contains("\"span\""),
            "seed {seed}: span-free catalog must not encode spans"
        );
        assert_roundtrip(&catalog, &format!("seed {seed} (legacy span-free)"));
    }
}
