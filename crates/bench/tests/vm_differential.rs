//! Interpreter-vs-VM differential suite.
//!
//! The bytecode VM must be observationally *and* statistically
//! indistinguishable from the reference interpreter: same return value,
//! same printed output, same global memory, and byte-for-byte identical
//! execution statistics (cycle totals included — cycles are `f64`, so
//! even the summation order must match). This suite drives both engines
//! over the experiment corpora at every optimization level and over a
//! progen fuzz corpus, plus the volatile poll loop and the error paths.

use titanc::Options;
use titanc_bench::{backsolve_source, copy_source, corpus, daxpy_source, progen};
use titanc_il::ScalarType;
use titanc_titan::{observe_with, ExecEngine, MachineConfig, Simulator};

/// Runs `main` under both engines and asserts identical observations and
/// identical statistics; returns nothing of interest — the asserts are
/// the test.
fn assert_parity(src: &str, options: &Options, machine: MachineConfig, what: &str) {
    let compiled = titanc::compile(src, options).unwrap_or_else(|e| panic!("{what}: {e}"));
    let interp = observe_with(
        &compiled.program,
        machine.clone(),
        ExecEngine::Interp,
        "main",
        &[],
    )
    .unwrap_or_else(|e| panic!("{what} [interp]: {e}"));
    let vm = observe_with(&compiled.program, machine, ExecEngine::Vm, "main", &[])
        .unwrap_or_else(|e| panic!("{what} [vm]: {e}"));
    assert_eq!(interp.0, vm.0, "{what}: observation divergence");
    assert_eq!(interp.1, vm.1, "{what}: statistics divergence");
}

/// Every experiment corpus at every shipped pipeline, on the machines the
/// EXP tables use — the rows of `EXPERIMENTS.md` regenerate identically
/// under either engine.
#[test]
fn experiment_corpora_parity() {
    let sources: Vec<(&str, String)> = vec![
        ("exp1 copy n=100", copy_source(100)),
        ("exp1 copy n=1024", copy_source(1024)),
        ("exp2 backsolve n=100", backsolve_source(100)),
        ("exp2 backsolve n=1024", backsolve_source(1024)),
        ("exp3 daxpy n=100", daxpy_source(100)),
        ("exp3 daxpy n=1024", daxpy_source(1024)),
        ("exp3/9 daxpy corpus", corpus::DAXPY.to_string()),
        ("exp8 struct_matrix", corpus::STRUCT_MATRIX.to_string()),
        ("exp11 listwalk", corpus::LISTWALK.to_string()),
    ];
    let spread = Options {
        spread_lists: true,
        ..Options::parallel()
    };
    let configs: Vec<(&str, Options, MachineConfig)> = vec![
        ("O0 scalar", Options::o0(), MachineConfig::scalar()),
        ("O1 scalar", Options::o1(), MachineConfig::scalar()),
        ("O2 1p", Options::o2(), MachineConfig::optimized(1)),
        ("par 2p", Options::parallel(), MachineConfig::optimized(2)),
        ("par 4p", Options::parallel(), MachineConfig::optimized(4)),
        ("spread 4p", spread, MachineConfig::optimized(4)),
    ];
    for (name, src) in &sources {
        for (cname, options, machine) in &configs {
            assert_parity(src, options, machine.clone(), &format!("{name} @ {cname}"));
        }
    }
}

/// The EXP10 poll loop: the VM must re-read the volatile device register
/// every iteration, consuming the script exactly like the interpreter.
#[test]
fn volatile_poll_loop_parity() {
    for opts in [Options::o0(), Options::o1(), Options::o2()] {
        let c = titanc::compile(corpus::VOLATILE_POLL, &opts).expect("compiles");
        let mut results = Vec::new();
        for engine in [ExecEngine::Interp, ExecEngine::Vm] {
            let mut sim = Simulator::with_engine(&c.program, MachineConfig::default(), engine);
            sim.push_volatile_values(&[0, 0, 0, 7]);
            let r = sim.run("main", &[]).expect("terminates via device write");
            assert_eq!(r.value.unwrap().as_int(), 7, "[{engine}]");
            assert!(r.stats.loads >= 4, "[{engine}] every iteration re-reads");
            results.push(r.stats);
        }
        assert_eq!(results[0], results[1], "volatile statistics divergence");
    }
}

/// Both engines trap identically: same message for out-of-bounds access
/// and for the step limit.
#[test]
fn trap_parity() {
    let cases: &[(&str, &str, u64)] = &[
        (
            "oob",
            "int main(void) { int *p; p = (int *)0; return *p; }",
            200_000_000,
        ),
        (
            "oob high",
            "int main(void) { int *p; p = (int *)0x7fffffff; return *p; }",
            200_000_000,
        ),
        (
            "step limit",
            "int main(void) { for (;;); return 0; }",
            5_000,
        ),
    ];
    for (name, src, max_steps) in cases {
        let c = titanc::compile(src, &Options::o2()).expect("compiles");
        let cfg = MachineConfig {
            max_steps: *max_steps,
            ..MachineConfig::default()
        };
        let e1 = Simulator::with_engine(&c.program, cfg.clone(), ExecEngine::Interp)
            .run("main", &[])
            .expect_err("interp traps");
        let e2 = Simulator::with_engine(&c.program, cfg, ExecEngine::Vm)
            .run("main", &[])
            .expect_err("vm traps");
        assert_eq!(e1, e2, "{name}: engines disagree on the trap");
    }
}

/// 500 progen programs at `-O2`, both engines, full observation and
/// statistics equality — the broad random sweep behind the stress
/// harness's `--engine both` default.
#[test]
fn progen_corpus_parity() {
    let out_globals: &[(&str, ScalarType, u32)] = &[
        ("out_g", ScalarType::Int, progen::OUT_LEN as u32),
        ("out_f", ScalarType::Float, progen::OUT_LEN as u32),
    ];
    let mut checked = 0u32;
    for seed in 0..500u64 {
        let mut rng = progen::Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        let src = progen::program(&mut rng);
        let compiled = titanc::compile(&src, &Options::o2())
            .unwrap_or_else(|e| panic!("seed {seed}: front end rejected progen output: {e}"));
        let machine = MachineConfig::optimized(2);
        let interp = observe_with(
            &compiled.program,
            machine.clone(),
            ExecEngine::Interp,
            "main",
            out_globals,
        );
        let vm = observe_with(
            &compiled.program,
            machine,
            ExecEngine::Vm,
            "main",
            out_globals,
        );
        match (interp, vm) {
            (Ok(i), Ok(v)) => {
                assert_eq!(i.0, v.0, "seed {seed}: observation divergence\n{src}");
                assert_eq!(i.1, v.1, "seed {seed}: statistics divergence\n{src}");
                checked += 1;
            }
            (Err(ei), Err(ev)) => {
                assert_eq!(ei, ev, "seed {seed}: engines disagree on the error\n{src}");
                checked += 1;
            }
            (i, v) => panic!(
                "seed {seed}: one engine trapped, the other did not\n  \
                 interp: {i:?}\n  vm: {v:?}\n{src}"
            ),
        }
    }
    assert_eq!(checked, 500, "every seed must be checked");
}
