//! Property test for cone-scoped cache invalidation: over generated
//! multi-procedure sessions with inlining on, mutating exactly one
//! procedure must miss exactly that procedure and its inline-cone
//! consumers (the procedures whose cone contains it), and the warm-edit
//! compile must stay byte-identical to a from-scratch cold compile —
//! at `-j1` and `-j4` alike.

use std::path::PathBuf;

use titanc::{compile_session, OptReport, Options, SessionCompilation, SourceFile};
use titanc_analysis::CallGraph;
use titanc_bench::progen::{session_program, Rng};

const N_HELPERS: usize = 6;

fn cache_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/test-caches"))
        .join(format!("cone-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn il_text(sc: &SessionCompilation) -> String {
    sc.compilation
        .program
        .procs
        .iter()
        .map(titanc_il::pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

fn opt_report_json(sc: &SessionCompilation) -> String {
    OptReport::build_for(
        &sc.compilation.reports,
        &sc.compilation.trace,
        &sc.compilation.program.files,
    )
    .to_json()
    .to_string_compact()
}

/// The procedures whose inline cone contains `victim` — exactly the set
/// the session cache must recompile after an edit to `victim`.
fn cone_consumers(src: &str, victim: &str) -> Vec<String> {
    let prog = titanc_lower::compile_to_il(src).expect("corpus lowers");
    let vi = prog
        .procs
        .iter()
        .position(|p| p.name == victim)
        .expect("victim exists");
    let cones = CallGraph::build(&prog).inline_cones(&prog);
    prog.procs
        .iter()
        .enumerate()
        .filter(|(i, _)| cones[*i].contains(&vi))
        .map(|(_, p)| p.name.clone())
        .collect()
}

#[test]
fn one_proc_edits_invalidate_exactly_the_cone() {
    for seed in 1..=6u64 {
        for jobs in [1usize, 4] {
            let salts = vec![0i64; N_HELPERS];
            let base = session_program(&mut Rng::new(seed), N_HELPERS, &salts);

            let victim_ix = (seed as usize) % N_HELPERS;
            let victim = format!("h{}", victim_ix + 1);
            let mut edited_salts = salts.clone();
            edited_salts[victim_ix] = 1_000 + seed as i64;
            let edited = session_program(&mut Rng::new(seed), N_HELPERS, &edited_salts);
            assert_ne!(base, edited, "seed {seed}: the edit must change the text");

            let consumers = cone_consumers(&edited, &victim);
            assert!(
                consumers.contains(&victim) && consumers.contains(&"main".to_string()),
                "seed {seed}: consumers always include the victim and main: {consumers:?}"
            );

            let mut options = Options::o2();
            options.jobs = jobs;
            let dir = cache_dir(&format!("{seed}-{jobs}"));

            let cold = compile_session(
                &[SourceFile::new("gen.c", base.clone())],
                &options,
                Some(&dir),
            )
            .expect("cold compile");
            let total = cold.compilation.program.procs.len();
            assert_eq!(total, N_HELPERS + 1);
            assert_eq!(cold.stats.misses, total);

            let warm = compile_session(
                &[SourceFile::new("gen.c", edited.clone())],
                &options,
                Some(&dir),
            )
            .expect("warm-edit compile");
            assert_eq!(
                warm.stats.misses,
                consumers.len(),
                "seed {seed} -j{jobs}: only the cone consumers may miss: {consumers:?}"
            );
            assert_eq!(warm.stats.invalidated, consumers.len());
            assert_eq!(warm.stats.hits, total - consumers.len());

            let fresh = compile_session(&[SourceFile::new("gen.c", edited)], &options, None)
                .expect("reference compile");
            assert_eq!(
                il_text(&fresh),
                il_text(&warm),
                "seed {seed} -j{jobs}: warm-edit IL must match a cold compile"
            );
            assert_eq!(
                opt_report_json(&fresh),
                opt_report_json(&warm),
                "seed {seed} -j{jobs}: warm-edit opt report must match a cold compile"
            );
        }
    }
}

/// Mutating the last helper — generated calls only reach lower-index
/// helpers, so no helper calls it — must leave every sibling warm: its
/// only consumers are itself and `main` (whose cone spans the program).
#[test]
fn untouched_siblings_stay_warm() {
    let seed = 11u64;
    let salts = vec![0i64; N_HELPERS];
    let base = session_program(&mut Rng::new(seed), N_HELPERS, &salts);
    let mut edited_salts = salts.clone();
    edited_salts[N_HELPERS - 1] = 77;
    let edited = session_program(&mut Rng::new(seed), N_HELPERS, &edited_salts);

    let victim = format!("h{N_HELPERS}");
    let consumers = cone_consumers(&edited, &victim);
    assert_eq!(
        consumers,
        vec![victim, "main".to_string()],
        "nothing but main can call the last helper"
    );
    let options = Options::o2();
    let dir = cache_dir("siblings");
    compile_session(&[SourceFile::new("gen.c", base)], &options, Some(&dir)).expect("cold");
    let warm =
        compile_session(&[SourceFile::new("gen.c", edited)], &options, Some(&dir)).expect("warm");
    assert!(
        warm.stats.hits >= (N_HELPERS + 1) - consumers.len(),
        "procedures outside h1's consumer set must stay warm"
    );
    assert!(
        warm.stats.misses < N_HELPERS + 1,
        "an edit must never invalidate wholesale"
    );
}
