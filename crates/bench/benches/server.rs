//! The compile-server benchmark: per-request latency and aggregate
//! throughput against one long-lived in-process [`Server`], on the same
//! 8-procedure corpus the incremental bench uses.
//!
//! Asserts the server acceptance bar itself — a warm request skips the
//! pipeline and its response is byte-identical to the cold one — and
//! persists the figures to `BENCH_server.json` at the workspace root:
//! cold/warm request latency, warm requests per second across a
//! concurrent client burst, and the server's aggregate accounting.

use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

use titanc::server::{CompileRequest, CompileResponse, Reply, Server, ServerConfig};
use titanc::SourceFile;
use titanc_bench::harness::Bench;
use titanc_bench::multi_proc_source;
use titanc_il::json::{parse, FromJson, ToJson};

fn response(server: &Server, line: &str) -> CompileResponse {
    match server.handle_line(line) {
        Reply::Line(resp) => CompileResponse::from_json(&parse(&resp).unwrap()).unwrap(),
        Reply::Shutdown(ack) => panic!("unexpected shutdown: {ack}"),
    }
}

fn main() {
    let bench = Bench::from_env();
    let src = multi_proc_source(8, 30);
    let request = CompileRequest {
        id: 1,
        files: vec![SourceFile::new("gen.c", src)],
        parallelize: true,
        opt_report: "json".to_string(),
        ..CompileRequest::default()
    };
    let line = request.to_json().to_string_compact();

    // cold latency: a fresh server (fresh resident cache) per sample
    let cold = bench.stats("server/cold_request_8procs", || {
        let server = Server::new(&ServerConfig::default()).quiet();
        black_box(response(&server, &line).stdout.len())
    });

    // one long-lived server from here on — the daemon scenario
    let server = Server::new(&ServerConfig::default()).quiet();
    let cold_resp = response(&server, &line);
    assert_eq!(cold_resp.exit, 0, "{}", cold_resp.stderr);

    let warm = bench.stats("server/warm_request_8procs", || {
        black_box(response(&server, &line).stdout.len())
    });

    // acceptance: warm requests skip the pipeline and answer
    // byte-identically to the cold request
    let warm_resp = response(&server, &line);
    assert_eq!(warm_resp.stdout, cold_resp.stdout, "warm stdout diverged");
    assert!(
        warm_resp.stderr.contains("(fully warm)"),
        "warm request did not skip the pipeline:\n{}",
        warm_resp.stderr
    );

    // throughput: a burst of concurrent clients, all warm. Each thread
    // plays one client hammering the shared server; requests/sec is the
    // whole burst over wall-clock.
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let clients = host_cpus.clamp(2, 8);
    const REQUESTS_PER_CLIENT: usize = 25;
    let burst = bench.stats_timed("server/warm_burst", || {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..clients {
                let server = &server;
                let line = &line;
                s.spawn(move || {
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let resp = response(server, line);
                        assert_eq!(resp.exit, 0);
                    }
                });
            }
        });
        t0.elapsed()
    });
    let burst_requests = clients * REQUESTS_PER_CLIENT;
    let requests_per_sec = burst_requests as f64 / burst.min.as_secs_f64().max(1e-9);
    let requests_per_sec_median = burst_requests as f64 / burst.median.as_secs_f64().max(1e-9);
    println!(
        "bench server/requests_per_sec: {requests_per_sec:.0} \
         (median {requests_per_sec_median:.0}, {clients} clients)"
    );

    let totals = server.totals();
    assert_eq!(totals.protocol_errors, 0);
    assert!(totals.fully_warm > 0);

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \
         \"corpus\": {{\"procs\": 8, \"loops_per_proc\": 30}},\n  \
         \"request_ms_cold\": {:.3},\n  \
         \"request_ms_cold_median\": {:.3},\n  \
         \"request_ms_warm\": {:.3},\n  \
         \"request_ms_warm_median\": {:.3},\n  \
         \"burst_clients\": {clients},\n  \
         \"burst_requests\": {burst_requests},\n  \
         \"requests_per_sec\": {requests_per_sec:.1},\n  \
         \"requests_per_sec_median\": {requests_per_sec_median:.1},\n  \
         \"byte_identical\": true,\n  \
         \"totals\": {}\n}}\n",
        cold.min.as_secs_f64() * 1e3,
        cold.median.as_secs_f64() * 1e3,
        warm.min.as_secs_f64() * 1e3,
        warm.median.as_secs_f64() * 1e3,
        totals.to_json().to_string_compact(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("bench server: wrote {path}"),
        Err(e) => eprintln!("bench server: cannot write {path}: {e}"),
    }
}
