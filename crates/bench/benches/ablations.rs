//! Ablation benches: remove one design decision at a time and measure the
//! damage, quantifying the paper's claims that each pass is load-bearing.
//!
//! * **no while→DO conversion**: nothing downstream can even see a loop.
//! * **no induction-variable substitution**: pointer walks never become
//!   subscripts, so dependence analysis has nothing to test.
//! * **no inlining**: daxpy's argument aliasing blocks vectorization
//!   (§1 item 5, §9).
//! * **strip length**: the §9 listing strips at 32; sweep 8–2048.

use titanc::Options;
use titanc_bench::harness::Bench;
use titanc_bench::{copy_source, daxpy_source, run};
use titanc_titan::{MachineConfig, Simulator};

/// Compile with a custom subset of scalar passes, then vectorize.
fn compile_ablated(src: &str, whiledo: bool, ivsub: bool) -> titanc_il::Program {
    let mut prog = titanc_lower::compile_to_il(src).expect("compiles");
    titanc_inline::inline_program(&mut prog, &titanc_inline::InlineOptions::default());
    for p in &mut prog.procs {
        if whiledo {
            titanc_opt::convert_while_loops(p);
        }
        if ivsub {
            titanc_opt::induction_substitution(p);
        }
        titanc_opt::forward_substitute(p);
        titanc_opt::constant_propagation(p);
        titanc_opt::eliminate_dead_code(p);
        titanc_vector::vectorize(p, &titanc_vector::VectorOptions::default());
        titanc_vector::strength_reduce(p, titanc_deps::Aliasing::C);
        titanc_opt::eliminate_dead_code(p);
    }
    prog
}

fn cycles(prog: &titanc_il::Program) -> f64 {
    let mut sim = Simulator::new(prog, MachineConfig::optimized(1));
    sim.run("main", &[]).expect("runs").stats.cycles
}

fn pass_ablations(bench: &Bench) {
    let src = copy_source(1024);
    let full = cycles(&compile_ablated(&src, true, true));
    let no_ivsub = cycles(&compile_ablated(&src, true, false));
    let no_whiledo = cycles(&compile_ablated(&src, false, false));
    println!(
        "[ablation copy n=1024] full {full:.0}cy | -ivsub {no_ivsub:.0}cy ({:.1}x worse) | -whiledo {no_whiledo:.0}cy ({:.1}x worse)",
        no_ivsub / full,
        no_whiledo / full
    );
    assert!(
        no_ivsub > full * 2.0,
        "IVS is load-bearing for the copy kernel"
    );
    assert!(
        no_whiledo > full * 2.0,
        "conversion gates everything downstream"
    );

    bench.time("ablation_passes/full", || {
        cycles(&compile_ablated(&src, true, true))
    });
    bench.time("ablation_passes/no_ivsub", || {
        cycles(&compile_ablated(&src, true, false))
    });
    bench.time("ablation_passes/no_whiledo", || {
        cycles(&compile_ablated(&src, false, false))
    });
}

fn inline_ablation(bench: &Bench) {
    let src = daxpy_source(1024);
    let with = run(&src, &Options::o2(), MachineConfig::optimized(1));
    let without = run(
        &src,
        &Options {
            inline: false,
            ..Options::o2()
        },
        MachineConfig::optimized(1),
    );
    println!(
        "[ablation inline daxpy n=1024] inline {:.0}cy | no-inline {:.0}cy ({:.1}x worse: aliasing blocks vectorization)",
        with.cycles,
        without.cycles,
        without.cycles / with.cycles
    );
    assert!(without.cycles > with.cycles * 2.0);

    bench.time("ablation_inline/inline", || {
        run(&src, &Options::o2(), MachineConfig::optimized(1)).cycles
    });
    bench.time("ablation_inline/no_inline", || {
        run(
            &src,
            &Options {
                inline: false,
                ..Options::o2()
            },
            MachineConfig::optimized(1),
        )
        .cycles
    });
}

fn strip_length_sweep(bench: &Bench) {
    let src = daxpy_source(1024);
    for strip in [8i64, 16, 32, 64, 256, 2048] {
        let opts = Options {
            strip,
            ..Options::parallel()
        };
        let stats = run(&src, &opts, MachineConfig::optimized(2));
        println!(
            "[ablation strip={strip}] {:.0}cy on 2 procs ({:.2} MFLOPS)",
            stats.cycles,
            stats.mflops(16.0)
        );
        bench.time(&format!("ablation_strip/{strip}"), || {
            run(&src, &opts, MachineConfig::optimized(2)).cycles
        });
    }
}

fn main() {
    let bench = Bench::from_env();
    pass_ablations(&bench);
    inline_ablation(&bench);
    strip_length_sweep(&bench);
}
