//! Execution-throughput benchmark: the tree-walking interpreter vs the
//! register-bytecode VM over the experiment corpus and the largest
//! generated program, in simulated statements per second of wall-clock.
//!
//! Both engines produce identical observations and identical cycle
//! statistics (the differential suite proves it); this benchmark records
//! how much faster the VM reaches them and persists the figures to
//! `BENCH_execute.json` at the workspace root. Each sample times only
//! `Simulator::run` — building the 16 MB memory image is identical for
//! both engines and would otherwise mask the ratio on fast rows.
//!
//! The headline `aggregate` is the total-wall-clock ratio over the whole
//! corpus ("regenerating every row is N× faster"), which weights each
//! program by how long the interpreter actually spends on it; the
//! vector-heavy paper kernels dominate that time, which is the point of
//! the chunked-kernel backend. Per-program speedups and their geometric
//! mean are recorded alongside so the scalar-dispatch rows (bounded by
//! the shared cycle-accounting work) stay visible. The aggregate is
//! ratcheted at ≥5× in CI; the PR target of ≥10× is recorded in the JSON.

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};
use titanc::Options;
use titanc_bench::harness::Bench;
use titanc_bench::{corpus, progen};
use titanc_titan::{ExecEngine, ExecStats, MachineConfig, Simulator};

/// A daxpy driver that calls the kernel `reps` times so execution, not
/// call setup, dominates the measurement.
fn daxpy_repeated(n: usize, reps: usize) -> String {
    format!(
        r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}}
float a[{n}], b[{n}], c[{n}];
int main(void)
{{
    int r;
    for (r = 0; r < {reps}; r++)
        daxpy(a, b, c, 1.0, {n});
    return 0;
}}
"#
    )
}

/// The §5.3 pointer copy, repeated.
fn copy_repeated(n: usize, reps: usize) -> String {
    format!(
        r#"
float dst[{n}], src[{n}];
void cpy(void)
{{
    float *a, *b;
    int n;
    a = &dst[0];
    b = &src[0];
    n = {n};
#pragma safe
    while (n) {{
        *a++ = *b++;
        n--;
    }}
}}
int main(void)
{{
    int r;
    for (r = 0; r < {reps}; r++)
        cpy();
    return 0;
}}
"#
    )
}

/// The §6 backsolve-style first-order recurrence, repeated — this one
/// never vectorizes, so it measures pure scalar dispatch throughput.
fn backsolve_repeated(n: usize, reps: usize) -> String {
    let arr = n + 2;
    format!(
        r#"
float x[{arr}], y[{arr}], z[{arr}];
void solve(void)
{{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < {n}; i++)
        p[i] = z[i] * (y[i] - q[i]);
}}
int main(void)
{{
    int r;
    for (r = 0; r < {reps}; r++)
        solve();
    return 0;
}}
"#
    )
}

struct Case {
    name: &'static str,
    src: String,
    options: Options,
    machine: MachineConfig,
    /// Fresh-simulator runs summed per sample (for programs too small to
    /// carry source-level repetition).
    reps: usize,
}

struct ProgramResult {
    name: &'static str,
    steps: u64,
    interp_secs: f64,
    vm_secs: f64,
    speedup: f64,
}

/// Measures one compiled program under both engines. A sample builds a
/// fresh simulator per rep (untimed) and accumulates only the `run`
/// wall-clock; the VM's one-pass bytecode lowering happens inside the
/// timed region, so it is charged against the VM.
fn measure(bench: &Bench, case: &Case) -> ProgramResult {
    let compiled = titanc::compile(&case.src, &case.options).expect("bench program compiles");
    let run_once = |engine: ExecEngine| -> (ExecStats, Duration) {
        let mut sim = Simulator::with_engine(&compiled.program, case.machine.clone(), engine);
        let t0 = Instant::now();
        let stats = sim.run("main", &[]).expect("bench program runs").stats;
        (stats, t0.elapsed())
    };
    let interp_stats = run_once(ExecEngine::Interp).0;
    let vm_stats = run_once(ExecEngine::Vm).0;
    assert_eq!(interp_stats, vm_stats, "{}: engines must agree", case.name);

    let sample = |engine: ExecEngine| -> Duration {
        (0..case.reps).map(|_| black_box(run_once(engine).1)).sum()
    };
    let name = case.name;
    let t_interp = bench.stats_timed(&format!("execute/{name}/interp"), || {
        sample(ExecEngine::Interp)
    });
    let t_vm = bench.stats_timed(&format!("execute/{name}/vm"), || sample(ExecEngine::Vm));
    // min-over-min: external load only ever inflates samples
    let interp_secs = t_interp.min.as_secs_f64();
    let vm_secs = t_vm.min.as_secs_f64().max(1e-9);
    ProgramResult {
        name,
        steps: interp_stats.steps * case.reps as u64,
        interp_secs,
        vm_secs,
        speedup: interp_secs / vm_secs,
    }
}

fn main() {
    let bench = Bench::from_env();
    // 0x5EED0001 is the largest program in the first 400 seeds of the
    // stress generator's seed space (about 14k simulated statements)
    let progen_src = {
        let mut rng = progen::Rng::new(0x5EED_0001);
        progen::program(&mut rng)
    };
    let spread = Options {
        spread_lists: true,
        ..Options::parallel()
    };
    let cases = [
        Case {
            name: "daxpy_vector",
            src: daxpy_repeated(16384, 256),
            options: Options::o2(),
            machine: MachineConfig::optimized(1),
            reps: 1,
        },
        Case {
            name: "copy_vector",
            src: copy_repeated(65536, 64),
            options: Options::o2(),
            machine: MachineConfig::optimized(1),
            reps: 1,
        },
        Case {
            name: "daxpy_parallel",
            src: daxpy_repeated(16384, 64),
            options: Options::parallel(),
            machine: MachineConfig::optimized(2),
            reps: 1,
        },
        Case {
            name: "backsolve_scalar",
            src: backsolve_repeated(2048, 8),
            options: Options::o2(),
            machine: MachineConfig::optimized(1),
            reps: 1,
        },
        Case {
            name: "struct_matrix",
            src: corpus::STRUCT_MATRIX.to_string(),
            options: Options::o2(),
            machine: MachineConfig::optimized(1),
            reps: 10,
        },
        Case {
            name: "listwalk_spread",
            src: corpus::LISTWALK.to_string(),
            options: spread,
            machine: MachineConfig::optimized(4),
            reps: 10,
        },
        Case {
            name: "progen_0x5eed0001",
            src: progen_src,
            options: Options::o2(),
            machine: MachineConfig::optimized(2),
            reps: 10,
        },
    ];

    let results: Vec<ProgramResult> = cases.iter().map(|c| measure(&bench, c)).collect();

    let mut rows = String::new();
    for r in &results {
        let interp_sps = r.steps as f64 / r.interp_secs.max(1e-9);
        let vm_sps = r.steps as f64 / r.vm_secs;
        println!(
            "bench execute/{}: {:.2}x vm-over-interp ({:.2}M vs {:.2}M stmts/sec)",
            r.name,
            r.speedup,
            vm_sps / 1e6,
            interp_sps / 1e6,
        );
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"steps\": {}, \
             \"interp_ms\": {:.3}, \"vm_ms\": {:.3}, \
             \"interp_stmts_per_sec\": {:.0}, \"vm_stmts_per_sec\": {:.0}, \
             \"speedup\": {:.3}}},\n",
            r.name,
            r.steps,
            r.interp_secs * 1e3,
            r.vm_secs * 1e3,
            interp_sps,
            vm_sps,
            r.speedup,
        ));
    }
    rows.pop();
    rows.pop(); // trailing ",\n"

    let interp_total: f64 = results.iter().map(|r| r.interp_secs).sum();
    let vm_total: f64 = results.iter().map(|r| r.vm_secs).sum();
    let aggregate = interp_total / vm_total.max(1e-9);
    let geomean =
        (results.iter().map(|r| r.speedup.ln()).sum::<f64>() / results.len().max(1) as f64).exp();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "bench execute/aggregate: {aggregate:.2}x vm-over-interp \
         ({:.1}ms vs {:.1}ms corpus wall-clock), geomean {geomean:.2}x",
        vm_total * 1e3,
        interp_total * 1e3,
    );
    assert!(
        aggregate >= 5.0,
        "VM throughput regressed below the 5x ratchet: {aggregate:.2}x aggregate over interp"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \
         \"aggregate_speedup_vm_over_interp\": {aggregate:.3},\n  \
         \"geomean_speedup_vm_over_interp\": {geomean:.3},\n  \
         \"interp_total_ms\": {:.3},\n  \"vm_total_ms\": {:.3},\n  \
         \"ratchet\": 5.0,\n  \"target\": 10.0,\n  \"programs\": [\n{rows}\n  ]\n}}\n",
        interp_total * 1e3,
        vm_total * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_execute.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("bench execute: wrote {path}"),
        Err(e) => eprintln!("bench execute: cannot write {path}: {e}"),
    }
}
