//! The incremental-session benchmark: cold compile vs fully warm
//! rebuild through the persistent cache, on a many-procedure corpus.
//!
//! Guards the PR 5 acceptance bar and persists the figures to
//! `BENCH_incremental.json` at the workspace root:
//!
//! * the warm rebuild executes **zero** optimization passes,
//! * the warm optimized IL is byte-identical to the cold run's,
//! * the warm rebuild is at least 2× faster than the cold compile,
//! * editing one procedure of the call-graph corpus — inlining on —
//!   invalidates only that procedure's inline-cone consumers
//!   (`procs_invalidated` ≤ cone size < N), stays byte-identical to a
//!   from-scratch compile of the edited source, and its warm-edit
//!   latency is recorded alongside the cold/warm figures.

use std::hint::black_box;
use std::io::Write;
use std::path::PathBuf;

use titanc::{compile_session, Options, SourceFile};
use titanc_analysis::CallGraph;
use titanc_bench::harness::Bench;
use titanc_bench::{multi_proc_call_source, multi_proc_source};

fn il_text(program: &titanc_il::Program) -> String {
    program
        .procs
        .iter()
        .map(titanc_il::pretty_proc)
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let bench = Bench::from_env();
    let src = multi_proc_source(8, 30);
    let files = [SourceFile::new("gen.c", src)];
    let options = Options::parallel();

    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench-cache"
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // one priming run establishes the baseline artifacts and the
    // cold-run reference output
    let cold_ref = compile_session(&files, &options, Some(&dir)).expect("cold compile");
    assert_eq!(
        cold_ref.stats.hits, 0,
        "the priming run must start from an empty cache"
    );
    let cold_il = il_text(&cold_ref.compilation.program);

    // cold: every sample clears the cache first (the clear is inside the
    // timed closure, but it is a directory removal against megabytes of
    // optimization — it biases *against* the speedup claim, not for it)
    let cold = bench.stats("incremental/cold_8procs", || {
        let _ = std::fs::remove_dir_all(&dir);
        black_box(
            compile_session(&files, &options, Some(&dir))
                .expect("cold compile")
                .compilation
                .program
                .len(),
        )
    });

    // prime once more, then measure fully warm rebuilds
    let primed = compile_session(&files, &options, Some(&dir)).expect("prime compile");
    assert!(primed.stats.full_warm || primed.stats.misses > 0);
    let warm = bench.stats("incremental/warm_8procs", || {
        black_box(
            compile_session(&files, &options, Some(&dir))
                .expect("warm compile")
                .compilation
                .program
                .len(),
        )
    });

    // acceptance: zero passes on the warm run, byte-identical output
    let check = compile_session(&files, &options, Some(&dir)).expect("warm compile");
    assert!(check.stats.full_warm, "rebuild must be fully warm");
    assert_eq!(
        check.stats.passes_executed, 0,
        "a fully warm rebuild must execute zero optimization passes"
    );
    assert_eq!(
        il_text(&check.compilation.program),
        cold_il,
        "warm IL must be byte-identical to the cold run's"
    );

    let speedup = cold.min.as_secs_f64() / warm.min.as_secs_f64().max(1e-9);
    let speedup_median = cold.median.as_secs_f64() / warm.median.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "warm rebuild must be at least 2x faster than cold (got {speedup:.2}x)"
    );
    println!(
        "bench incremental/speedup_warm_over_cold: {speedup:.2}x (median {speedup_median:.2}x)"
    );

    // --- edit 1 of N, inlining on -----------------------------------
    // the call-graph corpus: main calls every mpK, so editing mpK must
    // invalidate exactly {mpK, main} — its inline-cone consumers — and
    // leave the other N-1 procedures warm
    const NPROCS: usize = 8;
    let edit_dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench-cache-edit"
    ));
    let _ = std::fs::remove_dir_all(&edit_dir);
    let gen_src = |salt: i64| {
        let mut salts = [0i64; NPROCS];
        salts[NPROCS - 1] = salt;
        multi_proc_call_source(NPROCS, 30, &salts)
    };
    compile_session(
        &[SourceFile::new("gen.c", gen_src(0))],
        &options,
        Some(&edit_dir),
    )
    .expect("edit-corpus populate");

    // the expected invalidation set, straight from the parsed call graph
    let parsed = titanc_lower::compile_to_il(&gen_src(0)).expect("corpus lowers");
    let victim = parsed
        .procs
        .iter()
        .position(|p| p.name == format!("mp{}", NPROCS - 1))
        .expect("victim exists");
    let cones = CallGraph::build(&parsed).inline_cones(&parsed);
    let cone_consumers = cones.iter().filter(|c| c.contains(&victim)).count();

    // every timed sample bumps the salt, so each compile is a genuine
    // one-procedure edit against the previous sample's warm cache (the
    // source regeneration rides inside the timer; it is string
    // formatting against megabytes of optimization, biasing against
    // the incremental claim, not for it)
    let mut salt = 0i64;
    let warm_edit = bench.stats("incremental/warm_edit_1_of_8", || {
        salt += 1;
        black_box(
            compile_session(
                &[SourceFile::new("gen.c", gen_src(salt))],
                &options,
                Some(&edit_dir),
            )
            .expect("warm-edit compile")
            .compilation
            .program
            .len(),
        )
    });

    // acceptance: one more edit, checked for scope and byte-identity
    salt += 1;
    let edited_files = [SourceFile::new("gen.c", gen_src(salt))];
    let edit_check = compile_session(&edited_files, &options, Some(&edit_dir)).expect("edit check");
    let procs_total = edit_check.compilation.program.procs.len();
    let procs_invalidated = edit_check.stats.misses;
    assert!(
        procs_invalidated <= cone_consumers,
        "editing one procedure may invalidate at most its cone \
         ({procs_invalidated} misses > {cone_consumers} consumers)"
    );
    assert!(
        procs_invalidated < procs_total,
        "a one-procedure edit must never invalidate wholesale"
    );
    let edit_ref = compile_session(&edited_files, &options, None).expect("edit reference");
    assert_eq!(
        il_text(&edit_check.compilation.program),
        il_text(&edit_ref.compilation.program),
        "warm-edit IL must be byte-identical to a from-scratch compile"
    );
    println!(
        "bench incremental/edit_1_of_{NPROCS}: {procs_invalidated} of {procs_total} \
         procedure(s) invalidated (cone size {cone_consumers})"
    );

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \
         \"corpus\": {{\"procs\": 8, \"loops_per_proc\": 30}},\n  \
         \"compile_ms_cold\": {:.3},\n  \
         \"compile_ms_warm\": {:.3},\n  \
         \"compile_ms_cold_median\": {:.3},\n  \
         \"compile_ms_warm_median\": {:.3},\n  \
         \"speedup_warm_over_cold\": {speedup:.3},\n  \
         \"speedup_warm_over_cold_median\": {speedup_median:.3},\n  \
         \"warm_passes_executed\": {},\n  \
         \"warm_hits\": {},\n  \
         \"warm_full\": {},\n  \
         \"byte_identical\": true,\n  \
         \"compile_ms_warm_edit\": {:.3},\n  \
         \"compile_ms_warm_edit_median\": {:.3},\n  \
         \"edit_procs_total\": {procs_total},\n  \
         \"edit_procs_invalidated\": {procs_invalidated},\n  \
         \"edit_cone_consumers\": {cone_consumers},\n  \
         \"edit_byte_identical\": true\n}}\n",
        cold.min.as_secs_f64() * 1e3,
        warm.min.as_secs_f64() * 1e3,
        cold.median.as_secs_f64() * 1e3,
        warm.median.as_secs_f64() * 1e3,
        check.stats.passes_executed,
        check.stats.hits,
        check.stats.full_warm,
        warm_edit.min.as_secs_f64() * 1e3,
        warm_edit.median.as_secs_f64() * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("bench incremental: wrote {path}"),
        Err(e) => eprintln!("bench incremental: cannot write {path}: {e}"),
    }
}
