//! Criterion wrappers over the paper's performance results.
//!
//! Each group regenerates one evaluation number from the paper by running
//! the compiled kernel on the Titan simulator. The wall-clock numbers
//! Criterion reports are host simulation time; the *reproduced results*
//! (cycles, MFLOPS, speedups) are printed once per group so
//! `cargo bench` output doubles as the experiment log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use titanc::Options;
use titanc_bench::{backsolve_source, copy_source, daxpy_source, mflops, run};
use titanc_titan::MachineConfig;

/// EXP1: the §5.3 pointer-walk copy, scalar vs vectorized.
fn exp1_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp1_copy");
    for n in [100usize, 1024] {
        let src = copy_source(n);
        let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
        let vector = run(&src, &Options::o2(), MachineConfig::optimized(1));
        println!(
            "[exp1 n={n}] scalar {:.0}cy, vector {:.0}cy, speedup {:.2}x",
            scalar.cycles,
            vector.cycles,
            scalar.cycles / vector.cycles
        );
        group.bench_with_input(BenchmarkId::new("scalar", n), &src, |b, src| {
            b.iter(|| run(black_box(src), &Options::o1(), MachineConfig::scalar()))
        });
        group.bench_with_input(BenchmarkId::new("vector", n), &src, |b, src| {
            b.iter(|| run(black_box(src), &Options::o2(), MachineConfig::optimized(1)))
        });
    }
    group.finish();
}

/// EXP2: backsolve, 0.5 → 1.9 MFLOPS (§6).
fn exp2_backsolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_backsolve");
    let src = backsolve_source(1024);
    let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
    let opt = run(&src, &Options::o2(), MachineConfig::optimized(1));
    println!(
        "[exp2] scalar {:.2} MFLOPS, dependence-driven {:.2} MFLOPS (paper: 0.5 -> 1.9)",
        mflops(&scalar),
        mflops(&opt)
    );
    group.bench_function("scalar_only", |b| {
        b.iter(|| run(black_box(&src), &Options::o1(), MachineConfig::scalar()))
    });
    group.bench_function("dependence_driven", |b| {
        b.iter(|| run(black_box(&src), &Options::o2(), MachineConfig::optimized(1)))
    });
    group.finish();
}

/// EXP3: daxpy, 12× on two processors (§9).
fn exp3_daxpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_daxpy");
    let src = daxpy_source(100);
    let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
    for procs in [1u32, 2, 4] {
        let par = run(&src, &Options::parallel(), MachineConfig::optimized(procs));
        println!(
            "[exp3 procs={procs}] {:.0}cy vs scalar {:.0}cy: speedup {:.2}x (paper: 12x at 2 procs)",
            par.cycles,
            scalar.cycles,
            scalar.cycles / par.cycles
        );
        group.bench_with_input(BenchmarkId::new("parallel", procs), &procs, |b, &p| {
            b.iter(|| run(black_box(&src), &Options::parallel(), MachineConfig::optimized(p)))
        });
    }
    group.bench_function("scalar", |b| {
        b.iter(|| run(black_box(&src), &Options::o1(), MachineConfig::scalar()))
    });
    group.finish();
}

/// EXP7: instruction-scheduling overlap on/off (§6 item 2).
fn exp7_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp7_overlap");
    let src = backsolve_source(1024);
    let off = run(&src, &Options::o1(), MachineConfig::scalar());
    let on = run(
        &src,
        &Options::o1(),
        MachineConfig {
            overlap: true,
            ..MachineConfig::scalar()
        },
    );
    println!(
        "[exp7] overlap off {:.0}cy, on {:.0}cy: {:.2}x",
        off.cycles,
        on.cycles,
        off.cycles / on.cycles
    );
    group.bench_function("overlap_off", |b| {
        b.iter(|| run(black_box(&src), &Options::o1(), MachineConfig::scalar()))
    });
    group.bench_function("overlap_on", |b| {
        b.iter(|| {
            run(
                black_box(&src),
                &Options::o1(),
                MachineConfig {
                    overlap: true,
                    ..MachineConfig::scalar()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = exp1_copy, exp2_backsolve, exp3_daxpy, exp7_overlap
);
criterion_main!(benches);
