//! Timing wrappers over the paper's performance results.
//!
//! Each group regenerates one evaluation number from the paper by running
//! the compiled kernel on the Titan simulator. The wall-clock numbers the
//! harness reports are host simulation time; the *reproduced results*
//! (cycles, MFLOPS, speedups) are printed once per group so
//! `cargo bench` output doubles as the experiment log.

use titanc::Options;
use titanc_bench::harness::Bench;
use titanc_bench::{backsolve_source, copy_source, daxpy_source, mflops, run};
use titanc_titan::MachineConfig;

/// EXP1: the §5.3 pointer-walk copy, scalar vs vectorized.
fn exp1_copy(bench: &Bench) {
    for n in [100usize, 1024] {
        let src = copy_source(n);
        let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
        let vector = run(&src, &Options::o2(), MachineConfig::optimized(1));
        println!(
            "[exp1 n={n}] scalar {:.0}cy, vector {:.0}cy, speedup {:.2}x",
            scalar.cycles,
            vector.cycles,
            scalar.cycles / vector.cycles
        );
        bench.time(&format!("exp1_copy/scalar/{n}"), || {
            run(&src, &Options::o1(), MachineConfig::scalar())
        });
        bench.time(&format!("exp1_copy/vector/{n}"), || {
            run(&src, &Options::o2(), MachineConfig::optimized(1))
        });
    }
}

/// EXP2: backsolve, 0.5 → 1.9 MFLOPS (§6).
fn exp2_backsolve(bench: &Bench) {
    let src = backsolve_source(1024);
    let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
    let opt = run(&src, &Options::o2(), MachineConfig::optimized(1));
    println!(
        "[exp2] scalar {:.2} MFLOPS, dependence-driven {:.2} MFLOPS (paper: 0.5 -> 1.9)",
        mflops(&scalar),
        mflops(&opt)
    );
    bench.time("exp2_backsolve/scalar_only", || {
        run(&src, &Options::o1(), MachineConfig::scalar())
    });
    bench.time("exp2_backsolve/dependence_driven", || {
        run(&src, &Options::o2(), MachineConfig::optimized(1))
    });
}

/// EXP3: daxpy, 12× on two processors (§9).
fn exp3_daxpy(bench: &Bench) {
    let src = daxpy_source(100);
    let scalar = run(&src, &Options::o1(), MachineConfig::scalar());
    for procs in [1u32, 2, 4] {
        let par = run(&src, &Options::parallel(), MachineConfig::optimized(procs));
        println!(
            "[exp3 procs={procs}] {:.0}cy vs scalar {:.0}cy: speedup {:.2}x (paper: 12x at 2 procs)",
            par.cycles,
            scalar.cycles,
            scalar.cycles / par.cycles
        );
        bench.time(&format!("exp3_daxpy/parallel/{procs}"), || {
            run(&src, &Options::parallel(), MachineConfig::optimized(procs))
        });
    }
    bench.time("exp3_daxpy/scalar", || {
        run(&src, &Options::o1(), MachineConfig::scalar())
    });
}

/// EXP7: instruction-scheduling overlap on/off (§6 item 2).
fn exp7_overlap(bench: &Bench) {
    let src = backsolve_source(1024);
    let off = run(&src, &Options::o1(), MachineConfig::scalar());
    let on = run(
        &src,
        &Options::o1(),
        MachineConfig {
            overlap: true,
            ..MachineConfig::scalar()
        },
    );
    println!(
        "[exp7] overlap off {:.0}cy, on {:.0}cy: {:.2}x",
        off.cycles,
        on.cycles,
        off.cycles / on.cycles
    );
    bench.time("exp7_overlap/overlap_off", || {
        run(&src, &Options::o1(), MachineConfig::scalar())
    });
    bench.time("exp7_overlap/overlap_on", || {
        run(
            &src,
            &Options::o1(),
            MachineConfig {
                overlap: true,
                ..MachineConfig::scalar()
            },
        )
    });
}

fn main() {
    let bench = Bench::from_env();
    exp1_copy(&bench);
    exp2_backsolve(&bench);
    exp3_daxpy(&bench);
    exp7_overlap(&bench);
}
