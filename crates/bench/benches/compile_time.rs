//! Compile-time benchmarks: the costs the paper reasons about when
//! rejecting the "theoretically elegant" algorithms.
//!
//! * EXP4: constant propagation with the §8 heuristic vs the rejected
//!   CFG-rebuild strategy.
//! * EXP6: induction-variable substitution as the blocked-chain count
//!   grows (worst case n passes, average ~1).
//! * Front-end throughput on the corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use titanc_bench::{corpus, ivsub_chain_source};
use titanc_inline::{inline_program, InlineOptions};
use titanc_lower::compile_to_il;
use titanc_opt::{convert_while_loops, induction_substitution};

fn exp4_constprop_strategies(c: &mut Criterion) {
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--) *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void) { daxpy(a, b, c, 0.0, 100); return 0; }
"#;
    let inlined = {
        let mut prog = compile_to_il(src).unwrap();
        inline_program(&mut prog, &InlineOptions::default());
        prog.proc_by_name("main").unwrap().clone()
    };
    let mut group = c.benchmark_group("exp4_constprop");
    group.bench_function("heuristic_8", |b| {
        b.iter(|| {
            let mut p = inlined.clone();
            titanc_opt::constant_propagation(&mut p);
            black_box(p.len())
        })
    });
    group.bench_function("cfg_rebuild_baseline", |b| {
        b.iter(|| {
            let mut p = inlined.clone();
            loop {
                let before = p.len();
                titanc_opt::constant_propagation_no_unreachable(&mut p);
                titanc_opt::constant_propagation(&mut p);
                titanc_opt::eliminate_unreachable_cfg(&mut p);
                if p.len() == before {
                    break;
                }
            }
            black_box(p.len())
        })
    });
    group.finish();
}

fn exp6_ivsub_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp6_ivsub");
    for k in [1usize, 8, 32] {
        let src = ivsub_chain_source(k, 64);
        let prepared = {
            let prog = compile_to_il(&src).unwrap();
            let mut p = prog.procs[0].clone();
            convert_while_loops(&mut p);
            p
        };
        group.bench_with_input(BenchmarkId::new("chains", k), &prepared, |b, p| {
            b.iter(|| {
                let mut q = p.clone();
                black_box(induction_substitution(&mut q))
            })
        });
    }
    group.finish();
}

fn frontend_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    for (name, src) in [
        ("daxpy", corpus::DAXPY),
        ("struct_matrix", corpus::STRUCT_MATRIX),
        ("blaslib", corpus::BLASLIB),
    ] {
        group.bench_function(BenchmarkId::new("parse_lower", name), |b| {
            b.iter(|| black_box(compile_to_il(black_box(src)).unwrap().len()))
        });
        group.bench_function(BenchmarkId::new("full_o2", name), |b| {
            b.iter(|| {
                black_box(
                    titanc::compile(black_box(src), &titanc::Options::o2())
                        .unwrap()
                        .program
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = exp4_constprop_strategies, exp6_ivsub_scaling, frontend_throughput
);
criterion_main!(benches);
