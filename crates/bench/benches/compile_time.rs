//! Compile-time benchmarks: the costs the paper reasons about when
//! rejecting the "theoretically elegant" algorithms.
//!
//! * EXP4: constant propagation with the §8 heuristic vs the rejected
//!   CFG-rebuild strategy.
//! * EXP6: induction-variable substitution as the blocked-chain count
//!   grows (worst case n passes, average ~1).
//! * Front-end throughput on the corpus.

use std::hint::black_box;
use std::io::Write;
use titanc_bench::harness::Bench;
use titanc_bench::{corpus, ivsub_chain_source, multi_proc_source};
use titanc_inline::{inline_program, InlineOptions};
use titanc_lower::compile_to_il;
use titanc_opt::{convert_while_loops, induction_substitution};

fn exp4_constprop_strategies(bench: &Bench) {
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--) *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void) { daxpy(a, b, c, 0.0, 100); return 0; }
"#;
    let inlined = {
        let mut prog = compile_to_il(src).unwrap();
        inline_program(&mut prog, &InlineOptions::default());
        prog.proc_by_name("main").unwrap().clone()
    };
    bench.time("exp4_constprop/heuristic_8", || {
        let mut p = inlined.clone();
        titanc_opt::constant_propagation(&mut p);
        black_box(p.len())
    });
    bench.time("exp4_constprop/cfg_rebuild_baseline", || {
        let mut p = inlined.clone();
        loop {
            let before = p.len();
            titanc_opt::constant_propagation_no_unreachable(&mut p);
            titanc_opt::constant_propagation(&mut p);
            titanc_opt::eliminate_unreachable_cfg(&mut p);
            if p.len() == before {
                break;
            }
        }
        black_box(p.len())
    });
}

fn exp6_ivsub_scaling(bench: &Bench) {
    for k in [1usize, 8, 32] {
        let src = ivsub_chain_source(k, 64);
        let prepared = {
            let prog = compile_to_il(&src).unwrap();
            let mut p = prog.procs[0].clone();
            convert_while_loops(&mut p);
            p
        };
        bench.time(&format!("exp6_ivsub/chains/{k}"), || {
            let mut q = prepared.clone();
            black_box(induction_substitution(&mut q))
        });
    }
}

fn frontend_throughput(bench: &Bench) {
    for (name, src) in [
        ("daxpy", corpus::DAXPY),
        ("struct_matrix", corpus::STRUCT_MATRIX),
        ("blaslib", corpus::BLASLIB),
    ] {
        bench.time(&format!("frontend/parse_lower/{name}"), || {
            black_box(compile_to_il(black_box(src)).unwrap().len())
        });
        bench.time(&format!("frontend/full_o2/{name}"), || {
            black_box(
                titanc::compile(black_box(src), &titanc::Options::o2())
                    .unwrap()
                    .program
                    .len(),
            )
        });
    }
}

/// The parallel-pipeline benchmark: wall-clock for `--jobs 1` vs
/// `--jobs 4` on a many-procedure corpus, plus the analysis-cache effect
/// on `UseDef::build` invocations. Persists both figures to
/// `BENCH_compile.json` at the workspace root.
fn parallel_pipeline(bench: &Bench) {
    let src = multi_proc_source(8, 30);
    let opts = |jobs: usize| titanc::Options {
        jobs,
        ..titanc::Options::parallel()
    };
    let t1 = bench.stats("parallel/compile_8procs_jobs1", || {
        black_box(
            titanc::compile(black_box(&src), &opts(1))
                .unwrap()
                .program
                .len(),
        )
    });
    let t4 = bench.stats("parallel/compile_8procs_jobs4", || {
        black_box(
            titanc::compile(black_box(&src), &opts(4))
                .unwrap()
                .program
                .len(),
        )
    });
    // min-over-min: external load only inflates samples, so the fastest
    // pair is the fairest estimate of the pipeline's own scaling
    let speedup = t1.min.as_secs_f64() / t4.min.as_secs_f64().max(1e-9);
    let speedup_median = t1.median.as_secs_f64() / t4.median.as_secs_f64().max(1e-9);

    // cache effect: every use-def request the cache answered from a
    // repaired/rekeyed artifact is a `UseDef::build` an uncached pipeline
    // would have run
    let c = titanc::compile(&src, &opts(1)).unwrap();
    let totals = c.trace.cache_totals();
    let requests = totals.usedef_hits + totals.usedef_builds;
    let reduction = totals.usedef_hits as f64 / requests.max(1) as f64;

    // counters: the vectorization rate is tracked alongside the timings
    // and guarded — a rate collapse is an optimizer regression that no
    // wall-clock figure would catch
    let mut counters = titanc::Counters::from_run(&c.reports, &c.trace);
    counters.record_program(&c.program);
    let vectorized = counters.get("loops.vectorized");
    let parallelized = counters.get("loops.parallelized");
    let scalar = counters.get("loops.scalar");
    let accounted = vectorized + parallelized + scalar;
    let vec_rate = vectorized as f64 / accounted.max(1) as f64;
    assert!(accounted > 0, "no loops accounted for in the bench corpus");
    assert!(
        vec_rate >= 0.5,
        "vectorization rate collapsed: {vectorized} of {accounted} loops \
         ({vec_rate:.2}) — the bench corpus is built to vectorize"
    );
    println!(
        "bench parallel/vectorization_rate: {vec_rate:.3} ({vectorized} of {accounted} loops)"
    );
    println!(
        "bench parallel/usedef_builds: {} with cache, {requests} without ({:.0}% fewer)",
        totals.usedef_builds,
        100.0 * reduction
    );
    println!(
        "bench parallel/speedup_jobs4_over_jobs1: {speedup:.2}x (median {speedup_median:.2}x)"
    );

    // speedup ratchet: with the arena IL, -j4 must beat -j1 by at least
    // 1.19x on any machine that can actually run 4 workers; on smaller
    // hosts the figure is recorded but not enforced (the workers would
    // just time-slice one core)
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            speedup >= 1.19,
            "parallel-pipeline speedup regressed below the ratchet: \
             {speedup:.2}x < 1.19x on a {cores}-CPU host"
        );
    } else {
        println!("bench parallel: ratchet skipped: {cores} cpus (< 4)");
    }

    let json = format!(
        "{{\n  \"host_cpus\": {cores},\n  \
         \"corpus\": {{\"procs\": 8, \"loops_per_proc\": 30}},\n  \
         \"compile_ms_jobs1\": {:.3},\n  \
         \"compile_ms_jobs4\": {:.3},\n  \
         \"compile_ms_jobs1_median\": {:.3},\n  \
         \"compile_ms_jobs4_median\": {:.3},\n  \
         \"speedup_jobs4_over_jobs1\": {speedup:.3},\n  \
         \"speedup_jobs4_over_jobs1_median\": {speedup_median:.3},\n  \
         \"usedef_builds_with_cache\": {},\n  \
         \"usedef_builds_without_cache\": {requests},\n  \
         \"usedef_build_reduction\": {reduction:.3},\n  \
         \"vectorization_rate\": {vec_rate:.3},\n  \
         \"counters\": {},\n  \
         \"cache\": {{\"hits\": {}, \"builds\": {}, \"repairs\": {}, \"invalidations\": {}}}\n}}\n",
        t1.min.as_secs_f64() * 1e3,
        t4.min.as_secs_f64() * 1e3,
        t1.median.as_secs_f64() * 1e3,
        t4.median.as_secs_f64() * 1e3,
        totals.usedef_builds,
        counters.to_json().to_string_compact(),
        totals.hits(),
        totals.builds(),
        totals.repairs,
        totals.invalidations,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("bench parallel: wrote {path}"),
        Err(e) => eprintln!("bench parallel: cannot write {path}: {e}"),
    }
}

fn main() {
    let bench = Bench::from_env();
    // first, on a fresh heap: the jobs comparison is the most sensitive to
    // allocator state left behind by other benchmarks
    parallel_pipeline(&bench);
    exp4_constprop_strategies(&bench);
    exp6_ivsub_scaling(&bench);
    frontend_throughput(&bench);
}
