//! Compile-time benchmarks: the costs the paper reasons about when
//! rejecting the "theoretically elegant" algorithms.
//!
//! * EXP4: constant propagation with the §8 heuristic vs the rejected
//!   CFG-rebuild strategy.
//! * EXP6: induction-variable substitution as the blocked-chain count
//!   grows (worst case n passes, average ~1).
//! * Front-end throughput on the corpus.

use std::hint::black_box;
use titanc_bench::harness::Bench;
use titanc_bench::{corpus, ivsub_chain_source};
use titanc_inline::{inline_program, InlineOptions};
use titanc_lower::compile_to_il;
use titanc_opt::{convert_while_loops, induction_substitution};

fn exp4_constprop_strategies(bench: &Bench) {
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--) *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void) { daxpy(a, b, c, 0.0, 100); return 0; }
"#;
    let inlined = {
        let mut prog = compile_to_il(src).unwrap();
        inline_program(&mut prog, &InlineOptions::default());
        prog.proc_by_name("main").unwrap().clone()
    };
    bench.time("exp4_constprop/heuristic_8", || {
        let mut p = inlined.clone();
        titanc_opt::constant_propagation(&mut p);
        black_box(p.len())
    });
    bench.time("exp4_constprop/cfg_rebuild_baseline", || {
        let mut p = inlined.clone();
        loop {
            let before = p.len();
            titanc_opt::constant_propagation_no_unreachable(&mut p);
            titanc_opt::constant_propagation(&mut p);
            titanc_opt::eliminate_unreachable_cfg(&mut p);
            if p.len() == before {
                break;
            }
        }
        black_box(p.len())
    });
}

fn exp6_ivsub_scaling(bench: &Bench) {
    for k in [1usize, 8, 32] {
        let src = ivsub_chain_source(k, 64);
        let prepared = {
            let prog = compile_to_il(&src).unwrap();
            let mut p = prog.procs[0].clone();
            convert_while_loops(&mut p);
            p
        };
        bench.time(&format!("exp6_ivsub/chains/{k}"), || {
            let mut q = prepared.clone();
            black_box(induction_substitution(&mut q))
        });
    }
}

fn frontend_throughput(bench: &Bench) {
    for (name, src) in [
        ("daxpy", corpus::DAXPY),
        ("struct_matrix", corpus::STRUCT_MATRIX),
        ("blaslib", corpus::BLASLIB),
    ] {
        bench.time(&format!("frontend/parse_lower/{name}"), || {
            black_box(compile_to_il(black_box(src)).unwrap().len())
        });
        bench.time(&format!("frontend/full_o2/{name}"), || {
            black_box(
                titanc::compile(black_box(src), &titanc::Options::o2())
                    .unwrap()
                    .program
                    .len(),
            )
        });
    }
}

fn main() {
    let bench = Bench::from_env();
    exp4_constprop_strategies(&bench);
    exp6_ivsub_scaling(&bench);
    frontend_throughput(&bench);
}
