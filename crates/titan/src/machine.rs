//! The Titan machine model (§2 of the paper).
//!
//! One Titan processor is a high-speed RISC integer unit plus a highly
//! pipelined floating-point unit that executes all scalar FP and all vector
//! instructions, fed from a very large vector register file (8192 words,
//! addressable at any offset/length/stride). Up to four processors share
//! memory over a high-speed bus. The simulator charges cycle costs per
//! operation according to this table; with [`MachineConfig::overlap`]
//! enabled, integer, floating and memory work in one straight-line region
//! overlap (the §6 instruction-scheduling model), otherwise costs are
//! summed.

/// Which backend executes the IL.
///
/// Both engines implement identical semantics and identical cycle-cost
/// accounting (the cost model is side-band bookkeeping, independent of how
/// statements are dispatched), so every measured number is byte-for-byte
/// the same; the VM is simply faster in wall-clock terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecEngine {
    /// The tree-walking reference interpreter (`interp.rs`).
    #[default]
    Interp,
    /// The compiled register-bytecode VM (`bytecode.rs` + `vm.rs`).
    Vm,
}

impl ExecEngine {
    /// Short lowercase name, as accepted by `--engine` flags.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Interp => "interp",
            ExecEngine::Vm => "vm",
        }
    }
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExecEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecEngine, String> {
        match s {
            "interp" => Ok(ExecEngine::Interp),
            "vm" => Ok(ExecEngine::Vm),
            other => Err(format!("unknown engine `{other}` (expected interp|vm)")),
        }
    }
}

/// Cycle costs for each operation class.
///
/// Values are chosen to match the published Titan characteristics (16 MHz,
/// pipelined scalar FP at ~6-cycle latency, one vector element per cycle
/// after startup) and reproduce the *shape* of the paper's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Integer add/sub/logic/compare.
    pub int_alu: u64,
    /// Integer multiply (no hardware multiplier on the RISC core).
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Scalar FP add/sub/mul latency (pipelined).
    pub fp_op: u64,
    /// Scalar FP divide.
    pub fp_div: u64,
    /// Int↔float conversion.
    pub fp_cvt: u64,
    /// Scalar load (pipelined path to memory).
    pub load: u64,
    /// Scalar store.
    pub store: u64,
    /// Taken-branch / loop-back penalty.
    pub branch: u64,
    /// Procedure call/return overhead (save/restore, pipeline drain).
    pub call: u64,
    /// Vector instruction startup.
    pub vector_startup: u64,
    /// Per-element vector cost (1 element/cycle after startup).
    pub vector_per_elem: u64,
    /// Fork/join overhead for spreading a loop across processors.
    pub fork_join: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            int_alu: 1,
            int_mul: 12,
            int_div: 35,
            fp_op: 6,
            fp_div: 20,
            fp_cvt: 4,
            load: 2,
            store: 2,
            branch: 2,
            call: 16,
            vector_startup: 12,
            vector_per_elem: 1,
            fork_join: 120,
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Clock in MHz (the Titan ran at 16 MHz).
    pub clock_mhz: f64,
    /// Number of processors applied to `do parallel` loops (1–4).
    pub num_procs: u32,
    /// Whether the instruction scheduler's integer/FP/memory overlap is
    /// modeled (§6 item 2). Scalar-only compiles historically lacked the
    /// dependence information to schedule aggressively, so baselines run
    /// with this off.
    pub overlap: bool,
    /// The cycle-cost table.
    pub costs: CostModel,
    /// Maximum statements to execute before declaring runaway (guards
    /// accidentally-infinite loops in tests).
    pub max_steps: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            clock_mhz: 16.0,
            num_procs: 1,
            overlap: false,
            costs: CostModel::default(),
            max_steps: 200_000_000,
        }
    }
}

impl MachineConfig {
    /// A scalar baseline machine: one processor, no scheduling overlap.
    pub fn scalar() -> MachineConfig {
        MachineConfig::default()
    }

    /// An optimizing configuration: overlap scheduling on, `n` processors.
    pub fn optimized(num_procs: u32) -> MachineConfig {
        MachineConfig {
            num_procs,
            overlap: true,
            ..MachineConfig::default()
        }
    }
}

/// Execution statistics accumulated by a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Total cycles (fractional because parallel regions divide).
    pub cycles: f64,
    /// Statements executed.
    pub steps: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Vector instructions issued.
    pub vector_instrs: u64,
    /// Vector elements processed.
    pub vector_elems: u64,
    /// Lines produced by `print_*` intrinsics.
    pub output: Vec<String>,
}

impl ExecStats {
    /// Achieved MFLOPS at the given clock.
    pub fn mflops(&self, clock_mhz: f64) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        let seconds = self.cycles / (clock_mhz * 1e6);
        self.flops as f64 / seconds / 1e6
    }

    /// Wall-clock seconds at the given clock.
    pub fn seconds(&self, clock_mhz: f64) -> f64 {
        self.cycles / (clock_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_titan_16mhz() {
        let c = MachineConfig::default();
        assert_eq!(c.clock_mhz, 16.0);
        assert_eq!(c.num_procs, 1);
        assert!(!c.overlap);
    }

    #[test]
    fn optimized_enables_overlap() {
        let c = MachineConfig::optimized(2);
        assert!(c.overlap);
        assert_eq!(c.num_procs, 2);
    }

    #[test]
    fn mflops_arithmetic() {
        let stats = ExecStats {
            cycles: 16e6, // one second at 16 MHz
            flops: 500_000,
            ..ExecStats::default()
        };
        let m = stats.mflops(16.0);
        assert!((m - 0.5).abs() < 1e-9, "{m}");
        assert!((stats.seconds(16.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_zero_mflops() {
        assert_eq!(ExecStats::default().mflops(16.0), 0.0);
    }
}
