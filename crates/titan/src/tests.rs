//! Simulator tests: semantics first, then the cost model.

use crate::{MachineConfig, Simulator, Value};
use titanc_il::{BinOp, LValue, ProcBuilder, ScalarType, StmtKind, Type};
use titanc_lower::compile_to_il;

fn run_c(src: &str) -> crate::RunResult {
    let prog = compile_to_il(src).expect("compile");
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    sim.run("main", &[]).expect("run")
}

fn ret_int(src: &str) -> i64 {
    run_c(src).value.expect("value").as_int()
}

#[test]
fn arithmetic_and_loops() {
    assert_eq!(ret_int("int main(void){ return 2 + 3 * 4; }"), 14);
    assert_eq!(
        ret_int("int main(void){ int i, s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }"),
        55
    );
    assert_eq!(
        ret_int(
            "int main(void){ int n, r; n = 10; r = 1; while (n) { r = r + n; n--; } return r; }"
        ),
        56
    );
}

#[test]
fn pointer_walk_copy() {
    let src = r#"
float src_a[8], dst_a[8];
int main(void)
{
    float *a, *b;
    int n, i;
    for (i = 0; i < 8; i++) src_a[i] = i * 1.5f;
    a = &dst_a[0];
    b = &src_a[0];
    n = 8;
    while (n) { *a++ = *b++; n--; }
    return (int)dst_a[7];
}
"#;
    let r = run_c(src);
    assert_eq!(r.value.unwrap().as_int(), 10); // 7*1.5 = 10.5 -> 10
}

#[test]
fn global_memory_is_observable() {
    let src = r#"
float x[4];
int main(void) { int i; for (i = 0; i < 4; i++) x[i] = i + 0.5f; return 0; }
"#;
    let prog = compile_to_il(src).unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    sim.run("main", &[]).unwrap();
    for i in 0..4 {
        let v = sim.read_global("x", ScalarType::Float, i).unwrap();
        assert_eq!(v.as_float(), i as f64 + 0.5);
    }
}

#[test]
fn procedure_calls_and_recursion() {
    let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main(void) { return fib(12); }
"#;
    assert_eq!(ret_int(src), 144);
}

#[test]
fn call_by_pointer_mutates_caller() {
    let src = r#"
void bump(int *p) { *p += 1; }
int main(void) { int x; x = 41; bump(&x); return x; }
"#;
    assert_eq!(ret_int(src), 42);
}

#[test]
fn static_locals_persist() {
    let src = r#"
int counter(void) { static int count = 5; count++; return count; }
int main(void) { counter(); counter(); return counter(); }
"#;
    assert_eq!(ret_int(src), 8);
}

#[test]
fn volatile_script_terminates_poll_loop() {
    let src = r#"
volatile int keyboard_status;
int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);
    return keyboard_status;
}
"#;
    let prog = compile_to_il(src).unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    sim.push_volatile_values(&[0, 0, 0, 7]);
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 7);
}

#[test]
fn without_volatile_script_poll_loop_hits_step_limit() {
    let src = r#"
volatile int keyboard_status;
int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);
    return 0;
}
"#;
    let prog = compile_to_il(src).unwrap();
    let cfg = MachineConfig {
        max_steps: 10_000,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(&prog, cfg);
    let err = sim.run("main", &[]).unwrap_err();
    assert!(err.message.contains("step limit"), "{err}");
}

#[test]
fn print_intrinsics_capture_output() {
    let src = r#"
int main(void) { print_int(42); print_float(1.5f); return 0; }
"#;
    let r = run_c(src);
    assert_eq!(
        r.stats.output,
        vec!["42".to_string(), "1.500000".to_string()]
    );
}

#[test]
fn math_intrinsics() {
    let src = "int main(void) { double d; d = sqrt(9.0); return (int)d; }";
    assert_eq!(ret_int(src), 3);
}

#[test]
fn division_by_zero_traps() {
    let prog = compile_to_il("int main(void) { int z; z = 0; return 1 / z; }").unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let err = sim.run("main", &[]).unwrap_err();
    assert!(err.message.contains("division"), "{err}");
}

#[test]
fn goto_and_labels_execute() {
    let src = r#"
int main(void)
{
    int i, s;
    i = 0; s = 0;
loop:
    s += i;
    i++;
    if (i < 5) goto loop;
    return s;
}
"#;
    assert_eq!(ret_int(src), 10);
}

#[test]
fn char_arithmetic_wraps() {
    let src = "int main(void) { char c; c = 127; c = c + 1; return c; }";
    assert_eq!(ret_int(src), -128);
}

#[test]
fn float_single_precision_rounds() {
    // 0.1f is not 0.1
    let src = "int main(void) { float f; f = 0.1f; return (int)(f * 10000000.0f); }";
    let v = ret_int(src);
    assert_eq!(v, 1000000, "f32 rounding visible: {v}");
}

#[test]
fn do_loop_executes_fortran_semantics() {
    // build directly in IL: DO i = 10, 1, -2 { s += i }
    let mut b = ProcBuilder::new("main", Type::Int);
    let i = b.local("i", Type::Int);
    let s = b.local("s", Type::Int);
    let zero = b.int(0);
    b.assign_var(s, zero);
    let body = {
        let mut lb = b.block();
        let sv = lb.var(s);
        let iv = lb.var(i);
        let add = lb.ibinary(BinOp::Add, sv, iv);
        lb.assign_var(s, add);
        lb.stmts()
    };
    let (lo, hi, step) = (b.int(10), b.int(1), b.int(-2));
    b.do_loop(i, lo, hi, step, body);
    let sv = b.var(s);
    b.ret(Some(sv));
    let mut prog = titanc_il::Program::new();
    prog.add_proc(b.finish());
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 10 + 8 + 6 + 4 + 2);
}

#[test]
fn zero_trip_do_loop_runs_zero_times() {
    let mut b = ProcBuilder::new("main", Type::Int);
    let i = b.local("i", Type::Int);
    let s = b.local("s", Type::Int);
    let seven = b.int(7);
    b.assign_var(s, seven);
    let body = {
        let mut lb = b.block();
        let zero = lb.int(0);
        lb.assign_var(s, zero);
        lb.stmts()
    };
    let (lo, hi, step) = (b.int(5), b.int(1), b.int(1));
    b.do_loop(i, lo, hi, step, body);
    let sv = b.var(s);
    b.ret(Some(sv));
    let mut prog = titanc_il::Program::new();
    prog.add_proc(b.finish());
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 7);
}

#[test]
fn vector_assign_matches_scalar_loop() {
    // a[0:8:4] = b[0:8:4] + 2.0, built in IL directly
    let mut b = ProcBuilder::new("main", Type::Int);
    let a = b.global("va", Type::array_of(Type::Float, 8));
    let bb = b.global("vb", Type::array_of(Type::Float, 8));
    let i = b.local("i", Type::Int);
    // init vb[i] = i
    let body = {
        let mut lb = b.block();
        let base = lb.addr_of(bb);
        let iv = lb.var(i);
        let four = lb.int(4);
        let off = lb.ibinary(BinOp::Mul, iv, four);
        let addr = lb.binary(BinOp::Add, ScalarType::Ptr, base, off);
        let iv2 = lb.var(i);
        let cast = lb.cast(ScalarType::Float, ScalarType::Int, iv2);
        lb.assign(LValue::deref(addr, ScalarType::Float), cast);
        lb.stmts()
    };
    let (lo, hi, step) = (b.int(0), b.int(7), b.int(1));
    b.do_loop(i, lo, hi, step, body);
    let sec_base = b.addr_of(bb);
    let sec_len = b.int(8);
    let sec_stride = b.int(4);
    let section = b.section(sec_base, sec_len, sec_stride, ScalarType::Float);
    let two = b.float(2.0);
    let rhs = b.binary(BinOp::Add, ScalarType::Float, section, two);
    let lhs_base = b.addr_of(a);
    let lhs_len = b.int(8);
    let lhs_stride = b.int(4);
    b.assign(
        LValue::Section {
            base: lhs_base,
            len: lhs_len,
            stride: lhs_stride,
            ty: ScalarType::Float,
        },
        rhs,
    );
    let zero = b.int(0);
    b.ret(Some(zero));
    let mut prog = titanc_il::Program::new();
    prog.ensure_global(titanc_il::VarInfo {
        name: "va".into(),
        ty: Type::array_of(Type::Float, 8),
        storage: titanc_il::Storage::Global,
        volatile: false,
        addressed: true,
        init: None,
    });
    prog.ensure_global(titanc_il::VarInfo {
        name: "vb".into(),
        ty: Type::array_of(Type::Float, 8),
        storage: titanc_il::Storage::Global,
        volatile: false,
        addressed: true,
        init: None,
    });
    prog.add_proc(b.finish());
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    for k in 0..8 {
        let v = sim.read_global("va", ScalarType::Float, k).unwrap();
        assert_eq!(v.as_float(), k as f64 + 2.0);
    }
    assert!(r.stats.vector_instrs >= 2, "vector instructions counted");
    assert!(r.stats.flops >= 8, "vector flops counted");
}

#[test]
fn overlap_scheduling_is_faster() {
    let src = r#"
float x[1000], y[1000], z[1000];
int main(void)
{
    int i;
    for (i = 0; i < 1000; i++) {
        x[i] = y[i] * z[i] + 0.5f;
    }
    return 0;
}
"#;
    let prog = compile_to_il(src).unwrap();
    let mut scalar = Simulator::new(&prog, MachineConfig::scalar());
    let base = scalar.run("main", &[]).unwrap().stats.cycles;
    let mut opt = Simulator::new(&prog, MachineConfig::optimized(1));
    let fast = opt.run("main", &[]).unwrap().stats.cycles;
    assert!(
        fast < base * 0.8,
        "overlap should shorten regions: {fast} vs {base}"
    );
}

#[test]
fn parallel_loop_divides_cycles() {
    // a parallel DO over 1000 iterations of FP work
    let build = |_nprocs: u32| {
        let mut b = ProcBuilder::new("main", Type::Int);
        let a = b.global("pa", Type::array_of(Type::Float, 1000));
        let i = b.local("i", Type::Int);
        let body = {
            let mut lb = b.block();
            let base = lb.addr_of(a);
            let iv = lb.var(i);
            let four = lb.int(4);
            let off = lb.ibinary(BinOp::Mul, iv, four);
            let addr = lb.binary(BinOp::Add, ScalarType::Ptr, base, off);
            let iv2 = lb.var(i);
            let cast = lb.cast(ScalarType::Float, ScalarType::Int, iv2);
            let three = lb.float(3.0);
            let rhs = lb.binary(BinOp::Mul, ScalarType::Float, cast, three);
            lb.assign(LValue::deref(addr, ScalarType::Float), rhs);
            lb.stmts()
        };
        let (lo, hi, step) = (b.int(0), b.int(999), b.int(1));
        let ret0 = b.int(0);
        let mut proc = b.finish();
        proc.push(StmtKind::DoParallel {
            var: i,
            lo,
            hi,
            step,
            body,
        });
        proc.push(StmtKind::Return(Some(ret0)));
        let mut prog = titanc_il::Program::new();
        prog.ensure_global(titanc_il::VarInfo {
            name: "pa".into(),
            ty: Type::array_of(Type::Float, 1000),
            storage: titanc_il::Storage::Global,
            volatile: false,
            addressed: true,
            init: None,
        });
        prog.add_proc(proc);
        prog
    };
    let prog = build(1);
    let mut one = Simulator::new(&prog, MachineConfig::optimized(1));
    let c1 = one.run("main", &[]).unwrap().stats.cycles;
    let mut two = Simulator::new(&prog, MachineConfig::optimized(2));
    let c2 = two.run("main", &[]).unwrap().stats.cycles;
    let speedup = c1 / c2;
    assert!(
        speedup > 1.7 && speedup < 2.05,
        "two processors halve the loop (+fork/join): {speedup}"
    );
    // results identical regardless of processor count
    let v1 = one.read_global("pa", ScalarType::Float, 999).unwrap();
    let v2 = two.read_global("pa", ScalarType::Float, 999).unwrap();
    assert_eq!(v1, v2);
    assert_eq!(v1.as_float(), 999.0 * 3.0);
}

#[test]
fn out_of_bounds_access_traps() {
    let src = "int main(void) { int *p; p = (int *)0; return *p; }";
    let prog = compile_to_il(src).unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let err = sim.run("main", &[]).unwrap_err();
    assert!(err.message.contains("memory access"), "{err}");
}

#[test]
fn unknown_procedure_is_an_error() {
    let src = "int main(void) { missing(); return 0; }";
    let prog = compile_to_il(src).unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let err = sim.run("main", &[]).unwrap_err();
    assert!(err.message.contains("undefined procedure"), "{err}");
}

#[test]
fn struct_field_access_runs() {
    let src = r#"
struct pt { float x; float y; };
struct pt g;
int main(void)
{
    struct pt *p;
    p = &g;
    p->x = 3.0f;
    p->y = 4.0f;
    return (int)(p->x * p->x + p->y * p->y);
}
"#;
    assert_eq!(ret_int(src), 25);
}

#[test]
fn struct_embedded_array_runs() {
    // §10: arrays embedded within structures (the Doré lesson)
    let src = r#"
struct matrix { float m[4][4]; };
struct matrix g;
int main(void)
{
    int i, j;
    float s;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            g.m[i][j] = i * 4 + j;
    s = 0;
    for (i = 0; i < 4; i++)
        s += g.m[i][i];
    return (int)s;
}
"#;
    assert_eq!(ret_int(src), 5 + 10 + 15);
}

#[test]
fn run_with_arguments() {
    let src = "int add(int a, int b) { return a + b; }";
    let prog = compile_to_il(src).unwrap();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    let r = sim.run("add", &[Value::Int(30), Value::Int(12)]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 42);
}

#[test]
fn observe_helper_snapshots_globals() {
    let src =
        "int g_out[2]; int main(void) { g_out[0] = 5; g_out[1] = 6; print_int(1); return 9; }";
    let prog = compile_to_il(src).unwrap();
    let (obs, stats) = crate::observe(
        &prog,
        MachineConfig::default(),
        "main",
        &[("g_out", ScalarType::Int, 2)],
    )
    .unwrap();
    assert_eq!(obs.value.unwrap().as_int(), 9);
    assert_eq!(obs.output, vec!["1".to_string()]);
    assert_eq!(obs.globals[0].1, vec![Value::Int(5), Value::Int(6)]);
    assert!(stats.cycles > 0.0);
}

#[test]
fn stats_count_flops() {
    let src = r#"
float acc;
int main(void) { int i; acc = 0.0f; for (i = 0; i < 100; i++) acc = acc + 1.5f; return 0; }
"#;
    let r = run_c(src);
    assert_eq!(r.stats.flops, 100);
}

#[test]
fn while_spread_semantics_and_cost() {
    // build directly in IL: p walks a chain of 3 cells; work doubles each
    use titanc_il::{StmtKind, Storage, VarInfo};
    let mut prog = titanc_il::Program::new();
    prog.ensure_global(VarInfo {
        name: "cells".into(),
        ty: Type::array_of(Type::Int, 8),
        storage: Storage::Global,
        volatile: false,
        addressed: true,
        init: None,
    });
    // cells layout: pairs (value, next-addr); terminated by next = 0
    let mut b = ProcBuilder::new("main", Type::Int);
    let cells = b.global("cells", Type::array_of(Type::Int, 8));
    let p = b.local("p", Type::ptr_to(Type::Int));
    // init: cells[0]=5, cells[1]=&cells[2]; cells[2]=7, cells[3]=&cells[4]; cells[4]=9, cells[5]=0
    fn addr(b: &mut ProcBuilder, base: titanc_il::VarId, off: i64) -> titanc_il::ExprId {
        let ba = b.addr_of(base);
        let o = b.int(off);
        b.binary(BinOp::Add, ScalarType::Ptr, ba, o)
    }
    for (off, val) in [(0, 5i64), (8, 7), (16, 9)] {
        let a = addr(&mut b, cells, off);
        let v = b.int(val);
        b.assign(LValue::deref(a, ScalarType::Int), v);
    }
    // next pointers (stored as int addresses)
    for (off, tgt) in [(0i64, Some(8i64)), (8, Some(16)), (16, None)] {
        let a = addr(&mut b, cells, off + 4);
        let rhs = match tgt {
            Some(t) => addr(&mut b, cells, t),
            None => b.int(0),
        };
        b.assign(LValue::deref(a, ScalarType::Int), rhs);
    }
    let cells_addr = b.addr_of(cells);
    b.assign_var(p, cells_addr);
    let mut proc = b.finish();
    // while spread (p != 0) { parallel: *p = *p * 2 } serial { p = *(p+4) }
    let pv = proc.exprs.var(p);
    let load_p = proc.exprs.load(pv, ScalarType::Int);
    let two = proc.exprs.int(2);
    let doubled = proc.exprs.ibinary(BinOp::Mul, load_p, two);
    let pv2 = proc.exprs.var(p);
    let work = proc.stamp(StmtKind::Assign {
        lhs: LValue::deref(pv2, ScalarType::Int),
        rhs: doubled,
    });
    let pv3 = proc.exprs.var(p);
    let four_c = proc.exprs.int(4);
    let next_addr = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, pv3, four_c);
    let next = proc.exprs.load(next_addr, ScalarType::Ptr);
    let chase = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(p),
        rhs: next,
    });
    let pv4 = proc.exprs.var(p);
    let zero_c = proc.exprs.int(0);
    let cond = proc.exprs.binary(BinOp::Ne, ScalarType::Ptr, pv4, zero_c);
    let spread = proc.stamp(StmtKind::WhileSpread {
        cond,
        parallel: vec![work],
        serial: vec![chase],
    });
    proc.body.push(spread);
    let ca = proc.exprs.addr_of(cells);
    let off16 = proc.exprs.int(16);
    let last_addr = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, ca, off16);
    let last = proc.exprs.load(last_addr, ScalarType::Int);
    let ret = proc.stamp(StmtKind::Return(Some(last)));
    proc.body.push(ret);
    prog.add_proc(proc);

    let mut one = Simulator::new(&prog, MachineConfig::optimized(1));
    let r1 = one.run("main", &[]).unwrap();
    assert_eq!(r1.value.unwrap().as_int(), 18, "9 doubled");
    assert_eq!(
        one.read_global("cells", ScalarType::Int, 0)
            .unwrap()
            .as_int(),
        10
    );
    assert_eq!(
        one.read_global("cells", ScalarType::Int, 2)
            .unwrap()
            .as_int(),
        14
    );

    let mut four = Simulator::new(&prog, MachineConfig::optimized(4));
    let r4 = four.run("main", &[]).unwrap();
    assert_eq!(
        r4.value, r1.value,
        "identical results on any processor count"
    );
    assert!(
        r4.stats.cycles < r1.stats.cycles,
        "work divides: {} !< {}",
        r4.stats.cycles,
        r1.stats.cycles
    );
}

// ----------------------------------------------------------------------
// VM / interpreter parity
// ----------------------------------------------------------------------

mod vm_parity {
    use super::*;
    use crate::ExecEngine;

    /// Runs `main` under both engines, asserting identical results, full
    /// statistics (including exact cycle totals) and final memory images.
    fn run_both(
        prog: &titanc_il::Program,
        cfg: &MachineConfig,
        script: &[i64],
    ) -> crate::RunResult {
        let mut interp = Simulator::with_engine(prog, cfg.clone(), ExecEngine::Interp);
        interp.push_volatile_values(script);
        let ri = interp.run("main", &[]).expect("interp run");
        let mut vm = Simulator::with_engine(prog, cfg.clone(), ExecEngine::Vm);
        vm.push_volatile_values(script);
        let rv = vm.run("main", &[]).expect("vm run");
        assert_eq!(ri.value, rv.value, "return value");
        assert_eq!(ri.stats, rv.stats, "execution statistics");
        assert!(interp.mem == vm.mem, "final memory images differ");
        assert_eq!(ri.engine, ExecEngine::Interp);
        assert_eq!(rv.engine, ExecEngine::Vm);
        rv
    }

    fn parity_c(src: &str) -> crate::RunResult {
        let prog = compile_to_il(src).expect("compile");
        let r = run_both(&prog, &MachineConfig::default(), &[]);
        run_both(&prog, &MachineConfig::optimized(2), &[]);
        r
    }

    /// Both engines must fail with the identical error.
    fn err_both(prog: &titanc_il::Program, cfg: &MachineConfig) -> String {
        let e1 = Simulator::with_engine(prog, cfg.clone(), ExecEngine::Interp)
            .run("main", &[])
            .expect_err("interp should error");
        let e2 = Simulator::with_engine(prog, cfg.clone(), ExecEngine::Vm)
            .run("main", &[])
            .expect_err("vm should error");
        assert_eq!(e1, e2, "engines disagree on the error");
        e1.message
    }

    #[test]
    fn scalar_corpus_parity() {
        let corpus: &[&str] = &[
            "int main(void){ return 2 + 3 * 4; }",
            "int main(void){ int i, s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }",
            "int main(void){ int n, r; n = 10; r = 1; while (n) { r = r + n; n--; } return r; }",
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n             int main(void) { return fib(12); }",
            "int counter(void) { static int count = 5; count++; return count; }\n             int main(void) { counter(); counter(); return counter(); }",
            "void bump(int *p) { *p += 1; }\n             int main(void) { int x; x = 41; bump(&x); return x; }",
            "int main(void) { char c; c = 127; c = c + 1; return c; }",
            "int main(void) { float f; f = 0.1f; return (int)(f * 10000000.0f); }",
            "int main(void) { print_int(42); print_float(1.5f); return 0; }",
            "int main(void) { double d; d = sqrt(9.0); return (int)d; }",
            "int main(void) { int a; a = -7; return abs(a) + (int)fabs(-2.5); }",
            "int main(void)\n             {\n                 int i, s;\n                 i = 0; s = 0;\n             loop:\n                 s += i;\n                 i++;\n                 if (i < 5) goto loop;\n                 return s;\n             }",
            "struct pt { float x; float y; };\n             struct pt g;\n             int main(void)\n             {\n                 struct pt *p;\n                 p = &g;\n                 p->x = 3.0f;\n                 p->y = 4.0f;\n                 return (int)(p->x * p->x + p->y * p->y);\n             }",
            "float src_a[8], dst_a[8];\n             int main(void)\n             {\n                 float *a, *b;\n                 int n, i;\n                 for (i = 0; i < 8; i++) src_a[i] = i * 1.5f;\n                 a = &dst_a[0];\n                 b = &src_a[0];\n                 n = 8;\n                 while (n) { *a++ = *b++; n--; }\n                 return (int)dst_a[7];\n             }",
            "float acc;\n             int main(void) { int i; acc = 0.0f; for (i = 0; i < 100; i++) acc = acc + 1.5f; return 0; }",
        ];
        for src in corpus {
            parity_c(src);
        }
    }

    #[test]
    fn volatile_poll_loop_parity() {
        let src = r#"
volatile int keyboard_status;
int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);
    return keyboard_status;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let r = run_both(&prog, &MachineConfig::default(), &[0, 0, 0, 7]);
        assert_eq!(r.value.unwrap().as_int(), 7);
    }

    #[test]
    fn error_parity() {
        let cfg = MachineConfig::default();
        let div = compile_to_il("int main(void) { int z; z = 0; return 1 / z; }").unwrap();
        assert!(err_both(&div, &cfg).contains("division by zero"));

        let oob = compile_to_il("int main(void) { int *p; p = (int *)0; return *p; }").unwrap();
        assert!(err_both(&oob, &cfg).contains("memory access out of range"));

        let missing = compile_to_il("int main(void) { missing(); return 0; }").unwrap();
        assert!(err_both(&missing, &cfg).contains("undefined procedure"));

        // The interpreter walks 512 simulated frames of Rust recursion,
        // which outgrows the default test-thread stack in debug builds;
        // give this one case a roomy thread.
        std::thread::Builder::new()
            .stack_size(32 << 20)
            .spawn(move || {
                let cfg = MachineConfig::default();
                let runaway = compile_to_il(
                    "int r(int n) { return r(n + 1); } int main(void) { return r(0); }",
                )
                .unwrap();
                assert!(err_both(&runaway, &cfg).contains("call depth exceeded"));
            })
            .unwrap()
            .join()
            .unwrap();

        let spin = compile_to_il("int main(void) { for (;;); return 0; }").unwrap();
        let small = MachineConfig {
            max_steps: 10_000,
            ..MachineConfig::default()
        };
        assert!(err_both(&spin, &small).contains("step limit exceeded"));
    }

    /// `a[0:n:4] = b[0:n:4] * 2.0 + c`, built in IL, both engines: the
    /// VM's chunked kernel must match the interpreter's element loop
    /// bit-for-bit (values, flop counts, vector statistics).
    #[test]
    fn vector_statement_parity() {
        let n = 64i64;
        let mut b = ProcBuilder::new("main", Type::Int);
        let va = b.global("va", Type::array_of(Type::Float, n as usize));
        let vb = b.global("vb", Type::array_of(Type::Float, n as usize));
        let i = b.local("i", Type::Int);
        let body = {
            let mut lb = b.block();
            let base = lb.addr_of(vb);
            let iv = lb.var(i);
            let four = lb.int(4);
            let off = lb.ibinary(BinOp::Mul, iv, four);
            let addr = lb.binary(BinOp::Add, ScalarType::Ptr, base, off);
            let iv2 = lb.var(i);
            let cast = lb.cast(ScalarType::Float, ScalarType::Int, iv2);
            lb.assign(LValue::deref(addr, ScalarType::Float), cast);
            lb.stmts()
        };
        let (lo, hi, step) = (b.int(0), b.int(n - 1), b.int(1));
        b.do_loop(i, lo, hi, step, body);
        let sec_base = b.addr_of(vb);
        let sec_len = b.int(n);
        let sec_stride = b.int(4);
        let section = b.section(sec_base, sec_len, sec_stride, ScalarType::Float);
        let two = b.float(2.0);
        let scaled = b.binary(BinOp::Mul, ScalarType::Float, section, two);
        let half = b.float(0.5);
        let rhs = b.binary(BinOp::Add, ScalarType::Float, scaled, half);
        let lhs_base = b.addr_of(va);
        let lhs_len = b.int(n);
        let lhs_stride = b.int(4);
        b.assign(
            LValue::Section {
                base: lhs_base,
                len: lhs_len,
                stride: lhs_stride,
                ty: ScalarType::Float,
            },
            rhs,
        );
        let zero = b.int(0);
        b.ret(Some(zero));
        let mut prog = titanc_il::Program::new();
        for name in ["va", "vb"] {
            prog.ensure_global(titanc_il::VarInfo {
                name: name.into(),
                ty: Type::array_of(Type::Float, n as usize),
                storage: titanc_il::Storage::Global,
                volatile: false,
                addressed: true,
                init: None,
            });
        }
        prog.add_proc(b.finish());
        let r = run_both(&prog, &MachineConfig::optimized(1), &[]);
        assert!(r.stats.vector_instrs >= 3, "loads + op + store counted");
        run_both(&prog, &MachineConfig::scalar(), &[]);
    }

    /// A `do parallel` loop with an early `return` from inside the body:
    /// the VM must apply the same cycle division + fork/join fixup the
    /// interpreter applies when flow escapes the region.
    #[test]
    fn parallel_loop_early_return_parity() {
        let mut b = ProcBuilder::new("main", Type::Int);
        let a = b.global("pa", Type::array_of(Type::Float, 200));
        let i = b.local("i", Type::Int);
        let body = {
            let mut lb = b.block();
            let base = lb.addr_of(a);
            let iv = lb.var(i);
            let four = lb.int(4);
            let off = lb.ibinary(BinOp::Mul, iv, four);
            let addr = lb.binary(BinOp::Add, ScalarType::Ptr, base, off);
            let iv2 = lb.var(i);
            let cast = lb.cast(ScalarType::Float, ScalarType::Int, iv2);
            let three = lb.float(3.0);
            let rhs = lb.binary(BinOp::Mul, ScalarType::Float, cast, three);
            lb.assign(LValue::deref(addr, ScalarType::Float), rhs);
            lb.stmts()
        };
        let (lo, hi, step) = (b.int(0), b.int(199), b.int(1));
        let mut proc = b.finish();
        proc.push(StmtKind::DoParallel {
            var: i,
            lo,
            hi,
            step,
            body,
        });
        let seven = proc.exprs.int(7);
        let ret = proc.stamp(StmtKind::Return(Some(seven)));
        proc.body.push(ret);
        // variant with a conditional return inside the parallel body
        let mut early = proc.clone();
        if let StmtKind::DoParallel { body, .. } = &mut early.stmts[early.body[0]].clone() {
            let iv = early.exprs.var(i);
            let hundred = early.exprs.int(100);
            let cond = early.exprs.ibinary(BinOp::Eq, iv, hundred);
            let nine = early.exprs.int(9);
            let ret9 = early.stamp(StmtKind::Return(Some(nine)));
            let guard = early.stamp(StmtKind::If {
                cond,
                then_blk: vec![ret9],
                else_blk: vec![],
            });
            let mut new_body = body.clone();
            new_body.push(guard);
            if let StmtKind::DoParallel { body: slot, .. } = &mut early.stmts[early.body[0]] {
                *slot = new_body;
            }
        }
        for p in [proc, early] {
            let mut prog = titanc_il::Program::new();
            prog.ensure_global(titanc_il::VarInfo {
                name: "pa".into(),
                ty: Type::array_of(Type::Float, 200),
                storage: titanc_il::Storage::Global,
                volatile: false,
                addressed: true,
                init: None,
            });
            prog.add_proc(p);
            run_both(&prog, &MachineConfig::optimized(1), &[]);
            run_both(&prog, &MachineConfig::optimized(4), &[]);
        }
    }

    #[test]
    fn zero_and_negative_step_do_parity() {
        for (lo, hi, step) in [(10i64, 1i64, -2i64), (5, 1, 1), (1, 5, 2)] {
            let mut b = ProcBuilder::new("main", Type::Int);
            let i = b.local("i", Type::Int);
            let s = b.local("s", Type::Int);
            let zero = b.int(0);
            b.assign_var(s, zero);
            let body = {
                let mut lb = b.block();
                let sv = lb.var(s);
                let iv = lb.var(i);
                let add = lb.ibinary(BinOp::Add, sv, iv);
                lb.assign_var(s, add);
                lb.stmts()
            };
            let (l, h, st) = (b.int(lo), b.int(hi), b.int(step));
            b.do_loop(i, l, h, st, body);
            let sv = b.var(s);
            b.ret(Some(sv));
            let mut prog = titanc_il::Program::new();
            prog.add_proc(b.finish());
            run_both(&prog, &MachineConfig::default(), &[]);
        }
    }
}
