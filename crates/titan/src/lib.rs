//! # titanc-titan — the Titan machine simulator
//!
//! A cycle-cost simulator for the Ardent Titan, the multi-processor vector
//! machine the paper's compiler targets (§2). The real hardware is long
//! gone, so this crate substitutes a deterministic interpreter over the
//! compiler's IL that charges cycles according to the Titan's published
//! architectural characteristics:
//!
//! * a RISC integer unit (1-cycle ALU, expensive multiply),
//! * a highly pipelined FP unit (≈6-cycle pipelined scalar ops) that also
//!   executes all vector instructions at one element per cycle after
//!   startup,
//! * a pipelined path to memory,
//! * up to four processors sharing memory, applied to `do parallel` loops
//!   with a fork/join cost.
//!
//! With [`MachineConfig::overlap`] on, integer, floating and memory work in
//! a straight-line region overlap — the §6 claim that dependence
//! information lets the scheduler "completely overlap the integer and
//! floating point instructions". The paper's measurements (0.5 → 1.9
//! MFLOPS on the backsolve loop; 12× for inlined/vectorized/parallelized
//! daxpy on two processors) are reproduced in *shape* against this model;
//! see `EXPERIMENTS.md`.
//!
//! The simulator is also the semantic referee for the whole compiler: every
//! optimization pass is tested by comparing observable behaviour (return
//! value, printed output, final global memory) before and after the
//! transformation.
//!
//! ## Example
//!
//! ```
//! use titanc_titan::{MachineConfig, Simulator};
//!
//! let prog = titanc_lower::compile_to_il(
//!     "int main(void) { int i, s; s = 0; for (i = 1; i <= 100; i++) s += i; return s; }",
//! ).unwrap();
//! let mut sim = Simulator::new(&prog, MachineConfig::default());
//! let run = sim.run("main", &[])?;
//! assert_eq!(run.value.unwrap().as_int(), 5050);
//! assert!(run.stats.cycles > 0.0);
//! # Ok::<(), titanc_titan::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode;
mod interp;
mod machine;
mod vm;

pub use interp::{RunResult, SimError, Simulator};
pub use machine::{CostModel, ExecEngine, ExecStats, MachineConfig};
pub use titanc_il::fold::Value;

/// Observable state of a run, for before/after-optimization comparisons.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Entry return value.
    pub value: Option<Value>,
    /// Printed output.
    pub output: Vec<String>,
    /// Snapshot of requested globals (name, values).
    pub globals: Vec<(String, Vec<Value>)>,
}

/// Runs `entry` and captures the observable state: return value, output,
/// and the contents of the requested globals.
///
/// # Errors
///
/// Propagates any [`SimError`] from execution or global inspection.
pub fn observe(
    prog: &titanc_il::Program,
    cfg: MachineConfig,
    entry: &str,
    globals: &[(&str, titanc_il::ScalarType, u32)],
) -> Result<(Observation, ExecStats), SimError> {
    observe_with(prog, cfg, ExecEngine::Interp, entry, globals)
}

/// [`observe`], with an explicit choice of execution backend. Both engines
/// produce identical observations and statistics; the VM is faster.
///
/// # Errors
///
/// Propagates any [`SimError`] from execution or global inspection.
pub fn observe_with(
    prog: &titanc_il::Program,
    cfg: MachineConfig,
    engine: ExecEngine,
    entry: &str,
    globals: &[(&str, titanc_il::ScalarType, u32)],
) -> Result<(Observation, ExecStats), SimError> {
    let mut sim = Simulator::with_engine(prog, cfg, engine);
    let run = sim.run(entry, &[])?;
    let mut snap = Vec::new();
    for (name, kind, count) in globals {
        let mut vals = Vec::new();
        for i in 0..*count {
            vals.push(sim.read_global(name, *kind, i)?);
        }
        snap.push((name.to_string(), vals));
    }
    Ok((
        Observation {
            value: run.value,
            output: run.stats.output.clone(),
            globals: snap,
        },
        run.stats,
    ))
}

#[cfg(test)]
mod tests;
