//! One-pass lowering of final IL to register bytecode.
//!
//! Each procedure becomes a flat `Vec<Instr>` over a register file whose
//! first `proc.vars.len()` slots are the procedure's register-resident
//! variables (same indices as [`crate::interp::Frame::regs`]) and whose
//! remaining slots are expression temporaries allocated by the lowerer.
//! Control flow is explicit jumps; the structured `do`/`while`/spread
//! constructs compile to the exact sequence of step-guards, cost charges
//! and flushes the tree-walking interpreter performs, so cycle totals are
//! byte-for-byte identical between engines.
//!
//! Vector statements compile to a [`VecPlan`]: operand registers plus a
//! postorder [`VStep`] program the VM executes as chunked kernels over
//! contiguous buffers (see `vm.rs`). Statements whose right-hand side
//! contains a volatile load deoptimize to the interpreter's element loop
//! ([`Instr::VecDeopt`]) to preserve per-element volatile-script pops.

use crate::interp::{collect_sections, count_vector_ops, var_is_memory};
use titanc_il::fold::{normalize, Value};
use titanc_il::{
    BinOp, Expr, ExprId, ExprPool, LValue, LabelId, Procedure, Program, ScalarType, StmtId,
    StmtKind, UnOp, VarId,
};

/// Register index into `Frame::regs`.
pub(crate) type Reg = u32;

/// Sentinel for "no register" (e.g. a value-less `return`).
pub(crate) const NO_REG: Reg = u32::MAX;

/// Intrinsics recognized by name before procedure lookup, mirroring
/// `Simulator::intrinsic`.
pub(crate) const INTRINSICS: &[&str] = &[
    "print_int",
    "print_float",
    "print_double",
    "sqrt",
    "sqrtf",
    "fabs",
    "fabsf",
    "abs",
];

/// One bytecode instruction. Cost charges are explicit instructions or
/// baked into the memory/ALU ops, mirroring the interpreter's charge
/// points exactly.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Instr {
    /// `step_guard()` — one simulated statement.
    Step,
    /// `flush(costs.branch)`.
    FlushBranch,
    /// `flush(0)`.
    Flush0,
    /// `cycles += fork_join` (spread-loop entry).
    AddForkJoin,
    /// `regs[dst] = val`.
    Const { dst: Reg, val: Value },
    /// Load a memory-resident variable (charges a scalar load).
    LoadVarMem { dst: Reg, var: u32, ty: ScalarType },
    /// Store to a memory-resident variable (charges a scalar store).
    StoreVarMem { var: u32, ty: ScalarType, src: Reg },
    /// Store to a register variable (charges one int ALU op).
    StoreVarReg { var: u32, ty: ScalarType, src: Reg },
    /// Address of a memory-resident variable (charges one int ALU op).
    AddrOfVar { dst: Reg, var: u32 },
    /// Load through a pointer register (charges a scalar load; volatile
    /// loads pop the volatile script first).
    LoadMem {
        dst: Reg,
        addr: Reg,
        ty: ScalarType,
        volatile: bool,
    },
    /// Store through a pointer register (charges a scalar store).
    StoreMem { addr: Reg, ty: ScalarType, src: Reg },
    /// Unary ALU op (charges per `charge_op_cost`).
    Un {
        dst: Reg,
        op: UnOp,
        ty: ScalarType,
        src: Reg,
    },
    /// Binary ALU op (charges per `charge_binop_cost`).
    Bin {
        dst: Reg,
        op: BinOp,
        ty: ScalarType,
        a: Reg,
        b: Reg,
    },
    /// Scalar conversion (charges fp_cvt or int_alu).
    CastOp {
        dst: Reg,
        to: ScalarType,
        from: ScalarType,
        src: Reg,
    },
    /// Unconditional jump (cost-free; branch cycles are charged by the
    /// explicit `FlushBranch` the structured lowering emits).
    Jump { target: u32 },
    /// Jump when `regs[cond]` is falsy.
    JumpIfZero { cond: Reg, target: u32 },
    /// DO-loop entry: latch lo/hi/step (as ints) into loop registers;
    /// errors on a zero step.
    DoEnter {
        iv: Reg,
        hi: Reg,
        step: Reg,
        lo_src: Reg,
        hi_src: Reg,
        step_src: Reg,
    },
    /// DO-loop head: step guard, loop-control charge, flush(branch), exit
    /// when the trip test fails.
    DoHead {
        iv: Reg,
        hi: Reg,
        step: Reg,
        exit: u32,
    },
    /// DO-loop back edge: `iv += step`, jump to head.
    DoNext { iv: Reg, step: Reg, head: u32 },
    /// `do parallel` entry: flush(0) then snapshot cycles.
    ParEnter { slot: u32 },
    /// `do parallel` exit: flush(0), divide the region's cycles by the
    /// processor count, add fork/join overhead.
    ParExit { slot: u32 },
    /// Spread-loop iteration entry: snapshot cycles (no flush — the
    /// preceding condition flush already drained the bucket).
    SpreadEnter { slot: u32 },
    /// Spread-loop iteration exit: flush(0) then divide (no fork/join —
    /// it was charged once at loop entry).
    SpreadExit { slot: u32 },
    /// Save cost buckets (loop-invariant scalar operand evaluation in
    /// vector statements is cost-free).
    QuietSave,
    /// Restore cost buckets.
    QuietRestore,
    /// Call via `calls[data]`.
    Call { data: u32 },
    /// Return `regs[src]` (or nothing when `src == NO_REG`).
    Ret { src: Reg },
    /// Vector statement: check `len >= 0`.
    VecCheckLen { plan: u32 },
    /// Vector statement: check section `idx`'s length matches the store's.
    VecCheckSec { plan: u32, idx: u32 },
    /// Execute a vector plan (charges the vector cost model).
    VecRun { plan: u32 },
    /// Fall back to the interpreter's element loop for this statement
    /// (volatile loads on the rhs need per-element script pops).
    VecDeopt { stmt: StmtId },
    /// Raise `traps[msg]` as a `SimError`.
    Trap { msg: u32 },
}

/// How a static call site resolves.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Callee {
    /// Index into `Program::procs`.
    Proc(u32),
    /// A `print_*`/math intrinsic (dispatched by name).
    Intrinsic,
    /// No such procedure — errors if executed.
    Unknown,
}

/// Side-table entry for a `Call` instruction.
#[derive(Clone, Debug)]
pub(crate) struct CallData {
    pub(crate) callee: Callee,
    pub(crate) name: String,
    pub(crate) args: Vec<Reg>,
    /// Destination register, `NO_REG` when the result is discarded.
    pub(crate) dst: Reg,
}

/// A resolved rhs section operand of a vector plan.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SecRef {
    pub(crate) base: Reg,
    pub(crate) len: Reg,
    pub(crate) stride: Reg,
    pub(crate) ty: ScalarType,
}

/// One postorder step of a vector rhs program.
#[derive(Clone, Copy, Debug)]
pub(crate) enum VStep {
    /// Push section `idx` (a strided vector load).
    Sec(u32),
    /// Push a loop-invariant scalar held in a register, splatted.
    Splat(Reg),
    /// Apply a unary op element-wise.
    Un { op: UnOp, ty: ScalarType },
    /// Apply a binary op element-wise (pops rhs then lhs).
    Bin { op: BinOp, ty: ScalarType },
    /// Convert element-wise.
    Cast { to: ScalarType, from: ScalarType },
}

/// Side-table entry for one vector assignment.
#[derive(Clone, Debug)]
pub(crate) struct VecPlan {
    /// Store base/len/stride operand registers.
    pub(crate) base: Reg,
    pub(crate) len: Reg,
    pub(crate) stride: Reg,
    /// Element type of the store.
    pub(crate) kind: ScalarType,
    pub(crate) sections: Vec<SecRef>,
    pub(crate) steps: Vec<VStep>,
    /// Vector ALU op count (for flop accounting).
    pub(crate) ops: u64,
    /// Total vector instructions: loads + ops + one store.
    pub(crate) n_instr: u64,
}

/// Bytecode for one procedure.
#[derive(Debug)]
pub(crate) struct BcProc {
    pub(crate) code: Vec<Instr>,
    /// Register-file size: variable slots plus temporaries.
    pub(crate) num_regs: u32,
    /// Cycle-snapshot slots used by parallel/spread regions.
    pub(crate) num_snaps: u32,
    pub(crate) calls: Vec<CallData>,
    pub(crate) plans: Vec<VecPlan>,
    pub(crate) traps: Vec<String>,
}

/// Bytecode for a whole program, indexed like `Program::procs`.
#[derive(Debug)]
pub(crate) struct BcProgram {
    pub(crate) procs: Vec<BcProc>,
}

/// Compiles every procedure of `prog` to bytecode.
pub(crate) fn compile(prog: &Program) -> BcProgram {
    BcProgram {
        procs: prog.procs.iter().map(|p| lower_proc(prog, p)).collect(),
    }
}

/// Cost-accounting region a block executes under, for goto/return
/// unwinding: leaving a `Par` region must still divide its cycles.
#[derive(Clone, Copy, Debug)]
enum Region {
    /// Plain serial code.
    None,
    /// Body of a `do parallel` — exiting runs `ParExit { slot }`.
    Par(u32),
    /// Parallel arm of a spread loop — interp propagates the escape
    /// without dividing, so exiting emits nothing.
    Discard,
}

/// Lexical block context: its top-level labels (first occurrence wins,
/// like the interpreter's `position()` scan) and its region.
struct BlockCtx {
    labels: Vec<(LabelId, u32)>,
    region: Region,
}

/// An expression result: a register, and whether it is a temporary the
/// lowerer owns (variable registers are referenced in place).
#[derive(Clone, Copy)]
struct Operand {
    reg: Reg,
    temp: bool,
}

struct Lowerer<'a> {
    prog: &'a Program,
    proc: &'a Procedure,
    mem_var: Vec<bool>,
    code: Vec<Instr>,
    calls: Vec<CallData>,
    plans: Vec<VecPlan>,
    traps: Vec<String>,
    blocks: Vec<BlockCtx>,
    /// One cell per (block, label); position set when the label lowers.
    label_cells: Vec<Option<u32>>,
    /// (pc, cell) jump fixups resolved after the whole body lowers.
    label_fixups: Vec<(usize, u32)>,
    next_reg: u32,
    free_regs: Vec<Reg>,
    max_regs: u32,
    num_snaps: u32,
}

fn lower_proc(prog: &Program, proc: &Procedure) -> BcProc {
    let nvars = proc.vars.len() as u32;
    let mut lw = Lowerer {
        prog,
        proc,
        mem_var: proc.vars.iter().map(var_is_memory).collect(),
        code: Vec::new(),
        calls: Vec::new(),
        plans: Vec::new(),
        traps: Vec::new(),
        blocks: Vec::new(),
        label_cells: Vec::new(),
        label_fixups: Vec::new(),
        next_reg: nvars,
        free_regs: Vec::new(),
        max_regs: nvars,
        num_snaps: 0,
    };
    lw.lower_block(&proc.body, Region::None);
    lw.code.push(Instr::Ret { src: NO_REG });
    let fixups = std::mem::take(&mut lw.label_fixups);
    for (pc, cell) in fixups {
        let target = lw.label_cells[cell as usize].expect("label lowered with its block");
        lw.patch(pc, target);
    }
    BcProc {
        code: lw.code,
        num_regs: lw.max_regs,
        num_snaps: lw.num_snaps,
        calls: lw.calls,
        plans: lw.plans,
        traps: lw.traps,
    }
}

impl<'a> Lowerer<'a> {
    fn exprs(&self) -> &'a ExprPool {
        &self.proc.exprs
    }

    fn alloc_reg(&mut self) -> Reg {
        if let Some(r) = self.free_regs.pop() {
            return r;
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_regs = self.max_regs.max(self.next_reg);
        r
    }

    fn free_reg(&mut self, r: Reg) {
        self.free_regs.push(r);
    }

    fn free(&mut self, o: Operand) {
        if o.temp {
            self.free_regs.push(o.reg);
        }
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a placeholder jump-class instruction, returning its pc for
    /// later patching.
    fn emit_pending(&mut self, i: Instr) -> usize {
        let pc = self.code.len();
        self.code.push(i);
        pc
    }

    fn patch(&mut self, pc: usize, t: u32) {
        match &mut self.code[pc] {
            Instr::Jump { target } | Instr::JumpIfZero { target, .. } => *target = t,
            Instr::DoHead { exit, .. } => *exit = t,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn trap(&mut self, msg: String) {
        let idx = self.traps.len() as u32;
        self.traps.push(msg);
        self.code.push(Instr::Trap { msg: idx });
    }

    // --------------------------------------------------------------
    // blocks and statements
    // --------------------------------------------------------------

    fn lower_block(&mut self, block: &[StmtId], region: Region) {
        let mut labels = Vec::new();
        for &s in block {
            if let StmtKind::Label(l) = self.proc.stmts[s] {
                if !labels.iter().any(|&(m, _)| m == l) {
                    let cell = self.label_cells.len() as u32;
                    self.label_cells.push(None);
                    labels.push((l, cell));
                }
            }
        }
        self.blocks.push(BlockCtx { labels, region });
        for &s in block {
            self.lower_stmt(s);
        }
        self.blocks.pop();
    }

    #[allow(clippy::too_many_lines)]
    fn lower_stmt(&mut self, s: StmtId) {
        self.code.push(Instr::Step);
        match &self.proc.stmts[s] {
            StmtKind::Nop => {}
            StmtKind::Label(l) => {
                let here = self.here();
                let ctx = self.blocks.last().expect("in a block");
                if let Some(&(_, cell)) = ctx.labels.iter().find(|&&(m, _)| m == *l) {
                    let slot = &mut self.label_cells[cell as usize];
                    // first occurrence wins, matching the interpreter's
                    // forward scan
                    if slot.is_none() {
                        *slot = Some(here);
                    }
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                if matches!(lhs, LValue::Section { .. }) || self.exprs().has_section(*rhs) {
                    self.lower_vector_assign(s, lhs, *rhs);
                } else {
                    match *lhs {
                        // rhs is evaluated before the destination address
                        LValue::Deref { addr, ty, .. } => {
                            let v = self.lower_expr(*rhs);
                            let a = self.lower_expr(addr);
                            self.code.push(Instr::StoreMem {
                                addr: a.reg,
                                ty,
                                src: v.reg,
                            });
                            self.free(a);
                            self.free(v);
                        }
                        _ => {
                            let v = self.lower_expr(*rhs);
                            self.lower_store(lhs, v.reg);
                            self.free(v);
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.lower_expr(*cond);
                self.code.push(Instr::FlushBranch);
                self.free(c);
                let jz = self.emit_pending(Instr::JumpIfZero {
                    cond: c.reg,
                    target: 0,
                });
                self.lower_block(then_blk, Region::None);
                if else_blk.is_empty() {
                    let t = self.here();
                    self.patch(jz, t);
                } else {
                    let jend = self.emit_pending(Instr::Jump { target: 0 });
                    let t = self.here();
                    self.patch(jz, t);
                    self.lower_block(else_blk, Region::None);
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            StmtKind::While { cond, body, .. } => {
                let head = self.here();
                self.code.push(Instr::Step);
                let c = self.lower_expr(*cond);
                self.code.push(Instr::FlushBranch);
                self.free(c);
                let jz = self.emit_pending(Instr::JumpIfZero {
                    cond: c.reg,
                    target: 0,
                });
                self.lower_block(body, Region::None);
                self.code.push(Instr::Jump { target: head });
                let exit = self.here();
                self.patch(jz, exit);
            }
            StmtKind::WhileSpread {
                cond,
                parallel,
                serial,
            } => {
                self.code.push(Instr::Flush0);
                self.code.push(Instr::AddForkJoin);
                let head = self.here();
                self.code.push(Instr::Step);
                let c = self.lower_expr(*cond);
                self.code.push(Instr::FlushBranch);
                self.free(c);
                let jz = self.emit_pending(Instr::JumpIfZero {
                    cond: c.reg,
                    target: 0,
                });
                let slot = self.num_snaps;
                self.num_snaps += 1;
                self.code.push(Instr::SpreadEnter { slot });
                self.lower_block(parallel, Region::Discard);
                self.code.push(Instr::SpreadExit { slot });
                self.lower_block(serial, Region::None);
                self.code.push(Instr::Jump { target: head });
                let exit = self.here();
                self.patch(jz, exit);
            }
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => self.lower_do(*var, *lo, *hi, *step, body, Region::None),
            StmtKind::DoParallel {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let slot = self.num_snaps;
                self.num_snaps += 1;
                self.code.push(Instr::ParEnter { slot });
                self.lower_do(*var, *lo, *hi, *step, body, Region::Par(slot));
                self.code.push(Instr::ParExit { slot });
            }
            StmtKind::Goto(l) => {
                self.code.push(Instr::FlushBranch);
                self.lower_goto(*l);
            }
            StmtKind::IfGoto { cond, target } => {
                let c = self.lower_expr(*cond);
                self.code.push(Instr::FlushBranch);
                self.free(c);
                let jz = self.emit_pending(Instr::JumpIfZero {
                    cond: c.reg,
                    target: 0,
                });
                self.lower_goto(*target);
                let t = self.here();
                self.patch(jz, t);
            }
            StmtKind::Call { dst, callee, args } => {
                let mut arg_ops = Vec::with_capacity(args.len());
                for &a in args {
                    arg_ops.push(self.lower_expr(a));
                }
                self.code.push(Instr::Flush0);
                let dst_reg = if dst.is_some() {
                    self.alloc_reg()
                } else {
                    NO_REG
                };
                let callee_k = if INTRINSICS.contains(&callee.as_str()) {
                    Callee::Intrinsic
                } else if let Some(i) = self.prog.procs.iter().position(|p| p.name == *callee) {
                    Callee::Proc(i as u32)
                } else {
                    Callee::Unknown
                };
                let data = self.calls.len() as u32;
                self.calls.push(CallData {
                    callee: callee_k,
                    name: callee.clone(),
                    args: arg_ops.iter().map(|o| o.reg).collect(),
                    dst: dst_reg,
                });
                self.code.push(Instr::Call { data });
                for o in arg_ops {
                    self.free(o);
                }
                if let Some(d) = dst {
                    match *d {
                        // the destination address is evaluated after the
                        // call returns
                        LValue::Deref { addr, ty, .. } => {
                            let a = self.lower_expr(addr);
                            self.code.push(Instr::StoreMem {
                                addr: a.reg,
                                ty,
                                src: dst_reg,
                            });
                            self.free(a);
                        }
                        _ => self.lower_store(d, dst_reg),
                    }
                    self.free_reg(dst_reg);
                }
            }
            StmtKind::Return(v) => {
                let src = match v {
                    None => NO_REG,
                    Some(e) => {
                        let o = self.lower_expr(*e);
                        self.free(o);
                        o.reg
                    }
                };
                self.code.push(Instr::FlushBranch);
                let exits: Vec<u32> = self
                    .blocks
                    .iter()
                    .rev()
                    .filter_map(|c| match c.region {
                        Region::Par(slot) => Some(slot),
                        _ => None,
                    })
                    .collect();
                for slot in exits {
                    self.code.push(Instr::ParExit { slot });
                }
                self.code.push(Instr::Ret { src });
            }
        }
    }

    /// Resolves a goto against the lexical block stack (innermost block
    /// with a matching top-level label wins, like the interpreter's
    /// dynamic unwinding), emitting region exits for every `do parallel`
    /// body the jump leaves.
    fn lower_goto(&mut self, l: LabelId) {
        let found = self.blocks.iter().enumerate().rev().find_map(|(bi, ctx)| {
            ctx.labels
                .iter()
                .find(|&&(m, _)| m == l)
                .map(|&(_, cell)| (bi, cell))
        });
        match found {
            Some((bi, cell)) => {
                let exits: Vec<u32> = self.blocks[bi + 1..]
                    .iter()
                    .rev()
                    .filter_map(|c| match c.region {
                        Region::Par(slot) => Some(slot),
                        _ => None,
                    })
                    .collect();
                for slot in exits {
                    self.code.push(Instr::ParExit { slot });
                }
                let pc = self.emit_pending(Instr::Jump { target: 0 });
                self.label_fixups.push((pc, cell));
            }
            None => self.trap(format!(
                "goto {l} escaped procedure `{}` (label not found)",
                self.proc.name
            )),
        }
    }

    fn lower_do(
        &mut self,
        var: VarId,
        lo: ExprId,
        hi: ExprId,
        step: ExprId,
        body: &[StmtId],
        region: Region,
    ) {
        let l = self.lower_expr(lo);
        let h = self.lower_expr(hi);
        let st = self.lower_expr(step);
        let iv = self.alloc_reg();
        let hi2 = self.alloc_reg();
        let st2 = self.alloc_reg();
        self.code.push(Instr::DoEnter {
            iv,
            hi: hi2,
            step: st2,
            lo_src: l.reg,
            hi_src: h.reg,
            step_src: st.reg,
        });
        self.free(l);
        self.free(h);
        self.free(st);
        let head = self.emit_pending(Instr::DoHead {
            iv,
            hi: hi2,
            step: st2,
            exit: 0,
        });
        self.emit_store_var(var, iv);
        self.lower_block(body, region);
        self.code.push(Instr::DoNext {
            iv,
            step: st2,
            head: head as u32,
        });
        let exit = self.here();
        self.patch(head, exit);
        self.free_reg(iv);
        self.free_reg(hi2);
        self.free_reg(st2);
    }

    // --------------------------------------------------------------
    // stores
    // --------------------------------------------------------------

    fn emit_store_var(&mut self, v: VarId, src: Reg) {
        let ty = self.proc.var_scalar(v);
        let var = v.index() as u32;
        if self.mem_var[v.index()] {
            self.code.push(Instr::StoreVarMem { var, ty, src });
        } else {
            self.code.push(Instr::StoreVarReg { var, ty, src });
        }
    }

    /// Stores `src` to an lvalue whose address operands (if any) are
    /// evaluated here, after `src` was produced.
    fn lower_store(&mut self, lhs: &LValue, src: Reg) {
        match *lhs {
            LValue::Var(v) => self.emit_store_var(v, src),
            LValue::Deref { addr, ty, .. } => {
                let a = self.lower_expr(addr);
                self.code.push(Instr::StoreMem {
                    addr: a.reg,
                    ty,
                    src,
                });
                self.free(a);
            }
            LValue::Section { .. } => {
                self.trap("scalar value assigned to a vector section".to_string());
            }
        }
    }

    // --------------------------------------------------------------
    // expressions
    // --------------------------------------------------------------

    fn lower_expr(&mut self, e: ExprId) -> Operand {
        let temp = |reg| Operand { reg, temp: true };
        match self.exprs()[e] {
            Expr::IntConst(v) => {
                let r = self.alloc_reg();
                self.code.push(Instr::Const {
                    dst: r,
                    val: Value::Int(v),
                });
                temp(r)
            }
            Expr::FloatConst(f, ty) => {
                let r = self.alloc_reg();
                self.code.push(Instr::Const {
                    dst: r,
                    val: normalize(Value::Float(f), ty),
                });
                temp(r)
            }
            Expr::Var(v) => {
                if self.mem_var[v.index()] {
                    let r = self.alloc_reg();
                    self.code.push(Instr::LoadVarMem {
                        dst: r,
                        var: v.index() as u32,
                        ty: self.proc.var_scalar(v),
                    });
                    temp(r)
                } else {
                    Operand {
                        reg: v.index() as u32,
                        temp: false,
                    }
                }
            }
            Expr::AddrOf(v) => {
                if self.mem_var[v.index()] {
                    let r = self.alloc_reg();
                    self.code.push(Instr::AddrOfVar {
                        dst: r,
                        var: v.index() as u32,
                    });
                    temp(r)
                } else {
                    self.trap(format!(
                        "address taken of register variable {} (not memory-resident)",
                        self.proc.var(v).name
                    ));
                    temp(self.alloc_reg())
                }
            }
            Expr::Load { addr, ty, volatile } => {
                let a = self.lower_expr(addr);
                self.free(a);
                let r = self.alloc_reg();
                self.code.push(Instr::LoadMem {
                    dst: r,
                    addr: a.reg,
                    ty,
                    volatile,
                });
                temp(r)
            }
            Expr::Unary { op, ty, arg } => {
                let a = self.lower_expr(arg);
                self.free(a);
                let r = self.alloc_reg();
                self.code.push(Instr::Un {
                    dst: r,
                    op,
                    ty,
                    src: a.reg,
                });
                temp(r)
            }
            Expr::Binary { op, ty, lhs, rhs } => {
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                self.free(a);
                self.free(b);
                let r = self.alloc_reg();
                self.code.push(Instr::Bin {
                    dst: r,
                    op,
                    ty,
                    a: a.reg,
                    b: b.reg,
                });
                temp(r)
            }
            Expr::Cast { to, from, arg } => {
                let a = self.lower_expr(arg);
                self.free(a);
                let r = self.alloc_reg();
                self.code.push(Instr::CastOp {
                    dst: r,
                    to,
                    from,
                    src: a.reg,
                });
                temp(r)
            }
            Expr::Section { .. } => {
                // errors before evaluating operands, like the interpreter
                self.trap("vector section used outside a vector statement".to_string());
                temp(self.alloc_reg())
            }
        }
    }

    // --------------------------------------------------------------
    // vector statements
    // --------------------------------------------------------------

    fn lower_vector_assign(&mut self, s: StmtId, lhs: &LValue, rhs: ExprId) {
        let exprs = self.exprs();
        let (base, len, stride, kind) = match *lhs {
            LValue::Section {
                base,
                len,
                stride,
                ty,
            } => (base, len, stride, ty),
            _ => {
                self.trap("vector expression assigned to a scalar target".to_string());
                return;
            }
        };
        if exprs.has_volatile_load(rhs) {
            // per-element volatile-script pops: run the interpreter's
            // element loop for this one statement
            self.code.push(Instr::VecDeopt { stmt: s });
            return;
        }
        let b = self.lower_expr(base);
        let l = self.lower_expr(len);
        let strd = self.lower_expr(stride);
        let plan_idx = self.plans.len() as u32;
        self.code.push(Instr::VecCheckLen { plan: plan_idx });

        let mut sec_ids = Vec::new();
        collect_sections(exprs, rhs, &mut sec_ids);
        let mut sec_refs = Vec::with_capacity(sec_ids.len());
        let mut sec_ops = Vec::new();
        for (i, &sid) in sec_ids.iter().enumerate() {
            let Expr::Section {
                base: sb,
                len: sl,
                stride: ss,
                ty,
            } = exprs[sid]
            else {
                unreachable!("collect_sections returns sections")
            };
            let ob = self.lower_expr(sb);
            let ol = self.lower_expr(sl);
            let os = self.lower_expr(ss);
            sec_refs.push(SecRef {
                base: ob.reg,
                len: ol.reg,
                stride: os.reg,
                ty,
            });
            sec_ops.push((ob, ol, os));
            // length checks interleave with operand evaluation, matching
            // the interpreter's per-section check
            self.code.push(Instr::VecCheckSec {
                plan: plan_idx,
                idx: i as u32,
            });
        }

        // Loop-invariant scalar leaves evaluate once, cost-free. The
        // interpreter only touches them inside the element loop, so a
        // zero-length statement must skip them (their registers stay
        // unread by a zero-length kernel).
        let mut leaves = Vec::new();
        collect_scalar_leaves(exprs, rhs, &mut leaves);
        let mut leaf_ops = Vec::with_capacity(leaves.len());
        if !leaves.is_empty() {
            let skip = self.emit_pending(Instr::JumpIfZero {
                cond: l.reg,
                target: 0,
            });
            self.code.push(Instr::QuietSave);
            for &le in &leaves {
                leaf_ops.push(self.lower_expr(le));
            }
            self.code.push(Instr::QuietRestore);
            let t = self.here();
            self.patch(skip, t);
        }

        let mut steps = Vec::new();
        let mut sec_i = 0u32;
        let mut leaf_i = 0usize;
        build_steps(exprs, rhs, &leaf_ops, &mut steps, &mut sec_i, &mut leaf_i);
        let ops = count_vector_ops(exprs, rhs);
        let n_instr = sec_ids.len() as u64 + ops + 1;
        self.plans.push(VecPlan {
            base: b.reg,
            len: l.reg,
            stride: strd.reg,
            kind,
            sections: sec_refs,
            steps,
            ops,
            n_instr,
        });
        self.code.push(Instr::VecRun { plan: plan_idx });

        for o in leaf_ops {
            self.free(o);
        }
        for (ob, ol, os) in sec_ops {
            self.free(ob);
            self.free(ol);
            self.free(os);
        }
        self.free(b);
        self.free(l);
        self.free(strd);
    }
}

/// Scalar (loop-invariant) leaves of a vector rhs, in the order
/// `eval_vector_elem` reaches them: everything that is not a section and
/// not an interior Binary/Unary/Cast node.
fn collect_scalar_leaves(pool: &ExprPool, e: ExprId, out: &mut Vec<ExprId>) {
    match pool[e] {
        Expr::Section { .. } => {}
        Expr::Binary { lhs, rhs, .. } => {
            collect_scalar_leaves(pool, lhs, out);
            collect_scalar_leaves(pool, rhs, out);
        }
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => collect_scalar_leaves(pool, arg, out),
        _ => out.push(e),
    }
}

/// Builds the postorder [`VStep`] program for a vector rhs. Section and
/// leaf numbering follow the same traversal as `collect_sections` /
/// `collect_scalar_leaves`.
fn build_steps(
    pool: &ExprPool,
    e: ExprId,
    leaf_ops: &[Operand],
    steps: &mut Vec<VStep>,
    sec_i: &mut u32,
    leaf_i: &mut usize,
) {
    match pool[e] {
        Expr::Section { .. } => {
            steps.push(VStep::Sec(*sec_i));
            *sec_i += 1;
        }
        Expr::Binary { op, ty, lhs, rhs } => {
            build_steps(pool, lhs, leaf_ops, steps, sec_i, leaf_i);
            build_steps(pool, rhs, leaf_ops, steps, sec_i, leaf_i);
            steps.push(VStep::Bin { op, ty });
        }
        Expr::Unary { op, ty, arg } => {
            build_steps(pool, arg, leaf_ops, steps, sec_i, leaf_i);
            steps.push(VStep::Un { op, ty });
        }
        Expr::Cast { to, from, arg } => {
            build_steps(pool, arg, leaf_ops, steps, sec_i, leaf_i);
            steps.push(VStep::Cast { to, from });
        }
        _ => {
            steps.push(VStep::Splat(leaf_ops[*leaf_i].reg));
            *leaf_i += 1;
        }
    }
}
