//! The IL interpreter / cycle-cost simulator.
//!
//! Executes an IL [`Program`] with Titan cost accounting. The interpreter
//! is the arbiter of IL semantics: optimization passes are validated by
//! running the same program before and after a transformation and comparing
//! observable state (return value, `print_*` output, global memory).

use crate::machine::{ExecEngine, ExecStats, MachineConfig};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use titanc_il::fold::{eval_binop, eval_cast, eval_unop, normalize, Value};
use titanc_il::{
    BinOp, ConstInit, Expr, ExprId, ExprPool, LValue, LabelId, Procedure, Program, ScalarType,
    StmtId, StmtKind, Storage, Type, VarId,
};

/// A runtime error: out-of-bounds access, division by zero, missing
/// procedure, runaway loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    /// What went wrong.
    pub message: String,
}

impl SimError {
    pub(crate) fn new(m: impl Into<String>) -> SimError {
        SimError { message: m.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "titan: {}", self.message)
    }
}

impl Error for SimError {}

pub(crate) const MEM_SIZE: usize = 1 << 24; // 16 MiB
const GLOBAL_BASE: u32 = 0x1000;
const STACK_BASE: u32 = 0x40_0000;

/// The result of running a procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// The entry procedure's return value, if any.
    pub value: Option<Value>,
    /// Cycle/operation statistics.
    pub stats: ExecStats,
    /// The backend that produced this result.
    pub engine: ExecEngine,
}

#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct Bucket {
    pub(crate) int: u64,
    pub(crate) fp: u64,
    pub(crate) mem: u64,
}

enum Flow {
    Normal,
    Return(Option<Value>),
    Goto(LabelId),
}

/// One activation record, shared by both engines. The interpreter sizes
/// `regs` to the variable table; the VM appends expression temporaries
/// after the variable slots.
pub(crate) struct Frame {
    pub(crate) proc_index: usize,
    pub(crate) regs: Vec<Value>,
    pub(crate) addrs: Vec<Option<u32>>,
    pub(crate) saved_sp: u32,
}

/// True when a variable must live in simulated memory rather than a
/// register: its address is taken, it is an aggregate, it is volatile, or
/// it has static/global storage. Both engines and the bytecode lowerer
/// must agree on this predicate, so it lives in one place.
pub(crate) fn var_is_memory(info: &titanc_il::VarInfo) -> bool {
    match info.storage {
        Storage::Global | Storage::Static => true,
        Storage::Auto | Storage::Param | Storage::Temp => {
            info.addressed || info.ty.scalar().is_none() || info.volatile
        }
    }
}

/// The Titan simulator.
///
/// # Example
///
/// ```
/// use titanc_titan::{Simulator, MachineConfig};
/// let prog = titanc_lower::compile_to_il(
///     "int main(void) { int i, s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }",
/// ).unwrap();
/// let mut sim = Simulator::new(&prog, MachineConfig::default());
/// let r = sim.run("main", &[]).unwrap();
/// assert_eq!(r.value.unwrap().as_int(), 55);
/// ```
pub struct Simulator<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) cfg: MachineConfig,
    pub(crate) mem: Vec<u8>,
    globals: HashMap<String, u32>,
    statics: HashMap<(String, String), u32>,
    alloc_ptr: u32,
    pub(crate) sp: u32,
    pub(crate) stats: ExecStats,
    pub(crate) bucket: Bucket,
    pub(crate) volatile_script: VecDeque<i64>,
    pub(crate) depth: u32,
    engine: ExecEngine,
    pub(crate) bc: Option<Rc<crate::bytecode::BcProgram>>,
    pub(crate) vscratch: crate::vm::Scratch,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator for a program; globals are allocated and
    /// initialized immediately. Uses the reference interpreter engine.
    pub fn new(prog: &'p Program, cfg: MachineConfig) -> Simulator<'p> {
        Simulator::with_engine(prog, cfg, ExecEngine::Interp)
    }

    /// Builds a simulator that executes with the chosen backend. Both
    /// engines share memory layout and the cycle-cost model, so results
    /// and statistics are identical; the VM is merely faster.
    pub fn with_engine(prog: &'p Program, cfg: MachineConfig, engine: ExecEngine) -> Simulator<'p> {
        let mut sim = Simulator {
            prog,
            cfg,
            mem: vec![0u8; MEM_SIZE],
            globals: HashMap::new(),
            statics: HashMap::new(),
            alloc_ptr: GLOBAL_BASE,
            sp: STACK_BASE,
            stats: ExecStats::default(),
            bucket: Bucket::default(),
            volatile_script: VecDeque::new(),
            depth: 0,
            engine,
            bc: None,
            vscratch: crate::vm::Scratch::default(),
        };
        for g in &prog.globals {
            sim.alloc_global(g);
        }
        sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The execution backend this simulator runs with.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Queues values that successive *volatile loads* will observe: before
    /// each volatile load, the next queued value is stored to the loaded
    /// address (simulating a device register changing outside the program,
    /// §1 item 6).
    pub fn push_volatile_values(&mut self, values: &[i64]) {
        self.volatile_script.extend(values.iter().copied());
    }

    fn alloc_global(&mut self, g: &titanc_il::VarInfo) -> u32 {
        if let Some(a) = self.globals.get(&g.name) {
            return *a;
        }
        let size = self.prog.type_size(&g.ty).max(1) as u32;
        let addr = align_up(self.alloc_ptr, 8);
        self.alloc_ptr = addr + size;
        self.globals.insert(g.name.clone(), addr);
        if let Some(init) = g.init {
            self.write_init(addr, &g.ty, init);
        }
        addr
    }

    fn write_init(&mut self, addr: u32, ty: &Type, init: ConstInit) {
        if let Some(kind) = ty.scalar() {
            let v = match init {
                ConstInit::Int(i) => Value::Int(i),
                ConstInit::Float(f) => Value::Float(f),
            };
            let v = coerce(v, kind);
            let _ = self.write_mem(addr, kind, v);
        }
    }

    /// The address of a named global, if the program declares one.
    pub fn global_addr(&self, name: &str) -> Option<u32> {
        self.globals.get(name).copied()
    }

    /// Reads element `index` of the named global viewed as an array of
    /// `kind` (element 0 is the global's base address).
    ///
    /// # Errors
    ///
    /// Returns an error when the global does not exist or the access is out
    /// of bounds.
    pub fn read_global(&self, name: &str, kind: ScalarType, index: u32) -> Result<Value, SimError> {
        let base = self
            .global_addr(name)
            .ok_or_else(|| SimError::new(format!("no global `{name}`")))?;
        self.read_mem(base + index * kind.size() as u32, kind)
    }

    /// Writes element `index` of the named global.
    ///
    /// # Errors
    ///
    /// Returns an error when the global does not exist or the access is out
    /// of bounds.
    pub fn write_global(
        &mut self,
        name: &str,
        kind: ScalarType,
        index: u32,
        v: Value,
    ) -> Result<(), SimError> {
        let base = self
            .global_addr(name)
            .ok_or_else(|| SimError::new(format!("no global `{name}`")))?;
        self.write_mem(base + index * kind.size() as u32, kind, v)
    }

    /// Runs the named procedure with the given arguments and returns its
    /// value and the accumulated statistics.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on runtime faults (bad memory access,
    /// division by zero, unknown procedure, step-limit exceeded).
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<RunResult, SimError> {
        let value = match self.engine {
            ExecEngine::Interp => self.call(entry, args)?,
            ExecEngine::Vm => self.vm_entry(entry, args)?,
        };
        self.flush(0);
        Ok(RunResult {
            value,
            stats: self.stats.clone(),
            engine: self.engine,
        })
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    pub(crate) fn proc_by_name(&self, name: &str) -> Option<(usize, &'p Procedure)> {
        self.prog
            .procs
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
    }

    /// The procedure a frame is executing. The reference lives for `'p`
    /// (the program borrow), independent of `&mut self`.
    pub(crate) fn cur_proc(&self, frame: &Frame) -> &'p Procedure {
        &self.prog.procs[frame.proc_index]
    }

    /// Builds an activation record for procedure `idx`: allocates stack
    /// slots for memory-resident variables (zeroed), resolves global and
    /// static addresses (allocating statics lazily), and sizes the register
    /// file to `num_regs` slots. Address assignment order is part of the
    /// engine-equivalence contract — both backends call this.
    pub(crate) fn setup_frame(&mut self, idx: usize, num_regs: usize) -> Result<Frame, SimError> {
        let proc: &'p Procedure = &self.prog.procs[idx];
        let mut frame = Frame {
            proc_index: idx,
            regs: vec![Value::Int(0); num_regs],
            addrs: vec![None; proc.vars.len()],
            saved_sp: self.sp,
        };
        // Allocate memory-resident variables.
        for (i, info) in proc.vars.iter().enumerate() {
            match info.storage {
                Storage::Global => {
                    let addr = match self.globals.get(&info.name) {
                        Some(a) => *a,
                        None => self.alloc_global(info),
                    };
                    frame.addrs[i] = Some(addr);
                    continue;
                }
                Storage::Static => {
                    let key = (proc.name.clone(), info.name.clone());
                    let addr = match self.statics.get(&key) {
                        Some(a) => *a,
                        None => {
                            let size = self.prog.type_size(&info.ty).max(1) as u32;
                            let addr = align_up(self.alloc_ptr, 8);
                            self.alloc_ptr = addr + size;
                            self.statics.insert(key, addr);
                            if let Some(init) = info.init {
                                self.write_init(addr, &info.ty, init);
                            }
                            addr
                        }
                    };
                    frame.addrs[i] = Some(addr);
                    continue;
                }
                Storage::Auto | Storage::Param | Storage::Temp => {}
            }
            if var_is_memory(info) {
                let size = self.prog.type_size(&info.ty).max(1) as u32;
                let addr = align_up(self.sp, 8);
                self.sp = addr + size;
                if self.sp as usize >= MEM_SIZE {
                    return Err(SimError::new("stack overflow"));
                }
                // stack slots are not cleared on the real machine, but a
                // deterministic simulator zeroes them
                for b in &mut self.mem[addr as usize..self.sp as usize] {
                    *b = 0;
                }
                frame.addrs[i] = Some(addr);
            }
        }
        Ok(frame)
    }

    /// Binds call arguments to parameter slots (uncharged, like register
    /// passing on the real machine).
    pub(crate) fn bind_params(
        &mut self,
        frame: &mut Frame,
        args: &[Value],
    ) -> Result<(), SimError> {
        let proc = self.cur_proc(frame);
        for (pi, &pv) in proc.params.iter().enumerate() {
            let kind = proc.var_scalar(pv);
            let v = coerce(args[pi], kind);
            if let Some(addr) = frame.addrs[pv.index()] {
                self.write_mem(addr, kind, v)?;
            } else {
                frame.regs[pv.index()] = v;
            }
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, SimError> {
        if let Some(v) = self.intrinsic(name, args)? {
            return Ok(v.into_value());
        }
        let (idx, proc) = self
            .proc_by_name(name)
            .ok_or_else(|| SimError::new(format!("undefined procedure `{name}`")))?;
        if proc.params.len() != args.len() {
            return Err(SimError::new(format!(
                "procedure `{name}` expects {} arguments, got {}",
                proc.params.len(),
                args.len()
            )));
        }
        self.depth += 1;
        if self.depth > 512 {
            self.depth -= 1;
            return Err(SimError::new("call depth exceeded (runaway recursion?)"));
        }
        self.charge_int(self.cfg.costs.call);

        let mut frame = self.setup_frame(idx, proc.vars.len())?;
        self.bind_params(&mut frame, args)?;

        let flow = self.exec_block(&mut frame, &proc.body)?;
        self.sp = frame.saved_sp;
        self.depth -= 1;
        self.charge_int(self.cfg.costs.call / 2);
        match flow {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
            Flow::Goto(l) => Err(SimError::new(format!(
                "goto {l} escaped procedure `{name}` (label not found)"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // statement execution
    // ------------------------------------------------------------------

    fn exec_block(&mut self, frame: &mut Frame, block: &[StmtId]) -> Result<Flow, SimError> {
        let mut i = 0usize;
        while i < block.len() {
            let flow = self.exec_stmt(frame, block[i])?;
            match flow {
                Flow::Normal => i += 1,
                Flow::Return(v) => return Ok(Flow::Return(v)),
                Flow::Goto(l) => {
                    // resume at a top-level label of this block, else
                    // propagate outward
                    let stmts = &self.cur_proc(frame).stmts;
                    match block
                        .iter()
                        .position(|&s| matches!(stmts[s], StmtKind::Label(m) if m == l))
                    {
                        Some(pos) => i = pos + 1,
                        None => return Ok(Flow::Goto(l)),
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    pub(crate) fn step_guard(&mut self) -> Result<(), SimError> {
        self.stats.steps += 1;
        if self.stats.steps > self.cfg.max_steps {
            return Err(SimError::new("step limit exceeded (infinite loop?)"));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec_stmt(&mut self, frame: &mut Frame, s: StmtId) -> Result<Flow, SimError> {
        self.step_guard()?;
        let proc = self.cur_proc(frame);
        match &proc.stmts[s] {
            StmtKind::Nop | StmtKind::Label(_) => Ok(Flow::Normal),
            StmtKind::Assign { lhs, rhs } => {
                if matches!(lhs, LValue::Section { .. }) || proc.exprs.has_section(*rhs) {
                    self.exec_vector_assign(frame, lhs, *rhs)?;
                    return Ok(Flow::Normal);
                }
                let v = self.eval(frame, *rhs)?;
                self.store(frame, lhs, v)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(frame, *cond)?;
                self.flush(self.cfg.costs.branch);
                if c.is_truthy() {
                    self.exec_block(frame, then_blk)
                } else {
                    self.exec_block(frame, else_blk)
                }
            }
            StmtKind::While { cond, body, .. } => loop {
                self.step_guard()?;
                let c = self.eval(frame, *cond)?;
                self.flush(self.cfg.costs.branch);
                if !c.is_truthy() {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(frame, body)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            },
            StmtKind::WhileSpread {
                cond,
                parallel,
                serial,
            } => {
                // §10 list spreading: the parallel work of each iteration
                // is divided across processors; the condition and the
                // pointer chase stay serial. One fork/join for the loop.
                let procs = f64::from(self.cfg.num_procs.max(1));
                self.flush(0);
                self.stats.cycles += self.cfg.costs.fork_join as f64;
                loop {
                    self.step_guard()?;
                    let c = self.eval(frame, *cond)?;
                    self.flush(self.cfg.costs.branch);
                    if !c.is_truthy() {
                        return Ok(Flow::Normal);
                    }
                    let before = self.stats.cycles;
                    match self.exec_block(frame, parallel)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    self.flush(0);
                    let delta = self.stats.cycles - before;
                    self.stats.cycles = before + delta / procs;
                    match self.exec_block(frame, serial)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
            }
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => self.exec_do(frame, *var, *lo, *hi, *step, body),
            StmtKind::DoParallel {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                self.flush(0);
                let before = self.stats.cycles;
                let flow = self.exec_do(frame, *var, *lo, *hi, *step, body)?;
                self.flush(0);
                let delta = self.stats.cycles - before;
                let procs = f64::from(self.cfg.num_procs.max(1));
                self.stats.cycles = before + delta / procs + self.cfg.costs.fork_join as f64;
                Ok(flow)
            }
            StmtKind::Goto(l) => {
                self.flush(self.cfg.costs.branch);
                Ok(Flow::Goto(*l))
            }
            StmtKind::IfGoto { cond, target } => {
                let c = self.eval(frame, *cond)?;
                self.flush(self.cfg.costs.branch);
                if c.is_truthy() {
                    Ok(Flow::Goto(*target))
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Call { dst, callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for &a in args {
                    vals.push(self.eval(frame, a)?);
                }
                self.flush(0);
                let ret = self.call(callee, &vals)?;
                if let Some(d) = dst {
                    let v = ret.ok_or_else(|| {
                        SimError::new(format!("procedure `{callee}` returned no value"))
                    })?;
                    self.store(frame, d, v)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(v) => {
                let value = match v {
                    None => None,
                    Some(e) => Some(self.eval(frame, *e)?),
                };
                self.flush(self.cfg.costs.branch);
                Ok(Flow::Return(value))
            }
        }
    }

    fn exec_do(
        &mut self,
        frame: &mut Frame,
        var: VarId,
        lo: ExprId,
        hi: ExprId,
        step: ExprId,
        body: &'p [StmtId],
    ) -> Result<Flow, SimError> {
        let proc = self.cur_proc(frame);
        let kind = proc.var_scalar(var);
        let lo_v = self.eval(frame, lo)?.as_int();
        let hi_v = self.eval(frame, hi)?.as_int();
        let step_v = self.eval(frame, step)?.as_int();
        if step_v == 0 {
            return Err(SimError::new("DO loop with zero step"));
        }
        let mut iv = lo_v;
        loop {
            self.step_guard()?;
            let cont = if step_v > 0 { iv <= hi_v } else { iv >= hi_v };
            // loop control: increment + compare
            self.charge_int(2 * self.cfg.costs.int_alu);
            self.flush(self.cfg.costs.branch);
            if !cont {
                break;
            }
            self.store_var(frame, var, coerce(Value::Int(iv), kind))?;
            match self.exec_block(frame, body)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
            iv = iv.wrapping_add(step_v);
        }
        Ok(Flow::Normal)
    }

    // ------------------------------------------------------------------
    // vector execution
    // ------------------------------------------------------------------

    /// Executes a vector (triplet-section) assignment, charging the vector
    /// unit's cost model: one instruction per vector load, per FP/int
    /// vector operation, and per vector store; each instruction costs
    /// `startup + len`.
    pub(crate) fn exec_vector_assign(
        &mut self,
        frame: &mut Frame,
        lhs: &LValue,
        rhs: ExprId,
    ) -> Result<(), SimError> {
        let exprs = &self.cur_proc(frame).exprs;
        let (base, len, stride, kind) = match lhs {
            LValue::Section {
                base,
                len,
                stride,
                ty,
            } => (*base, *len, *stride, *ty),
            _ => {
                return Err(SimError::new(
                    "vector expression assigned to a scalar target",
                ))
            }
        };
        let base_v = self.eval(frame, base)?.as_int() as u32;
        let len_v = self.eval(frame, len)?.as_int();
        let stride_v = self.eval(frame, stride)?.as_int();
        if len_v < 0 {
            return Err(SimError::new("negative vector length"));
        }
        let len_u = len_v as u64;

        // Pre-evaluate every section operand in the rhs (base/stride), and
        // count vector instructions.
        let mut sections = Vec::new();
        collect_sections(exprs, rhs, &mut sections);
        let mut resolved = Vec::new();
        for &sec in &sections {
            if let Expr::Section {
                base,
                len,
                stride,
                ty,
            } = exprs[sec]
            {
                let b = self.eval(frame, base)?.as_int() as u32;
                let l = self.eval(frame, len)?.as_int();
                let st = self.eval(frame, stride)?.as_int();
                if l != len_v {
                    return Err(SimError::new(format!(
                        "vector length mismatch: {l} vs {len_v}"
                    )));
                }
                resolved.push((b, st, ty));
            }
        }
        let ops = count_vector_ops(exprs, rhs);
        let n_instr = sections.len() as u64 + ops + 1; // loads + ops + store
        self.stats.vector_instrs += n_instr;
        self.stats.vector_elems += len_u * n_instr;
        let c = &self.cfg.costs;
        self.stats.cycles += (n_instr * (c.vector_startup + c.vector_per_elem * len_u)) as f64;
        if kind.is_float() {
            self.stats.flops += ops * len_u;
        }

        // Element-wise semantics (vector stores complete after all loads of
        // the statement — IL vector statements are only emitted for proven
        // independent accesses, so gather-then-scatter order is safe).
        let mut results = Vec::with_capacity(len_u as usize);
        for k in 0..len_v {
            let mut idx = 0usize;
            let v = self.eval_vector_elem(frame, rhs, k, &resolved, &mut idx)?;
            results.push(coerce(v, kind));
        }
        for (k, v) in results.into_iter().enumerate() {
            let addr = (base_v as i64 + k as i64 * stride_v) as u32;
            self.write_mem(addr, kind, v)?;
        }
        Ok(())
    }

    /// Evaluates the rhs of a vector statement for element `k`; `resolved`
    /// holds pre-evaluated (base, stride, ty) per section in traversal
    /// order.
    fn eval_vector_elem(
        &mut self,
        frame: &mut Frame,
        e: ExprId,
        k: i64,
        resolved: &[(u32, i64, ScalarType)],
        idx: &mut usize,
    ) -> Result<Value, SimError> {
        match self.cur_proc(frame).exprs[e] {
            Expr::Section { .. } => {
                let (b, st, ty) = resolved[*idx];
                *idx += 1;
                let addr = (b as i64 + k * st) as u32;
                self.read_mem(addr, ty)
            }
            Expr::Binary { op, ty, lhs, rhs } => {
                let a = self.eval_vector_elem(frame, lhs, k, resolved, idx)?;
                let b = self.eval_vector_elem(frame, rhs, k, resolved, idx)?;
                eval_binop(op, ty, a, b)
                    .ok_or_else(|| SimError::new("division by zero in vector statement"))
            }
            Expr::Unary { op, ty, arg } => {
                let a = self.eval_vector_elem(frame, arg, k, resolved, idx)?;
                Ok(eval_unop(op, ty, a))
            }
            Expr::Cast { to, from, arg } => {
                let a = self.eval_vector_elem(frame, arg, k, resolved, idx)?;
                Ok(eval_cast(to, from, a))
            }
            // scalar (loop-invariant) operand: evaluate without charging
            // per-element cost — it is held in a register
            _ => self.eval_quiet(frame, e),
        }
    }

    // ------------------------------------------------------------------
    // expression evaluation
    // ------------------------------------------------------------------

    pub(crate) fn eval(&mut self, frame: &mut Frame, e: ExprId) -> Result<Value, SimError> {
        match self.cur_proc(frame).exprs[e] {
            Expr::IntConst(v) => Ok(Value::Int(v)),
            Expr::FloatConst(f, ty) => Ok(normalize(Value::Float(f), ty)),
            Expr::Var(v) => self.load_var(frame, v),
            Expr::AddrOf(v) => {
                self.charge_int(self.cfg.costs.int_alu);
                let addr = frame.addrs[v.index()].ok_or_else(|| {
                    SimError::new(format!(
                        "address taken of register variable {} (not memory-resident)",
                        self.prog.procs[frame.proc_index].var(v).name
                    ))
                })?;
                Ok(Value::Int(addr as i64))
            }
            Expr::Load { addr, ty, volatile } => {
                let a = self.eval(frame, addr)?.as_int() as u32;
                if volatile {
                    if let Some(next) = self.volatile_script.pop_front() {
                        self.write_mem(a, ty, coerce(Value::Int(next), ty))?;
                    }
                }
                self.bucket.mem += self.cfg.costs.load;
                self.stats.loads += 1;
                self.read_mem(a, ty)
            }
            Expr::Unary { op, ty, arg } => {
                let a = self.eval(frame, arg)?;
                self.charge_op_cost(ty, false);
                Ok(eval_unop(op, ty, a))
            }
            Expr::Binary { op, ty, lhs, rhs } => {
                let a = self.eval(frame, lhs)?;
                let b = self.eval(frame, rhs)?;
                self.charge_binop_cost(op, ty);
                eval_binop(op, ty, a, b).ok_or_else(|| SimError::new("division by zero"))
            }
            Expr::Cast { to, from, arg } => {
                let a = self.eval(frame, arg)?;
                if to.is_float() != from.is_float() {
                    self.bucket.fp += self.cfg.costs.fp_cvt;
                } else {
                    self.charge_int(self.cfg.costs.int_alu);
                }
                Ok(eval_cast(to, from, a))
            }
            Expr::Section { .. } => Err(SimError::new(
                "vector section used outside a vector statement",
            )),
        }
    }

    /// Evaluates without charging costs (used for loop-invariant scalar
    /// operands of vector statements, already in registers).
    fn eval_quiet(&mut self, frame: &mut Frame, e: ExprId) -> Result<Value, SimError> {
        let save_bucket = self.bucket;
        let save_loads = self.stats.loads;
        let save_flops = self.stats.flops;
        let v = self.eval(frame, e)?;
        self.bucket = save_bucket;
        self.stats.loads = save_loads;
        self.stats.flops = save_flops;
        Ok(v)
    }

    fn load_var(&mut self, frame: &mut Frame, v: VarId) -> Result<Value, SimError> {
        let proc = self.cur_proc(frame);
        match frame.addrs[v.index()] {
            Some(addr) => {
                let kind = proc.var_scalar(v);
                self.bucket.mem += self.cfg.costs.load;
                self.stats.loads += 1;
                self.read_mem(addr, kind)
            }
            None => Ok(frame.regs[v.index()]),
        }
    }

    fn store_var(&mut self, frame: &mut Frame, v: VarId, value: Value) -> Result<(), SimError> {
        let proc = self.cur_proc(frame);
        let kind = proc.var_scalar(v);
        let value = coerce(value, kind);
        match frame.addrs[v.index()] {
            Some(addr) => {
                self.bucket.mem += self.cfg.costs.store;
                self.stats.stores += 1;
                self.write_mem(addr, kind, value)
            }
            None => {
                self.charge_int(self.cfg.costs.int_alu);
                frame.regs[v.index()] = value;
                Ok(())
            }
        }
    }

    fn store(&mut self, frame: &mut Frame, lhs: &LValue, value: Value) -> Result<(), SimError> {
        match lhs {
            LValue::Var(v) => self.store_var(frame, *v, value),
            LValue::Deref { addr, ty, .. } => {
                let a = self.eval(frame, *addr)?.as_int() as u32;
                self.bucket.mem += self.cfg.costs.store;
                self.stats.stores += 1;
                self.write_mem(a, *ty, coerce(value, *ty))
            }
            LValue::Section { .. } => {
                Err(SimError::new("scalar value assigned to a vector section"))
            }
        }
    }

    // ------------------------------------------------------------------
    // memory
    // ------------------------------------------------------------------

    fn check(&self, addr: u32, size: u32) -> Result<(), SimError> {
        if addr < 4 || (addr + size) as usize > MEM_SIZE {
            return Err(SimError::new(format!(
                "memory access out of range: {addr:#x}+{size}"
            )));
        }
        Ok(())
    }

    pub(crate) fn read_mem(&self, addr: u32, kind: ScalarType) -> Result<Value, SimError> {
        self.check(addr, kind.size() as u32)?;
        let i = addr as usize;
        Ok(match kind {
            ScalarType::Char => Value::Int(self.mem[i] as i8 as i64),
            ScalarType::Int => {
                Value::Int(i32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as i64)
            }
            ScalarType::Ptr => {
                Value::Int(u32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as i64)
            }
            ScalarType::Float => {
                Value::Float(f32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as f64)
            }
            ScalarType::Double => {
                Value::Float(f64::from_le_bytes(self.mem[i..i + 8].try_into().unwrap()))
            }
        })
    }

    pub(crate) fn write_mem(
        &mut self,
        addr: u32,
        kind: ScalarType,
        v: Value,
    ) -> Result<(), SimError> {
        self.check(addr, kind.size() as u32)?;
        let i = addr as usize;
        match kind {
            ScalarType::Char => self.mem[i] = v.as_int() as u8,
            ScalarType::Int => {
                self.mem[i..i + 4].copy_from_slice(&(v.as_int() as i32).to_le_bytes());
            }
            ScalarType::Ptr => {
                self.mem[i..i + 4].copy_from_slice(&(v.as_int() as u32).to_le_bytes());
            }
            ScalarType::Float => {
                self.mem[i..i + 4].copy_from_slice(&(v.as_float() as f32).to_le_bytes());
            }
            ScalarType::Double => {
                self.mem[i..i + 8].copy_from_slice(&v.as_float().to_le_bytes());
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // costs
    // ------------------------------------------------------------------

    pub(crate) fn charge_int(&mut self, c: u64) {
        self.bucket.int += c;
    }

    pub(crate) fn charge_op_cost(&mut self, ty: ScalarType, div: bool) {
        let c = &self.cfg.costs;
        if ty.is_float() {
            self.bucket.fp += if div { c.fp_div } else { c.fp_op };
            self.stats.flops += 1;
        } else {
            self.bucket.int += c.int_alu;
        }
    }

    pub(crate) fn charge_binop_cost(&mut self, op: BinOp, ty: ScalarType) {
        let c = &self.cfg.costs;
        if ty.is_float() {
            self.bucket.fp += match op {
                BinOp::Div => c.fp_div,
                _ => c.fp_op,
            };
            if !op.is_comparison() {
                self.stats.flops += 1;
            }
        } else {
            self.bucket.int += match op {
                BinOp::Mul => c.int_mul,
                BinOp::Div | BinOp::Rem => c.int_div,
                _ => c.int_alu,
            };
        }
    }

    /// Ends a straight-line region: with overlap scheduling the region
    /// costs the maximum of the three unit streams (§6 item 2); without it,
    /// their sum.
    pub(crate) fn flush(&mut self, extra: u64) {
        let b = self.bucket;
        let region = if self.cfg.overlap {
            b.int.max(b.fp).max(b.mem)
        } else {
            b.int + b.fp + b.mem
        };
        self.stats.cycles += (region + extra) as f64;
        self.bucket = Bucket::default();
    }

    // ------------------------------------------------------------------
    // intrinsics
    // ------------------------------------------------------------------

    pub(crate) fn intrinsic(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<Option<Intrinsic>, SimError> {
        let need = |n: usize| -> Result<(), SimError> {
            if args.len() != n {
                Err(SimError::new(format!(
                    "intrinsic `{name}` expects {n} argument(s)"
                )))
            } else {
                Ok(())
            }
        };
        let c = &self.cfg.costs;
        Ok(match name {
            "print_int" => {
                need(1)?;
                let line = format!("{}", args[0].as_int());
                self.stats.output.push(line);
                Some(Intrinsic::Void)
            }
            "print_float" | "print_double" => {
                need(1)?;
                let line = format!("{:.6}", args[0].as_float());
                self.stats.output.push(line);
                Some(Intrinsic::Void)
            }
            "sqrt" | "sqrtf" => {
                need(1)?;
                self.bucket.fp += c.fp_div;
                self.stats.flops += 1;
                Some(Intrinsic::Value(Value::Float(args[0].as_float().sqrt())))
            }
            "fabs" | "fabsf" => {
                need(1)?;
                self.bucket.fp += c.fp_op;
                self.stats.flops += 1;
                Some(Intrinsic::Value(Value::Float(args[0].as_float().abs())))
            }
            "abs" => {
                need(1)?;
                self.bucket.int += c.int_alu;
                Some(Intrinsic::Value(Value::Int(args[0].as_int().abs())))
            }
            _ => None,
        })
    }
}

pub(crate) enum Intrinsic {
    Void,
    Value(Value),
}

impl Intrinsic {
    pub(crate) fn into_value(self) -> Option<Value> {
        match self {
            Intrinsic::Void => None,
            Intrinsic::Value(v) => Some(v),
        }
    }
}

fn align_up(x: u32, a: u32) -> u32 {
    x.div_ceil(a) * a
}

pub(crate) fn coerce(v: Value, kind: ScalarType) -> Value {
    match kind {
        ScalarType::Float | ScalarType::Double => normalize(Value::Float(v.as_float()), kind),
        _ => normalize(Value::Int(v.as_int()), kind),
    }
}

pub(crate) fn collect_sections(pool: &ExprPool, e: ExprId, out: &mut Vec<ExprId>) {
    if matches!(pool[e], Expr::Section { .. }) {
        out.push(e);
        return;
    }
    for c in pool[e].child_ids() {
        collect_sections(pool, c, out);
    }
}

/// Number of vector ALU operations in a vector rhs (operations with at
/// least one section-derived operand).
pub(crate) fn count_vector_ops(pool: &ExprPool, e: ExprId) -> u64 {
    match pool[e] {
        Expr::Binary { lhs, rhs, .. } => {
            let mine = u64::from(pool.has_section(lhs) || pool.has_section(rhs));
            mine + count_vector_ops(pool, lhs) + count_vector_ops(pool, rhs)
        }
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => {
            u64::from(pool.has_section(arg)) + count_vector_ops(pool, arg)
        }
        _ => 0,
    }
}
