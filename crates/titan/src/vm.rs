//! The register-bytecode VM.
//!
//! A dispatch loop over [`crate::bytecode::Instr`] that shares the
//! interpreter's memory image, frames, cost buckets and statistics, so
//! every charge lands in the same order and every measured number is
//! byte-for-byte identical to the tree-walking engine. Vector plans run
//! as chunked kernels: each section is gathered into a contiguous
//! `Vec<i64>`/`Vec<f64>` buffer, operations are tight element loops the
//! host compiler can autovectorize, and the result is scattered back in
//! one pass — with a pre-flight range check falling back to a per-element
//! slow path that reproduces the interpreter's error behavior exactly.

use crate::bytecode::{BcProc, BcProgram, Callee, Instr, VStep, VecPlan, NO_REG};
use crate::interp::{coerce, Bucket, Frame, SimError, Simulator, MEM_SIZE};
use titanc_il::fold::{eval_binop, eval_cast, eval_unop, Value};
use titanc_il::{BinOp, ScalarType, StmtKind, UnOp};

/// A vector value during kernel execution: every element in the integer
/// or the float domain (mirroring [`Value`] element-wise).
enum VBuf {
    I(Vec<i64>),
    F(Vec<f64>),
}

/// One live procedure activation of the VM.
struct Act {
    frame: Frame,
    proc: usize,
    pc: usize,
    /// Cycle snapshots for parallel/spread regions.
    snaps: Vec<f64>,
    /// Saved (bucket, loads, flops) for quiet regions.
    quiet: Vec<(Bucket, u64, u64)>,
    /// Call-data index of the in-flight `Call` instruction.
    pending_call: u32,
}

impl Act {
    fn new(frame: Frame, proc: usize, bcp: &BcProc) -> Act {
        Act {
            frame,
            proc,
            pc: 0,
            snaps: vec![0.0f64; bcp.num_snaps as usize],
            quiet: Vec::new(),
            pending_call: 0,
        }
    }
}

impl<'p> Simulator<'p> {
    fn ensure_bc(&mut self) {
        if self.bc.is_none() {
            self.bc = Some(std::rc::Rc::new(crate::bytecode::compile(self.prog)));
        }
    }

    /// VM entry point: resolves `entry` like the interpreter's `call`
    /// (intrinsics first, then procedures by name).
    pub(crate) fn vm_entry(
        &mut self,
        entry: &str,
        args: &[Value],
    ) -> Result<Option<Value>, SimError> {
        self.ensure_bc();
        if let Some(v) = self.intrinsic(entry, args)? {
            return Ok(v.into_value());
        }
        let idx = self
            .proc_by_name(entry)
            .ok_or_else(|| SimError::new(format!("undefined procedure `{entry}`")))?
            .0;
        let bc = self.bc.clone().expect("bytecode compiled");
        let frame = self.vm_prologue(&bc, idx, args)?;
        self.vm_exec(frame, idx, &bc)
    }

    /// Call prologue, in the interpreter's exact order: argument-count
    /// check, depth guard, call charge, frame setup, parameter binding.
    fn vm_prologue(
        &mut self,
        bc: &BcProgram,
        idx: usize,
        args: &[Value],
    ) -> Result<Frame, SimError> {
        let proc = &self.prog.procs[idx];
        if proc.params.len() != args.len() {
            return Err(SimError::new(format!(
                "procedure `{}` expects {} arguments, got {}",
                proc.name,
                proc.params.len(),
                args.len()
            )));
        }
        self.depth += 1;
        if self.depth > 512 {
            self.depth -= 1;
            return Err(SimError::new("call depth exceeded (runaway recursion?)"));
        }
        self.charge_int(self.cfg.costs.call);
        let mut frame = self.setup_frame(idx, bc.procs[idx].num_regs as usize)?;
        self.bind_params(&mut frame, args)?;
        Ok(frame)
    }

    /// The dispatch loop. Procedure calls are iterative — an explicit
    /// activation stack instead of Rust recursion — so simulated call
    /// depth (bounded at 512 by the same guard the interpreter uses)
    /// never stresses the host stack. On error, `sp`/`depth` stay where
    /// they were, matching the interpreter's propagation.
    #[allow(clippy::too_many_lines)]
    fn vm_exec(
        &mut self,
        frame: Frame,
        idx: usize,
        bc: &BcProgram,
    ) -> Result<Option<Value>, SimError> {
        let mut acts: Vec<Act> = Vec::new();
        let mut cur = Act::new(frame, idx, &bc.procs[idx]);
        'activation: loop {
            let bcp = &bc.procs[cur.proc];
            let code = &bcp.code;
            loop {
                match code[cur.pc] {
                    Instr::Step => self.step_guard()?,
                    Instr::FlushBranch => self.flush(self.cfg.costs.branch),
                    Instr::Flush0 => self.flush(0),
                    Instr::AddForkJoin => self.stats.cycles += self.cfg.costs.fork_join as f64,
                    Instr::Const { dst, val } => cur.frame.regs[dst as usize] = val,
                    Instr::LoadVarMem { dst, var, ty } => {
                        let addr = cur.frame.addrs[var as usize].expect("memory-resident variable");
                        self.bucket.mem += self.cfg.costs.load;
                        self.stats.loads += 1;
                        cur.frame.regs[dst as usize] = self.read_mem(addr, ty)?;
                    }
                    Instr::StoreVarMem { var, ty, src } => {
                        let addr = cur.frame.addrs[var as usize].expect("memory-resident variable");
                        let v = coerce(cur.frame.regs[src as usize], ty);
                        self.bucket.mem += self.cfg.costs.store;
                        self.stats.stores += 1;
                        self.write_mem(addr, ty, v)?;
                    }
                    Instr::StoreVarReg { var, ty, src } => {
                        let v = coerce(cur.frame.regs[src as usize], ty);
                        self.charge_int(self.cfg.costs.int_alu);
                        cur.frame.regs[var as usize] = v;
                    }
                    Instr::AddrOfVar { dst, var } => {
                        self.charge_int(self.cfg.costs.int_alu);
                        let addr = cur.frame.addrs[var as usize].expect("memory-resident variable");
                        cur.frame.regs[dst as usize] = Value::Int(addr as i64);
                    }
                    Instr::LoadMem {
                        dst,
                        addr,
                        ty,
                        volatile,
                    } => {
                        let a = cur.frame.regs[addr as usize].as_int() as u32;
                        if volatile {
                            if let Some(next) = self.volatile_script.pop_front() {
                                self.write_mem(a, ty, coerce(Value::Int(next), ty))?;
                            }
                        }
                        self.bucket.mem += self.cfg.costs.load;
                        self.stats.loads += 1;
                        cur.frame.regs[dst as usize] = self.read_mem(a, ty)?;
                    }
                    Instr::StoreMem { addr, ty, src } => {
                        let a = cur.frame.regs[addr as usize].as_int() as u32;
                        let v = coerce(cur.frame.regs[src as usize], ty);
                        self.bucket.mem += self.cfg.costs.store;
                        self.stats.stores += 1;
                        self.write_mem(a, ty, v)?;
                    }
                    Instr::Un { dst, op, ty, src } => {
                        let a = cur.frame.regs[src as usize];
                        self.charge_op_cost(ty, false);
                        cur.frame.regs[dst as usize] = eval_unop(op, ty, a);
                    }
                    Instr::Bin { dst, op, ty, a, b } => {
                        let x = cur.frame.regs[a as usize];
                        let y = cur.frame.regs[b as usize];
                        self.charge_binop_cost(op, ty);
                        cur.frame.regs[dst as usize] = eval_binop(op, ty, x, y)
                            .ok_or_else(|| SimError::new("division by zero"))?;
                    }
                    Instr::CastOp { dst, to, from, src } => {
                        let a = cur.frame.regs[src as usize];
                        if to.is_float() != from.is_float() {
                            self.bucket.fp += self.cfg.costs.fp_cvt;
                        } else {
                            self.charge_int(self.cfg.costs.int_alu);
                        }
                        cur.frame.regs[dst as usize] = eval_cast(to, from, a);
                    }
                    Instr::Jump { target } => {
                        cur.pc = target as usize;
                        continue;
                    }
                    Instr::JumpIfZero { cond, target } => {
                        if !cur.frame.regs[cond as usize].is_truthy() {
                            cur.pc = target as usize;
                            continue;
                        }
                    }
                    Instr::DoEnter {
                        iv,
                        hi,
                        step,
                        lo_src,
                        hi_src,
                        step_src,
                    } => {
                        let lo_v = cur.frame.regs[lo_src as usize].as_int();
                        let hi_v = cur.frame.regs[hi_src as usize].as_int();
                        let st_v = cur.frame.regs[step_src as usize].as_int();
                        if st_v == 0 {
                            return Err(SimError::new("DO loop with zero step"));
                        }
                        cur.frame.regs[iv as usize] = Value::Int(lo_v);
                        cur.frame.regs[hi as usize] = Value::Int(hi_v);
                        cur.frame.regs[step as usize] = Value::Int(st_v);
                    }
                    Instr::DoHead { iv, hi, step, exit } => {
                        self.step_guard()?;
                        let ivv = cur.frame.regs[iv as usize].as_int();
                        let hiv = cur.frame.regs[hi as usize].as_int();
                        let stv = cur.frame.regs[step as usize].as_int();
                        let cont = if stv > 0 { ivv <= hiv } else { ivv >= hiv };
                        self.charge_int(2 * self.cfg.costs.int_alu);
                        self.flush(self.cfg.costs.branch);
                        if !cont {
                            cur.pc = exit as usize;
                            continue;
                        }
                    }
                    Instr::DoNext { iv, step, head } => {
                        let v = cur.frame.regs[iv as usize]
                            .as_int()
                            .wrapping_add(cur.frame.regs[step as usize].as_int());
                        cur.frame.regs[iv as usize] = Value::Int(v);
                        cur.pc = head as usize;
                        continue;
                    }
                    Instr::ParEnter { slot } => {
                        self.flush(0);
                        cur.snaps[slot as usize] = self.stats.cycles;
                    }
                    Instr::ParExit { slot } => {
                        self.flush(0);
                        let before = cur.snaps[slot as usize];
                        let delta = self.stats.cycles - before;
                        let procs = f64::from(self.cfg.num_procs.max(1));
                        self.stats.cycles =
                            before + delta / procs + self.cfg.costs.fork_join as f64;
                    }
                    Instr::SpreadEnter { slot } => cur.snaps[slot as usize] = self.stats.cycles,
                    Instr::SpreadExit { slot } => {
                        self.flush(0);
                        let before = cur.snaps[slot as usize];
                        let delta = self.stats.cycles - before;
                        let procs = f64::from(self.cfg.num_procs.max(1));
                        self.stats.cycles = before + delta / procs;
                    }
                    Instr::QuietSave => {
                        cur.quiet
                            .push((self.bucket, self.stats.loads, self.stats.flops));
                    }
                    Instr::QuietRestore => {
                        let (b, loads, flops) = cur.quiet.pop().expect("balanced quiet region");
                        self.bucket = b;
                        self.stats.loads = loads;
                        self.stats.flops = flops;
                    }
                    Instr::Call { data } => {
                        let cd = &bcp.calls[data as usize];
                        let argv: Vec<Value> = cd
                            .args
                            .iter()
                            .map(|&r| cur.frame.regs[r as usize])
                            .collect();
                        match cd.callee {
                            Callee::Intrinsic => {
                                let ret = self
                                    .intrinsic(&cd.name, &argv)?
                                    .expect("resolved intrinsic")
                                    .into_value();
                                if cd.dst != NO_REG {
                                    let v = ret.ok_or_else(|| {
                                        SimError::new(format!(
                                            "procedure `{}` returned no value",
                                            cd.name
                                        ))
                                    })?;
                                    cur.frame.regs[cd.dst as usize] = v;
                                }
                            }
                            Callee::Unknown => {
                                return Err(SimError::new(format!(
                                    "undefined procedure `{}`",
                                    cd.name
                                )));
                            }
                            Callee::Proc(i) => {
                                let i = i as usize;
                                let callee_frame = self.vm_prologue(bc, i, &argv)?;
                                let callee = Act::new(callee_frame, i, &bc.procs[i]);
                                cur.pending_call = data;
                                acts.push(std::mem::replace(&mut cur, callee));
                                continue 'activation;
                            }
                        }
                    }
                    Instr::Ret { src } => {
                        let ret = if src == NO_REG {
                            None
                        } else {
                            Some(cur.frame.regs[src as usize])
                        };
                        // callee epilogue, same order as the interpreter
                        self.sp = cur.frame.saved_sp;
                        self.depth -= 1;
                        self.charge_int(self.cfg.costs.call / 2);
                        match acts.pop() {
                            None => return Ok(ret),
                            Some(caller) => {
                                cur = caller;
                                let cd = &bc.procs[cur.proc].calls[cur.pending_call as usize];
                                if cd.dst != NO_REG {
                                    let v = ret.ok_or_else(|| {
                                        SimError::new(format!(
                                            "procedure `{}` returned no value",
                                            cd.name
                                        ))
                                    })?;
                                    cur.frame.regs[cd.dst as usize] = v;
                                }
                                cur.pc += 1;
                                continue 'activation;
                            }
                        }
                    }
                    Instr::VecCheckLen { plan } => {
                        let p = &bcp.plans[plan as usize];
                        if cur.frame.regs[p.len as usize].as_int() < 0 {
                            return Err(SimError::new("negative vector length"));
                        }
                    }
                    Instr::VecCheckSec { plan, idx } => {
                        let p = &bcp.plans[plan as usize];
                        let len_v = cur.frame.regs[p.len as usize].as_int();
                        let l = cur.frame.regs[p.sections[idx as usize].len as usize].as_int();
                        if l != len_v {
                            return Err(SimError::new(format!(
                                "vector length mismatch: {l} vs {len_v}"
                            )));
                        }
                    }
                    Instr::VecRun { plan } => {
                        self.vec_run(&cur.frame, &bcp.plans[plan as usize])?;
                    }
                    Instr::VecDeopt { stmt } => {
                        let (lhs, rhs) = {
                            let proc = self.cur_proc(&cur.frame);
                            let StmtKind::Assign { lhs, rhs } = &proc.stmts[stmt] else {
                                unreachable!("VecDeopt lowered from an assignment")
                            };
                            (*lhs, *rhs)
                        };
                        self.exec_vector_assign(&mut cur.frame, &lhs, rhs)?;
                    }
                    Instr::Trap { msg } => {
                        return Err(SimError::new(bcp.traps[msg as usize].clone()));
                    }
                }
                cur.pc += 1;
            }
        }
    }

    // --------------------------------------------------------------
    // vector kernels
    // --------------------------------------------------------------

    fn vec_run(&mut self, frame: &Frame, plan: &VecPlan) -> Result<(), SimError> {
        let base_v = frame.regs[plan.base as usize].as_int() as u32;
        let len_v = frame.regs[plan.len as usize].as_int();
        let stride_v = frame.regs[plan.stride as usize].as_int();
        let len_u = len_v as u64; // VecCheckLen guaranteed len_v >= 0
                                  // the scratch pool is taken out of `self` for the duration of the
                                  // statement so buffers and `self.mem` borrow independently; a
                                  // steady-state vector statement allocates nothing
        let mut scratch = std::mem::take(&mut self.vscratch);
        let mut resolved = std::mem::take(&mut scratch.secs);
        resolved.clear();
        for s in &plan.sections {
            resolved.push((
                frame.regs[s.base as usize].as_int() as u32,
                frame.regs[s.stride as usize].as_int(),
                s.ty,
            ));
        }
        // vector cost model, identical to the interpreter
        let c = &self.cfg.costs;
        self.stats.vector_instrs += plan.n_instr;
        self.stats.vector_elems += len_u * plan.n_instr;
        self.stats.cycles += (plan.n_instr * (c.vector_startup + c.vector_per_elem * len_u)) as f64;
        if plan.kind.is_float() {
            self.stats.flops += plan.ops * len_u;
        }
        let r = if len_v == 0 {
            Ok(())
        } else {
            let n = len_v as usize;
            let fast = range_ok(base_v, stride_v, len_v, plan.kind.size())
                && resolved
                    .iter()
                    .all(|&(b, st, ty)| range_ok(b, st, len_v, ty.size()));
            if fast {
                self.vec_kernel(frame, plan, base_v, stride_v, &resolved, n, &mut scratch)
            } else {
                self.vec_slow(frame, plan, base_v, stride_v, &resolved, len_v)
            }
        };
        scratch.secs = resolved;
        self.vscratch = scratch;
        r
    }

    /// Chunked kernel path: gather sections into contiguous buffers, run
    /// tight element loops, scatter the result. Every access was
    /// range-checked up front, and all buffers come from the reusable
    /// scratch pool — a steady-state kernel allocates nothing.
    #[allow(clippy::too_many_arguments)]
    fn vec_kernel(
        &mut self,
        frame: &Frame,
        plan: &VecPlan,
        base: u32,
        stride: i64,
        resolved: &[(u32, i64, ScalarType)],
        n: usize,
        scratch: &mut Scratch,
    ) -> Result<(), SimError> {
        let mut stack = std::mem::take(&mut scratch.stack);
        let mut fail = None;
        for step in &plan.steps {
            match *step {
                VStep::Sec(i) => {
                    let (b, st, ty) = resolved[i as usize];
                    stack.push(self.load_section(b, st, ty, n, scratch));
                }
                VStep::Splat(r) => stack.push(match frame.regs[r as usize] {
                    Value::Int(v) => {
                        let mut o = scratch.take_i(n);
                        o.resize(n, v);
                        VBuf::I(o)
                    }
                    Value::Float(f) => {
                        let mut o = scratch.take_f(n);
                        o.resize(n, f);
                        VBuf::F(o)
                    }
                }),
                VStep::Un { op, ty } => {
                    let a = stack.pop().expect("kernel operand");
                    stack.push(vec_un(op, ty, a, scratch));
                }
                VStep::Bin { op, ty } => {
                    let b = stack.pop().expect("kernel operand");
                    let a = stack.pop().expect("kernel operand");
                    match vec_bin(op, ty, a, b, scratch) {
                        Ok(v) => stack.push(v),
                        Err(e) => {
                            fail = Some(e);
                            break;
                        }
                    }
                }
                VStep::Cast { to, .. } => {
                    let a = stack.pop().expect("kernel operand");
                    stack.push(vec_cast(to, a, scratch));
                }
            }
        }
        let r = match fail {
            None => {
                let root = stack.pop().expect("kernel result");
                self.store_section(base, stride, plan.kind, &root, n, scratch);
                scratch.give(root);
                Ok(())
            }
            Some(e) => Err(e),
        };
        for b in stack.drain(..) {
            scratch.give(b);
        }
        scratch.stack = stack;
        r
    }

    /// Gathers one section into a contiguous buffer (the `Value` domain of
    /// its element type), with a bounds-check-free contiguous fast case.
    fn load_section(
        &self,
        b: u32,
        st: i64,
        ty: ScalarType,
        n: usize,
        scratch: &mut Scratch,
    ) -> VBuf {
        let start = b as usize;
        let contiguous = st == ty.size();
        match ty {
            ScalarType::Char => {
                let mut out = scratch.take_i(n);
                if contiguous {
                    out.extend(self.mem[start..start + n].iter().map(|&x| x as i8 as i64));
                } else {
                    for k in 0..n {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        out.push(self.mem[i] as i8 as i64);
                    }
                }
                VBuf::I(out)
            }
            ScalarType::Int => {
                let mut out = scratch.take_i(n);
                if contiguous {
                    out.extend(
                        self.mem[start..start + n * 4]
                            .chunks_exact(4)
                            .map(|ch| i32::from_le_bytes(ch.try_into().unwrap()) as i64),
                    );
                } else {
                    for k in 0..n {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        out.push(i32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as i64);
                    }
                }
                VBuf::I(out)
            }
            ScalarType::Ptr => {
                let mut out = scratch.take_i(n);
                if contiguous {
                    out.extend(
                        self.mem[start..start + n * 4]
                            .chunks_exact(4)
                            .map(|ch| u32::from_le_bytes(ch.try_into().unwrap()) as i64),
                    );
                } else {
                    for k in 0..n {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        out.push(u32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as i64);
                    }
                }
                VBuf::I(out)
            }
            ScalarType::Float => {
                let mut out = scratch.take_f(n);
                if contiguous {
                    out.extend(
                        self.mem[start..start + n * 4]
                            .chunks_exact(4)
                            .map(|ch| f32::from_le_bytes(ch.try_into().unwrap()) as f64),
                    );
                } else {
                    for k in 0..n {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        out.push(f32::from_le_bytes(self.mem[i..i + 4].try_into().unwrap()) as f64);
                    }
                }
                VBuf::F(out)
            }
            ScalarType::Double => {
                let mut out = scratch.take_f(n);
                if contiguous {
                    out.extend(
                        self.mem[start..start + n * 8]
                            .chunks_exact(8)
                            .map(|ch| f64::from_le_bytes(ch.try_into().unwrap())),
                    );
                } else {
                    for k in 0..n {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        out.push(f64::from_le_bytes(self.mem[i..i + 8].try_into().unwrap()));
                    }
                }
                VBuf::F(out)
            }
        }
    }

    /// Scatters the kernel result, writing the same bytes `write_mem`
    /// would after `coerce(v, kind)`.
    #[allow(clippy::too_many_arguments)]
    fn store_section(
        &mut self,
        b: u32,
        st: i64,
        kind: ScalarType,
        root: &VBuf,
        n: usize,
        scratch: &mut Scratch,
    ) {
        match (kind.is_float(), root) {
            (true, VBuf::F(v)) => self.store_f(b, st, kind, v, n),
            (true, VBuf::I(v)) => {
                let mut tmp = scratch.take_f(n);
                tmp.extend(v.iter().map(|&x| x as f64));
                self.store_f(b, st, kind, &tmp, n);
                scratch.f.push(tmp);
            }
            (false, VBuf::I(v)) => self.store_i(b, st, kind, v, n),
            (false, VBuf::F(v)) => {
                let mut tmp = scratch.take_i(n);
                tmp.extend(v.iter().map(|&x| x as i64));
                self.store_i(b, st, kind, &tmp, n);
                scratch.i.push(tmp);
            }
        }
    }

    fn store_f(&mut self, b: u32, st: i64, kind: ScalarType, vals: &[f64], n: usize) {
        let start = b as usize;
        let contiguous = st == kind.size();
        match kind {
            ScalarType::Float => {
                if contiguous {
                    for (ch, &v) in self.mem[start..start + n * 4].chunks_exact_mut(4).zip(vals) {
                        ch.copy_from_slice(&(v as f32).to_le_bytes());
                    }
                } else {
                    for (k, &v) in vals.iter().enumerate().take(n) {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        self.mem[i..i + 4].copy_from_slice(&(v as f32).to_le_bytes());
                    }
                }
            }
            _ => {
                if contiguous {
                    for (ch, &v) in self.mem[start..start + n * 8].chunks_exact_mut(8).zip(vals) {
                        ch.copy_from_slice(&v.to_le_bytes());
                    }
                } else {
                    for (k, &v) in vals.iter().enumerate().take(n) {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        self.mem[i..i + 8].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
    }

    fn store_i(&mut self, b: u32, st: i64, kind: ScalarType, vals: &[i64], n: usize) {
        let start = b as usize;
        let contiguous = st == kind.size();
        match kind {
            ScalarType::Char => {
                if contiguous {
                    for (m, &v) in self.mem[start..start + n].iter_mut().zip(vals) {
                        *m = v as u8;
                    }
                } else {
                    for (k, &v) in vals.iter().enumerate().take(n) {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        self.mem[i] = v as u8;
                    }
                }
            }
            // Int and Ptr both store the low 32 bits little-endian
            _ => {
                if contiguous {
                    for (ch, &v) in self.mem[start..start + n * 4].chunks_exact_mut(4).zip(vals) {
                        ch.copy_from_slice(&(v as i32).to_le_bytes());
                    }
                } else {
                    for (k, &v) in vals.iter().enumerate().take(n) {
                        let i = (b as i64 + k as i64 * st) as u32 as usize;
                        self.mem[i..i + 4].copy_from_slice(&(v as i32).to_le_bytes());
                    }
                }
            }
        }
    }

    /// Per-element fallback, bit-identical to the interpreter's element
    /// loop (same traversal, same checked memory ops, same error order).
    fn vec_slow(
        &mut self,
        frame: &Frame,
        plan: &VecPlan,
        base: u32,
        stride: i64,
        resolved: &[(u32, i64, ScalarType)],
        len_v: i64,
    ) -> Result<(), SimError> {
        let mut results = Vec::with_capacity(len_v as usize);
        let mut stack: Vec<Value> = Vec::with_capacity(4);
        for k in 0..len_v {
            stack.clear();
            for step in &plan.steps {
                match *step {
                    VStep::Sec(i) => {
                        let (b, st, ty) = resolved[i as usize];
                        let addr = (b as i64 + k * st) as u32;
                        stack.push(self.read_mem(addr, ty)?);
                    }
                    VStep::Splat(r) => stack.push(frame.regs[r as usize]),
                    VStep::Un { op, ty } => {
                        let a = stack.pop().expect("element operand");
                        stack.push(eval_unop(op, ty, a));
                    }
                    VStep::Bin { op, ty } => {
                        let b = stack.pop().expect("element operand");
                        let a = stack.pop().expect("element operand");
                        stack.push(eval_binop(op, ty, a, b).ok_or_else(|| {
                            SimError::new("division by zero in vector statement")
                        })?);
                    }
                    VStep::Cast { to, from } => {
                        let a = stack.pop().expect("element operand");
                        stack.push(eval_cast(to, from, a));
                    }
                }
            }
            results.push(coerce(stack.pop().expect("element result"), plan.kind));
        }
        for (k, v) in results.into_iter().enumerate() {
            let addr = (base as i64 + k as i64 * stride) as u32;
            self.write_mem(addr, plan.kind, v)?;
        }
        Ok(())
    }
}

/// Reusable kernel buffers. Gather/compute/scatter cycles return every
/// buffer here, so steady-state vector execution allocates nothing —
/// important for strip-mined loops where each kernel is only a few dozen
/// elements.
#[derive(Default)]
pub(crate) struct Scratch {
    i: Vec<Vec<i64>>,
    f: Vec<Vec<f64>>,
    /// Resolved `(base, stride, type)` sections of the current statement.
    secs: Vec<(u32, i64, ScalarType)>,
    /// The kernel's operand stack.
    stack: Vec<VBuf>,
}

impl Scratch {
    fn take_i(&mut self, n: usize) -> Vec<i64> {
        let mut v = self.i.pop().unwrap_or_default();
        v.clear();
        v.reserve(n);
        v
    }

    fn take_f(&mut self, n: usize) -> Vec<f64> {
        let mut v = self.f.pop().unwrap_or_default();
        v.clear();
        v.reserve(n);
        v
    }

    fn give(&mut self, b: VBuf) {
        match b {
            VBuf::I(v) => self.i.push(v),
            VBuf::F(v) => self.f.push(v),
        }
    }
}

/// True when every element of a section (or the store) lies inside
/// simulated memory — the precondition for the unchecked kernel path. In
/// range, `(base as i64 + k*stride) as u32` equals the i64 address, so
/// the kernel and the interpreter touch identical bytes.
fn range_ok(base: u32, stride: i64, len: i64, size: i64) -> bool {
    let first = base as i64;
    let Some(span) = (len - 1).checked_mul(stride) else {
        return false;
    };
    let Some(last) = first.checked_add(span) else {
        return false;
    };
    let lo = first.min(last);
    let hi = first.max(last).saturating_add(size);
    lo >= 4 && hi <= MEM_SIZE as i64
}

/// Moves a buffer into the float domain (recycling an integer source).
fn to_f(b: VBuf, s: &mut Scratch) -> Vec<f64> {
    match b {
        VBuf::F(v) => v,
        VBuf::I(v) => {
            let mut o = s.take_f(v.len());
            o.extend(v.iter().map(|&x| x as f64));
            s.i.push(v);
            o
        }
    }
}

/// Moves a buffer into the integer domain (recycling a float source).
fn to_i(b: VBuf, s: &mut Scratch) -> Vec<i64> {
    match b {
        VBuf::I(v) => v,
        VBuf::F(v) => {
            let mut o = s.take_i(v.len());
            o.extend(v.iter().map(|&x| x as i64));
            s.f.push(v);
            o
        }
    }
}

/// Applies `normalize(Value::Int(x), ty)` element-wise.
fn norm_i(ty: ScalarType, v: &mut [i64]) {
    match ty {
        ScalarType::Char => {
            for x in v {
                *x = *x as i8 as i64;
            }
        }
        ScalarType::Int => {
            for x in v {
                *x = *x as i32 as i64;
            }
        }
        ScalarType::Ptr => {
            for x in v {
                *x = *x as u32 as i64;
            }
        }
        _ => {}
    }
}

/// Rounds every element through f32, as `normalize` does for `Float`.
fn norm_f(ty: ScalarType, v: &mut [f64]) {
    if ty == ScalarType::Float {
        for x in v {
            *x = *x as f32 as f64;
        }
    }
}

/// In-place element-wise float arithmetic; the closure is monomorphized
/// per call site so the loop compiles to straight vector code.
fn arith_f(
    mut x: Vec<f64>,
    y: Vec<f64>,
    ty: ScalarType,
    s: &mut Scratch,
    f: impl Fn(f64, f64) -> f64,
) -> VBuf {
    for (p, &q) in x.iter_mut().zip(&y) {
        *p = f(*p, q);
    }
    norm_f(ty, &mut x);
    s.f.push(y);
    VBuf::F(x)
}

/// Element-wise float comparison into a fresh integer buffer (raw 0/1,
/// as `eval_binop` returns for comparisons).
fn cmp_f(x: Vec<f64>, y: Vec<f64>, s: &mut Scratch, f: impl Fn(f64, f64) -> bool) -> VBuf {
    let mut o = s.take_i(x.len());
    o.extend(x.iter().zip(&y).map(|(&p, &q)| i64::from(f(p, q))));
    s.f.push(x);
    s.f.push(y);
    VBuf::I(o)
}

/// In-place element-wise integer arithmetic.
fn arith_i(
    mut x: Vec<i64>,
    y: Vec<i64>,
    ty: ScalarType,
    s: &mut Scratch,
    f: impl Fn(i64, i64) -> i64,
) -> VBuf {
    for (p, &q) in x.iter_mut().zip(&y) {
        *p = f(*p, q);
    }
    norm_i(ty, &mut x);
    s.i.push(y);
    VBuf::I(x)
}

/// Element-wise integer comparison (raw 0/1).
fn cmp_i(x: Vec<i64>, y: Vec<i64>, s: &mut Scratch, f: impl Fn(i64, i64) -> bool) -> VBuf {
    let mut o = s.take_i(x.len());
    o.extend(x.iter().zip(&y).map(|(&p, &q)| i64::from(f(p, q))));
    s.i.push(x);
    s.i.push(y);
    VBuf::I(o)
}

/// Element-wise `eval_unop`, in place where the domain allows.
fn vec_un(op: UnOp, ty: ScalarType, a: VBuf, s: &mut Scratch) -> VBuf {
    match op {
        UnOp::Neg if ty.is_float() => {
            let mut v = to_f(a, s);
            for x in &mut v {
                *x = -*x;
            }
            norm_f(ty, &mut v);
            VBuf::F(v)
        }
        UnOp::Neg => {
            let mut v = to_i(a, s);
            for x in &mut v {
                *x = x.wrapping_neg();
            }
            norm_i(ty, &mut v);
            VBuf::I(v)
        }
        UnOp::Not => match a {
            VBuf::I(mut v) => {
                for x in &mut v {
                    *x = i64::from(*x == 0);
                }
                VBuf::I(v)
            }
            VBuf::F(v) => {
                let mut o = s.take_i(v.len());
                o.extend(v.iter().map(|&x| i64::from(x == 0.0)));
                s.f.push(v);
                VBuf::I(o)
            }
        },
        UnOp::BitNot => {
            let mut v = to_i(a, s);
            for x in &mut v {
                *x = !*x;
            }
            norm_i(ty, &mut v);
            VBuf::I(v)
        }
    }
}

/// Element-wise `eval_cast` (which only looks at the target type).
fn vec_cast(to: ScalarType, a: VBuf, s: &mut Scratch) -> VBuf {
    if to.is_float() {
        let mut v = to_f(a, s);
        norm_f(to, &mut v);
        VBuf::F(v)
    } else {
        let mut v = to_i(a, s);
        norm_i(to, &mut v);
        VBuf::I(v)
    }
}

/// Element-wise `eval_binop` as tight single-domain loops.
fn vec_bin(op: BinOp, ty: ScalarType, a: VBuf, b: VBuf, s: &mut Scratch) -> Result<VBuf, SimError> {
    if ty.is_float() {
        let x = to_f(a, s);
        let y = to_f(b, s);
        Ok(match op {
            BinOp::Add => arith_f(x, y, ty, s, |p, q| p + q),
            BinOp::Sub => arith_f(x, y, ty, s, |p, q| p - q),
            BinOp::Mul => arith_f(x, y, ty, s, |p, q| p * q),
            BinOp::Div => arith_f(x, y, ty, s, |p, q| p / q),
            BinOp::Min => arith_f(x, y, ty, s, f64::min),
            BinOp::Max => arith_f(x, y, ty, s, f64::max),
            BinOp::Eq => cmp_f(x, y, s, |p, q| p == q),
            BinOp::Ne => cmp_f(x, y, s, |p, q| p != q),
            BinOp::Lt => cmp_f(x, y, s, |p, q| p < q),
            BinOp::Le => cmp_f(x, y, s, |p, q| p <= q),
            BinOp::Gt => cmp_f(x, y, s, |p, q| p > q),
            BinOp::Ge => cmp_f(x, y, s, |p, q| p >= q),
            // Rem/shift/bitwise on floats fold to None, which the
            // interpreter reports as a vector division by zero
            _ => return Err(SimError::new("division by zero in vector statement")),
        })
    } else {
        let mut x = to_i(a, s);
        let y = to_i(b, s);
        Ok(match op {
            BinOp::Add => arith_i(x, y, ty, s, i64::wrapping_add),
            BinOp::Sub => arith_i(x, y, ty, s, i64::wrapping_sub),
            BinOp::Mul => arith_i(x, y, ty, s, i64::wrapping_mul),
            BinOp::Div | BinOp::Rem => {
                for (p, &q) in x.iter_mut().zip(&y) {
                    if q == 0 {
                        return Err(SimError::new("division by zero in vector statement"));
                    }
                    *p = if matches!(op, BinOp::Div) {
                        p.wrapping_div(q)
                    } else {
                        p.wrapping_rem(q)
                    };
                }
                norm_i(ty, &mut x);
                s.i.push(y);
                VBuf::I(x)
            }
            BinOp::Eq => cmp_i(x, y, s, |p, q| p == q),
            BinOp::Ne => cmp_i(x, y, s, |p, q| p != q),
            BinOp::Lt => cmp_i(x, y, s, |p, q| p < q),
            BinOp::Le => cmp_i(x, y, s, |p, q| p <= q),
            BinOp::Gt => cmp_i(x, y, s, |p, q| p > q),
            BinOp::Ge => cmp_i(x, y, s, |p, q| p >= q),
            BinOp::BitAnd => arith_i(x, y, ty, s, |p, q| p & q),
            BinOp::BitOr => arith_i(x, y, ty, s, |p, q| p | q),
            BinOp::BitXor => arith_i(x, y, ty, s, |p, q| p ^ q),
            BinOp::Shl => arith_i(x, y, ty, s, |p, q| p.wrapping_shl((q & 31) as u32)),
            BinOp::Shr => arith_i(x, y, ty, s, |p, q| p.wrapping_shr((q & 31) as u32)),
            BinOp::Min => arith_i(x, y, ty, s, |p, q| p.min(q)),
            BinOp::Max => arith_i(x, y, ty, s, |p, q| p.max(q)),
        })
    }
}
