//! Inliner tests: §7 mechanics plus §9's driving example.

use crate::{externalize_statics, inline_program, link_and_inline, InlineOptions};
use titanc_il::{pretty_proc, Catalog, Program, ScalarType, StmtKind};
use titanc_lower::compile_to_il;
use titanc_titan::MachineConfig;

fn count_calls(prog: &Program, name: &str) -> usize {
    let mut n = 0;
    prog.proc_by_name(name)
        .unwrap()
        .for_each_stmt(&mut |_, kind| {
            if matches!(kind, StmtKind::Call { .. }) {
                n += 1;
            }
        });
    n
}

fn equivalent(src: &str, globals: &[(&str, ScalarType, u32)]) -> (Program, Program) {
    let base = compile_to_il(src).unwrap();
    let mut inl = base.clone();
    inline_program(&mut inl, &InlineOptions::default());
    let b = titanc_titan::observe(&base, MachineConfig::default(), "main", globals)
        .unwrap()
        .0;
    let a = titanc_titan::observe(&inl, MachineConfig::default(), "main", globals)
        .unwrap_or_else(|e| {
            panic!(
                "inlined program failed: {e}\n{}",
                pretty_proc(inl.proc_by_name("main").unwrap())
            )
        })
        .0;
    assert_eq!(b, a);
    (base, inl)
}

#[test]
fn inlines_simple_function() {
    let (_b, inl) = equivalent(
        "int square(int x) { return x * x; }\nint main(void) { return square(7); }",
        &[],
    );
    assert_eq!(count_calls(&inl, "main"), 0);
    let text = pretty_proc(inl.proc_by_name("main").unwrap());
    assert!(text.contains("in_x"), "parameter temp naming: {text}");
    assert!(text.contains("lb_"), "landing label: {text}");
}

#[test]
fn inlines_daxpy_shape() {
    // the §9 example: the inlined body must contain the early-return
    // branches as gotos to the landing label
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void)
{
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
"#;
    let (_b, inl) = equivalent(src, &[("a", ScalarType::Float, 100)]);
    assert_eq!(count_calls(&inl, "main"), 0);
    let text = pretty_proc(inl.proc_by_name("main").unwrap());
    assert!(text.contains("in_alpha"), "{text}");
    assert!(text.contains("goto lb_"), "{text}");
}

#[test]
fn return_value_flows_through_temp() {
    let (_b, inl) = equivalent(
        "int add(int a, int b) { return a + b; }\nint main(void) { int r; r = add(40, 2); return r; }",
        &[],
    );
    let text = pretty_proc(inl.proc_by_name("main").unwrap());
    assert!(text.contains("ret_add"), "{text}");
}

#[test]
fn multiple_returns_merge() {
    let src = r#"
int sign(int x) { if (x > 0) return 1; if (x < 0) return -1; return 0; }
int main(void) { return sign(-5) + sign(9) + sign(0); }
"#;
    let (_b, inl) = equivalent(src, &[]);
    assert_eq!(count_calls(&inl, "main"), 0);
}

#[test]
fn recursive_function_not_inlined() {
    let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main(void) { return fib(10); }
"#;
    let base = compile_to_il(src).unwrap();
    let mut inl = base.clone();
    let rep = inline_program(&mut inl, &InlineOptions::default());
    assert_eq!(rep.inlined, 0);
    assert!(rep.skipped_recursive > 0);
    assert!(count_calls(&inl, "main") > 0);
}

#[test]
fn mutual_recursion_not_inlined() {
    let src = r#"
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main(void) { return even(10); }
"#;
    let base = compile_to_il(src).unwrap();
    let mut inl = base.clone();
    let rep = inline_program(&mut inl, &InlineOptions::default());
    assert_eq!(rep.inlined, 0);
    assert!(rep.skipped_recursive > 0);
}

#[test]
fn nested_inlining_leaves_first() {
    // main calls outer calls leaf: both layers expand (§7 ordering)
    let src = r#"
int leaf(int x) { return x + 1; }
int outer(int x) { return leaf(x) * 2; }
int main(void) { return outer(10); }
"#;
    let (_b, inl) = equivalent(src, &[]);
    assert_eq!(
        count_calls(&inl, "main"),
        0,
        "{}",
        pretty_proc(inl.proc_by_name("main").unwrap())
    );
}

#[test]
fn statics_externalized_and_shared() {
    // counter state must be shared between the inlined copy and the
    // still-callable original (§7)
    let src = r#"
int counter(void) { static int count = 0; count++; return count; }
int twice(void) { counter(); return counter(); }
int main(void) { counter(); return twice(); }
"#;
    let base = compile_to_il(src).unwrap();
    let mut inl = base.clone();
    let rep = inline_program(&mut inl, &InlineOptions::default());
    assert_eq!(rep.statics_externalized, 1);
    assert!(rep.inlined >= 2);
    assert!(inl.global_by_name("counter.count").is_some());
    let b = titanc_titan::observe(&base, MachineConfig::default(), "main", &[])
        .unwrap()
        .0;
    let a = titanc_titan::observe(&inl, MachineConfig::default(), "main", &[])
        .unwrap()
        .0;
    assert_eq!(b, a, "shared static state (3 calls total => 3)");
    assert_eq!(a.value.unwrap().as_int(), 3);
}

#[test]
fn externalize_preserves_initializer() {
    let src = "int counter(void) { static int count = 5; count++; return count; }";
    let mut prog = compile_to_il(src).unwrap();
    externalize_statics(&mut prog);
    let g = prog.global_by_name("counter.count").unwrap();
    assert_eq!(g.init, Some(titanc_il::ConstInit::Int(5)));
}

#[test]
fn size_budget_respected() {
    let src = r#"
int big(int x)
{
    x = x + 1; x = x + 2; x = x + 3; x = x + 4; x = x + 5;
    return x;
}
int main(void) { return big(1); }
"#;
    let mut prog = compile_to_il(src).unwrap();
    let rep = inline_program(
        &mut prog,
        &InlineOptions {
            max_callee_size: 3,
            ..InlineOptions::default()
        },
    );
    assert_eq!(rep.inlined, 0);
    assert_eq!(rep.skipped_size, 1);
}

#[test]
fn growth_budget_is_per_caller() {
    // one callee, two callers: the small caller's budget rejects the
    // expansion while the large caller — whose own initial size funds a
    // bigger budget — absorbs it. Under the old whole-program pool the
    // two decisions were coupled.
    let mut callee_body = String::new();
    for i in 0..300 {
        callee_body.push_str(&format!("    x = x + {i};\n"));
    }
    let mut large_body = String::new();
    for i in 0..600 {
        large_body.push_str(&format!("    y = y + {i};\n"));
    }
    let src = format!(
        "int grow(int x)\n{{\n{callee_body}    return x;\n}}\n\
         int small(void)\n{{\n    return grow(1);\n}}\n\
         int large(void)\n{{\n    int y;\n    y = 0;\n{large_body}    return grow(y);\n}}\n"
    );
    let mut prog = compile_to_il(&src).unwrap();
    let rep = inline_program(
        &mut prog,
        &InlineOptions {
            max_growth: 2,
            max_callee_size: 100_000,
            ..InlineOptions::default()
        },
    );
    // `small` re-attempts (and re-skips) once per global round, so the
    // counter is ≥ 1 rather than exactly 1
    assert!(rep.skipped_growth >= 1, "small's budget rejects grow");
    assert_eq!(rep.inlined, 1, "large's budget absorbs grow");
    assert_eq!(count_calls(&prog, "small"), 1);
    assert_eq!(count_calls(&prog, "large"), 0);
}

#[test]
fn unknown_callees_left_alone() {
    let src = "int main(void) { print_int(3); return 0; }";
    let mut prog = compile_to_il(src).unwrap();
    let rep = inline_program(&mut prog, &InlineOptions::default());
    assert_eq!(rep.inlined, 0);
    assert_eq!(count_calls(&prog, "main"), 1);
}

#[test]
fn pointer_arguments_bind_correctly() {
    let src = r#"
void store3(int *p) { *p = 3; }
int main(void) { int x; x = 0; store3(&x); return x; }
"#;
    let (_b, inl) = equivalent(src, &[]);
    assert_eq!(count_calls(&inl, "main"), 0);
}

#[test]
fn globals_referenced_by_callee_resolve() {
    let src = r#"
int shared;
void bump(void) { shared = shared + 1; }
int main(void) { shared = 10; bump(); bump(); return shared; }
"#;
    let (_b, inl) = equivalent(src, &[("shared", ScalarType::Int, 1)]);
    assert_eq!(count_calls(&inl, "main"), 0);
}

#[test]
fn catalog_inlining_matches_same_file() {
    // "math libraries can be compiled into databases and used as a base
    // for inlining" (§7)
    let lib_src = "float scale(float x, float k) { return x * k; }";
    let lib = compile_to_il(lib_src).unwrap();
    let catalog = Catalog::from_program("mathlib", &lib);
    // round-trip the catalog through JSON, as the on-disk database would
    let catalog = Catalog::from_json(&catalog.to_json()).unwrap();

    let app_src = r#"
float scale(float x, float k);
float g_out;
int main(void) { g_out = scale(2.0f, 21.0f); return (int)g_out; }
"#;
    let mut app = compile_to_il(app_src).unwrap();
    let rep = link_and_inline(&mut app, &catalog, &InlineOptions::default());
    assert_eq!(rep.inlined, 1);
    assert_eq!(count_calls(&app, "main"), 0);
    let r = titanc_titan::observe(&app, MachineConfig::default(), "main", &[])
        .unwrap()
        .0;
    assert_eq!(r.value.unwrap().as_int(), 42);
}

#[test]
fn inlined_call_in_loop_unlocks_loop_shape() {
    // calls inhibit vectorization (§1 item 4); after inlining, the loop
    // body has no calls
    let src = r#"
float f(float x) { return x * 2.0f; }
float a[32], b[32];
int main(void)
{
    int i;
    for (i = 0; i < 32; i++)
        a[i] = f(b[i]);
    return 0;
}
"#;
    let (_b, inl) = equivalent(src, &[("a", ScalarType::Float, 32)]);
    assert_eq!(count_calls(&inl, "main"), 0);
}

#[test]
fn argument_expressions_evaluate_once() {
    // n++ as an argument must be bound exactly once
    let src = r#"
int id(int x) { return x; }
int main(void) { int n, r; n = 5; r = id(n++); return r * 100 + n; }
"#;
    let (_b, inl) = equivalent(src, &[]);
    let r = titanc_titan::observe(&inl, MachineConfig::default(), "main", &[])
        .unwrap()
        .0;
    assert_eq!(r.value.unwrap().as_int(), 506);
}

#[test]
fn daxpy_alpha_zero_specializes_after_opt() {
    // §8's example end-to-end: inline daxpy(x, y, 0.0, z), then constant
    // propagation + unreachable elimination delete the FP assignment
    let src = r#"
void daxpy1(float *x, float y, float a, float z)
{
    if (a == 0.0f)
        return;
    *x = y + a * z;
}
float cell;
int main(void)
{
    cell = 7.0f;
    daxpy1(&cell, 1.0f, 0.0f, 2.0f);
    return (int)cell;
}
"#;
    let base = compile_to_il(src).unwrap();
    let mut inl = base.clone();
    inline_program(&mut inl, &InlineOptions::default());
    let main = inl.proc_by_name("main").unwrap().clone();
    let before_len = main.len();
    let mut opt = main;
    titanc_opt::constant_propagation(&mut opt);
    titanc_opt::eliminate_dead_code(&mut opt);
    let after_len = opt.len();
    assert!(
        after_len < before_len,
        "specialization shrinks the inlined code: {} -> {}\n{}",
        before_len,
        after_len,
        pretty_proc(&opt)
    );
    let text = pretty_proc(&opt);
    assert!(!text.contains("in_a *"), "dead FP multiply removed: {text}");
}
