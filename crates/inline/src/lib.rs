//! # titanc-inline — inline expansion (§7, §8)
//!
//! Procedure calls "disrupt both vectorization and register allocation"
//! (§2); the Titan compiler therefore inlines aggressively, including from
//! *catalogs* of pre-parsed library procedures (`titanc_il::Catalog`).
//! This crate implements:
//!
//! * **call-site expansion**: parameters bind to `in_*` temporaries, the
//!   callee body is spliced in with variables and labels renamed, and
//!   `return`s become branches to a landing label — reproducing the §9
//!   listing shape exactly;
//! * **static externalization** (§7): function-scoped `static` variables
//!   are promoted to program globals named `<proc>.<var>` so values stay
//!   correct "regardless of whether the procedure is called normally or
//!   through inlining";
//! * **recursion protection and bottom-up ordering** (§7): recursive
//!   procedures are never inlined, and call sites are expanded leaves-first
//!   so inlined functions may inline other functions;
//! * **catalog linking**: `link_and_inline` pulls procedures out of a
//!   serialized catalog the way the Titan compiler used its math-library
//!   databases.
//!
//! The §8 *special inlining optimizations* (constant propagation with
//! unreachable-code elimination, dead-code elimination) live in
//! `titanc-opt` and run after this pass; the promotion of array-row
//! parameter references into standard form falls out of binding parameters
//! to `in_*` temporaries plus forward substitution.
//!
//! Bodies cross procedure boundaries by *import*: every callee statement
//! is re-stamped into the caller's statement arena and every callee
//! expression tree is copied into the caller's expression arena
//! ([`titanc_il::ExprPool::import`]), so the spliced code obeys the
//! caller's single-ownership invariants.
//!
//! ## Example
//!
//! ```
//! use titanc_inline::{inline_program, InlineOptions};
//!
//! let mut prog = titanc_lower::compile_to_il(
//!     "int square(int x) { return x * x; }\n\
//!      int main(void) { return square(6) + square(7); }",
//! ).unwrap();
//! let report = inline_program(&mut prog, &InlineOptions::default());
//! assert_eq!(report.inlined, 2);
//! let main = prog.proc_by_name("main").unwrap();
//! let mut calls = 0;
//! main.for_each_stmt(&mut |_, kind| {
//!     if matches!(kind, titanc_il::StmtKind::Call { .. }) { calls += 1; }
//! });
//! assert_eq!(calls, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use titanc_analysis::CallGraph;
use titanc_il::{
    Block, Catalog, Expr, ExprId, ExprPool, InlineEvent, InlineOutcome, LValue, LabelId, Procedure,
    Program, StmtId, StmtKind, Storage, VarId, VarInfo,
};

/// Inlining policy.
#[derive(Clone, Debug, PartialEq)]
pub struct InlineOptions {
    /// Maximum rounds of expansion (inlined bodies may contain further
    /// calls; each round expands one layer, leaves-first).
    pub max_depth: u32,
    /// Skip callees larger than this many statements.
    pub max_callee_size: usize,
    /// Per-caller IL growth budget: once a caller has grown past
    /// `max_growth ×` its own pre-inlining statement count (plus a small
    /// absolute slack for tiny callers), further sites in that caller are
    /// skipped and counted in [`InlineReport::skipped_growth`]. The
    /// budget is deliberately local to each caller — an edit to one
    /// procedure can then never flip an inline decision inside an
    /// unrelated one, which is what lets the incremental cache key each
    /// procedure on its inline dependency cone alone. `0` disables the
    /// budget.
    pub max_growth: usize,
}

impl Default for InlineOptions {
    fn default() -> InlineOptions {
        InlineOptions {
            max_depth: 4,
            max_callee_size: 400,
            max_growth: 8,
        }
    }
}

/// What the inliner did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InlineReport {
    /// Call sites expanded.
    pub inlined: usize,
    /// Call sites skipped because the callee is (mutually) recursive.
    pub skipped_recursive: usize,
    /// Call sites skipped by the size budget.
    pub skipped_size: usize,
    /// Call sites skipped by the per-caller growth budget
    /// ([`InlineOptions::max_growth`]).
    pub skipped_growth: usize,
    /// `static` variables externalized.
    pub statics_externalized: usize,
    /// Per-call-site decisions (expanded / skipped with budget state),
    /// anchored to the call's source span and a stable per-caller site
    /// ordinal. A site the round loop revisits appears once per visit
    /// under the same ordinal; consumers dedupe by site identity —
    /// `(caller, callee, span, site)`.
    pub events: Vec<InlineEvent>,
}

impl InlineReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: InlineReport) {
        self.inlined += other.inlined;
        self.skipped_recursive += other.skipped_recursive;
        self.skipped_size += other.skipped_size;
        self.skipped_growth += other.skipped_growth;
        self.statics_externalized += other.statics_externalized;
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(
    InlineReport,
    [
        inlined,
        skipped_recursive,
        skipped_size,
        skipped_growth,
        statics_externalized,
        events,
    ]
);

/// Links a catalog into the program (§7's database-based inlining), then
/// inlines.
pub fn link_and_inline(
    prog: &mut Program,
    catalog: &Catalog,
    opts: &InlineOptions,
) -> InlineReport {
    catalog.link_into(prog);
    inline_program(prog, opts)
}

/// Expands eligible call sites throughout the program.
pub fn inline_program(prog: &mut Program, opts: &InlineOptions) -> InlineReport {
    let mut report = InlineReport {
        statics_externalized: externalize_statics(prog),
        ..InlineReport::default()
    };
    // per-caller growth budgets: each caller may grow to `max_growth ×`
    // its own pre-inlining statement count, with absolute slack so tiny
    // callers still get their first expansions. Keeping the budget local
    // to the caller means an edit to one procedure can never flip an
    // inline decision inside an unrelated one — the property the
    // incremental cache's inline-cone keys rely on.
    let initial: Vec<usize> = prog.procs.iter().map(|p| p.len()).collect();
    let caller_limit = |ci: usize| {
        if opts.max_growth == 0 {
            usize::MAX
        } else {
            initial[ci]
                .saturating_mul(opts.max_growth)
                .saturating_add(256)
        }
    };
    // stable site identities: `ords[ci]` parallels the caller's current
    // `call_sites` list. A surviving site keeps its ordinal across rounds
    // and spliced-in bodies' sites take fresh ones, so event consumers
    // can tell two same-span sites apart while still collapsing the round
    // loop's revisits of one site.
    let mut ords: Vec<Option<Vec<u32>>> = vec![None; prog.procs.len()];
    let mut next_ord: Vec<u32> = vec![0; prog.procs.len()];
    for _round in 0..opts.max_depth {
        let mut any = false;
        let cg = CallGraph::build(prog);
        for ci in 0..prog.procs.len() {
            let caller_name = prog.procs[ci].name.clone();
            let growth_limit = caller_limit(ci);
            // Statement ids change on every restamp, so sites are
            // re-collected after each successful expansion; sites that
            // cannot inline are remembered by position to guarantee
            // progress.
            let mut skip = 0usize;
            // one round expands only the call sites present at round
            // start — calls introduced by inlined bodies wait for the
            // next round (layer-by-layer, bounded by `max_depth`)
            let mut budget = call_sites(&prog.procs[ci]).len();
            loop {
                if budget == 0 {
                    break;
                }
                let sites = call_sites(&prog.procs[ci]);
                let site_ords = ords[ci].get_or_insert_with(|| {
                    next_ord[ci] = sites.len() as u32;
                    (0..sites.len() as u32).collect()
                });
                debug_assert_eq!(site_ords.len(), sites.len());
                if site_ords.len() != sites.len() {
                    // defensive resync; identities restart but stay unique
                    *site_ords = (0..sites.len()).map(|k| next_ord[ci] + k as u32).collect();
                    next_ord[ci] += sites.len() as u32;
                }
                let caller_len = prog.procs[ci].len();
                let mut expanded = false;
                for (pos, &site) in sites.iter().enumerate().skip(skip) {
                    let callee_name = match callee_of(&prog.procs[ci], site) {
                        Some(n) => n,
                        None => {
                            skip += 1;
                            continue;
                        }
                    };
                    let site_span = prog.procs[ci].stmts.span(site);
                    let site_ord = site_ords[pos];
                    let event = |outcome: InlineOutcome| InlineEvent {
                        caller: caller_name.clone(),
                        callee: callee_name.clone(),
                        span: site_span,
                        site: site_ord,
                        outcome,
                    };
                    let inlinable =
                        if callee_name == caller_name || cg.is_recursive(prog, &callee_name) {
                            report.skipped_recursive += 1;
                            report.events.push(event(InlineOutcome::SkippedRecursive));
                            false
                        } else {
                            match prog.proc_by_name(&callee_name) {
                                None => false, // intrinsic / external
                                Some(c) if c.len() > opts.max_callee_size => {
                                    let e = event(InlineOutcome::SkippedSize {
                                        callee_len: c.len(),
                                        cap: opts.max_callee_size,
                                    });
                                    report.skipped_size += 1;
                                    report.events.push(e);
                                    false
                                }
                                Some(c) if caller_len.saturating_add(c.len()) > growth_limit => {
                                    let e = event(InlineOutcome::SkippedGrowth {
                                        caller_len,
                                        budget: growth_limit,
                                    });
                                    report.skipped_growth += 1;
                                    report.events.push(e);
                                    false
                                }
                                Some(_) => true,
                            }
                        };
                    if !inlinable {
                        skip += 1;
                        continue;
                    }
                    let callee = prog.proc_by_name(&callee_name).unwrap().clone();
                    let mut caller = prog.procs[ci].clone();
                    if inline_site(&mut caller, site, &callee, prog) {
                        caller.restamp();
                        prog.procs[ci] = caller;
                        report.inlined += 1;
                        report.events.push(event(InlineOutcome::Expanded));
                        // the spliced body's call sites take over this
                        // position; give them fresh ordinals so their
                        // next-round decisions carry distinct identities
                        let new_count = call_sites(&prog.procs[ci]).len();
                        let spliced = (new_count + 1).saturating_sub(sites.len());
                        let fresh: Vec<u32> =
                            (0..spliced).map(|k| next_ord[ci] + k as u32).collect();
                        next_ord[ci] += spliced as u32;
                        site_ords.splice(pos..=pos, fresh);
                        any = true;
                        expanded = true;
                        budget -= 1;
                        // the inlined body's own calls belong to the next
                        // round (its call sites start after `skip` anyway,
                        // but ids moved — re-collect)
                        break;
                    }
                    skip += 1;
                }
                if !expanded {
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    report
}

/// Moves every function-scoped `static` to a program global named
/// `<proc>.<var>` (§7). Returns how many were externalized.
pub fn externalize_statics(prog: &mut Program) -> usize {
    let mut count = 0;
    for pi in 0..prog.procs.len() {
        let pname = prog.procs[pi].name.clone();
        let statics: Vec<VarId> = prog.procs[pi]
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.storage == Storage::Static)
            .map(|(i, _)| VarId::from_index(i))
            .collect();
        let had_statics = !statics.is_empty();
        for v in statics {
            let info = prog.procs[pi].var(v).clone();
            let global_name = format!("{pname}.{}", info.name);
            prog.ensure_global(VarInfo {
                name: global_name.clone(),
                storage: Storage::Global,
                addressed: true,
                ..info
            });
            let entry = prog.procs[pi].var_mut(v);
            entry.name = global_name;
            entry.storage = Storage::Global;
            entry.init = None; // initializer now lives on the global
            count += 1;
        }
        if had_statics {
            prog.procs[pi].bump_generation();
        }
    }
    count
}

fn call_sites(proc: &Procedure) -> Vec<StmtId> {
    let mut out = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        if matches!(kind, StmtKind::Call { .. }) {
            out.push(s);
        }
    });
    out
}

fn callee_of(proc: &Procedure, site: StmtId) -> Option<String> {
    proc.find_stmt(site).and_then(|kind| match kind {
        StmtKind::Call { callee, .. } => Some(callee.clone()),
        _ => None,
    })
}

/// Copies one callee statement tree into the caller's arenas: nested
/// blocks are imported recursively and every expression slot is deep
/// copied across pools.
fn import_stmt(caller: &mut Procedure, callee: &Procedure, s: StmtId) -> StmtId {
    let span = callee.stmts.span(s);
    let mut kind = callee.stmts[s].clone();
    for b in kind.blocks_mut() {
        for id in b.iter_mut() {
            *id = import_stmt(caller, callee, *id);
        }
    }
    for e in kind.expr_slots_mut() {
        *e = caller.exprs.import(&callee.exprs, *e);
    }
    caller.stamp_at(kind, span)
}

/// Expands one call site. Returns false when the site no longer exists or
/// the argument count mismatches.
fn inline_site(
    caller: &mut Procedure,
    site: StmtId,
    callee: &Procedure,
    prog: &mut Program,
) -> bool {
    let (dst, args) = match caller.find_stmt(site) {
        Some(StmtKind::Call { dst, args, .. }) => (*dst, args.clone()),
        _ => return false,
    };
    if args.len() != callee.params.len() {
        return false;
    }

    // 1. map callee variables into the caller
    let mut var_map: HashMap<VarId, VarId> = HashMap::new();
    for (i, info) in callee.vars.iter().enumerate() {
        let old = VarId::from_index(i);
        let new = match info.storage {
            Storage::Param => caller.add_var(VarInfo {
                name: format!("in_{}", info.name),
                ty: info.ty.clone(),
                storage: Storage::Temp,
                volatile: info.volatile,
                addressed: info.addressed,
                init: None,
            }),
            Storage::Global => {
                // share the caller's import of the same global (or add one)
                match caller
                    .vars
                    .iter()
                    .position(|v| v.storage == Storage::Global && v.name == info.name)
                {
                    Some(idx) => VarId::from_index(idx),
                    None => {
                        if prog.global_by_name(&info.name).is_none() {
                            prog.ensure_global(info.clone());
                        }
                        caller.add_var(info.clone())
                    }
                }
            }
            Storage::Static => unreachable!("statics were externalized"),
            _ => caller.add_var(VarInfo {
                name: format!("in_{}_{}", callee.name, info.name),
                ty: info.ty.clone(),
                storage: info.storage.clone(),
                volatile: info.volatile,
                addressed: info.addressed,
                init: None,
            }),
        };
        var_map.insert(old, new);
    }

    // 2. map labels
    let mut label_map: HashMap<LabelId, LabelId> = HashMap::new();
    for l in 0..callee.num_labels {
        label_map.insert(LabelId(l), caller.fresh_label());
    }
    let end_label = caller.fresh_label();

    // return-value temp
    let ret_tmp = callee.ret.scalar().filter(|_| dst.is_some()).map(|_| {
        caller.add_var(VarInfo {
            name: format!("ret_{}", callee.name),
            ty: callee.ret.clone(),
            storage: Storage::Temp,
            volatile: false,
            addressed: false,
            init: None,
        })
    });

    // 3. parameter bindings: the argument exprs move from the (garbage)
    // call statement into the bindings, each used exactly once
    let mut replacement: Block = Vec::new();
    for (pi, &pv) in callee.params.iter().enumerate() {
        let s = caller.stamp(StmtKind::Assign {
            lhs: LValue::Var(var_map[&pv]),
            rhs: args[pi],
        });
        replacement.push(s);
    }

    // 4. import + rewrite the body
    let mut body: Block = callee
        .body
        .iter()
        .map(|&s| import_stmt(caller, callee, s))
        .collect();
    rewrite_block(caller, &mut body, &var_map, &label_map, end_label, ret_tmp);
    replacement.extend(body);
    let lbl = caller.stamp(StmtKind::Label(end_label));
    replacement.push(lbl);
    if let (Some(d), Some(rt)) = (dst, ret_tmp) {
        let rt_read = caller.exprs.var(rt);
        let s = caller.stamp(StmtKind::Assign {
            lhs: d,
            rhs: rt_read,
        });
        replacement.push(s);
    }

    // 5. splice
    splice(caller, site, replacement)
}

fn rewrite_block(
    caller: &mut Procedure,
    block: &mut Block,
    var_map: &HashMap<VarId, VarId>,
    label_map: &HashMap<LabelId, LabelId>,
    end_label: LabelId,
    ret_tmp: Option<VarId>,
) {
    let mut i = 0;
    while i < block.len() {
        let sid = block[i];
        let mut kind = std::mem::replace(&mut caller.stmts[sid], StmtKind::Nop);
        // rewrite nested blocks first
        for b in kind.blocks_mut() {
            rewrite_block(caller, b, var_map, label_map, end_label, ret_tmp);
        }
        // remap variables in expressions (covers memory-target address
        // expressions too, via the statement's expr roots)
        for e in kind.exprs() {
            remap_expr(&mut caller.exprs, e, var_map);
        }
        // remap assignment targets and labels. Plain variable targets only:
        // address expressions were already handled above, and a second pass
        // over one would re-map a caller id that collides with a callee id.
        let replacement_seq: Option<Block> = match &mut kind {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                ..
            } => {
                if let Some(n) = var_map.get(v) {
                    *v = *n;
                }
                None
            }
            StmtKind::Call {
                dst: Some(LValue::Var(v)),
                ..
            } => {
                if let Some(n) = var_map.get(v) {
                    *v = *n;
                }
                None
            }
            StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
                *var = var_map[var];
                None
            }
            StmtKind::Label(l) => {
                *l = label_map[l];
                None
            }
            StmtKind::Goto(l) => {
                *l = label_map[l];
                None
            }
            StmtKind::IfGoto { target, .. } => {
                *target = label_map[target];
                None
            }
            StmtKind::Return(v) => {
                // return E  =>  [ret_tmp = E;] goto end
                let mut seq = Vec::new();
                if let (Some(rt), Some(e)) = (ret_tmp, v.take()) {
                    seq.push(caller.stamp(StmtKind::Assign {
                        lhs: LValue::Var(rt),
                        rhs: e,
                    }));
                }
                seq.push(caller.stamp(StmtKind::Goto(end_label)));
                Some(seq)
            }
            _ => None,
        };
        match replacement_seq {
            Some(seq) => {
                // the original statement drops out of the block; its slot
                // keeps the Nop already swapped in
                let n = seq.len();
                block.splice(i..=i, seq);
                i += n;
            }
            None => {
                caller.stmts[sid] = kind;
                i += 1;
            }
        }
    }
}

fn remap_expr(exprs: &mut ExprPool, e: ExprId, var_map: &HashMap<VarId, VarId>) {
    match &mut exprs[e] {
        Expr::Var(v) | Expr::AddrOf(v) => {
            if let Some(n) = var_map.get(v) {
                *v = *n;
            }
        }
        _ => {}
    }
    for c in exprs[e].child_ids() {
        remap_expr(exprs, c, var_map);
    }
}

fn splice(proc: &mut Procedure, site: StmtId, replacement: Block) -> bool {
    fn walk(
        stmts: &mut titanc_il::StmtPool,
        block: &mut Block,
        site: StmtId,
        repl: &mut Option<Block>,
    ) -> bool {
        for i in 0..block.len() {
            if block[i] == site {
                block.splice(i..=i, repl.take().unwrap());
                return true;
            }
            let s = block[i];
            let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
            let mut hit = false;
            for b in kind.blocks_mut() {
                if walk(stmts, b, site, repl) {
                    hit = true;
                    break;
                }
            }
            stmts[s] = kind;
            if hit {
                return true;
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    let ok = walk(&mut proc.stmts, &mut body, site, &mut Some(replacement));
    proc.body = body;
    ok
}

#[cfg(test)]
mod tests;
