//! # titanc-inline — inline expansion (§7, §8)
//!
//! Procedure calls "disrupt both vectorization and register allocation"
//! (§2); the Titan compiler therefore inlines aggressively, including from
//! *catalogs* of pre-parsed library procedures (`titanc_il::Catalog`).
//! This crate implements:
//!
//! * **call-site expansion**: parameters bind to `in_*` temporaries, the
//!   callee body is spliced in with variables and labels renamed, and
//!   `return`s become branches to a landing label — reproducing the §9
//!   listing shape exactly;
//! * **static externalization** (§7): function-scoped `static` variables
//!   are promoted to program globals named `<proc>.<var>` so values stay
//!   correct "regardless of whether the procedure is called normally or
//!   through inlining";
//! * **recursion protection and bottom-up ordering** (§7): recursive
//!   procedures are never inlined, and call sites are expanded leaves-first
//!   so inlined functions may inline other functions;
//! * **catalog linking**: `link_and_inline` pulls procedures out of a
//!   serialized catalog the way the Titan compiler used its math-library
//!   databases.
//!
//! The §8 *special inlining optimizations* (constant propagation with
//! unreachable-code elimination, dead-code elimination) live in
//! `titanc-opt` and run after this pass; the promotion of array-row
//! parameter references into standard form falls out of binding parameters
//! to `in_*` temporaries plus forward substitution.
//!
//! ## Example
//!
//! ```
//! use titanc_inline::{inline_program, InlineOptions};
//!
//! let mut prog = titanc_lower::compile_to_il(
//!     "int square(int x) { return x * x; }\n\
//!      int main(void) { return square(6) + square(7); }",
//! ).unwrap();
//! let report = inline_program(&mut prog, &InlineOptions::default());
//! assert_eq!(report.inlined, 2);
//! let main = prog.proc_by_name("main").unwrap();
//! let mut calls = 0;
//! main.for_each_stmt(&mut |s| {
//!     if matches!(s.kind, titanc_il::StmtKind::Call { .. }) { calls += 1; }
//! });
//! assert_eq!(calls, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use titanc_analysis::CallGraph;
use titanc_il::{
    Catalog, Expr, InlineEvent, InlineOutcome, LValue, LabelId, Procedure, Program, SrcSpan, Stmt,
    StmtKind, Storage, VarId, VarInfo,
};

/// Inlining policy.
#[derive(Clone, Debug, PartialEq)]
pub struct InlineOptions {
    /// Maximum rounds of expansion (inlined bodies may contain further
    /// calls; each round expands one layer, leaves-first).
    pub max_depth: u32,
    /// Skip callees larger than this many statements.
    pub max_callee_size: usize,
    /// Whole-program IL growth budget: once the program has grown past
    /// `max_growth ×` its pre-inlining statement count (plus a small
    /// absolute slack for tiny programs), further sites are skipped and
    /// counted in [`InlineReport::skipped_growth`]. `0` disables the
    /// budget.
    pub max_growth: usize,
}

impl Default for InlineOptions {
    fn default() -> InlineOptions {
        InlineOptions {
            max_depth: 4,
            max_callee_size: 400,
            max_growth: 8,
        }
    }
}

/// What the inliner did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InlineReport {
    /// Call sites expanded.
    pub inlined: usize,
    /// Call sites skipped because the callee is (mutually) recursive.
    pub skipped_recursive: usize,
    /// Call sites skipped by the size budget.
    pub skipped_size: usize,
    /// Call sites skipped by the whole-program growth budget
    /// ([`InlineOptions::max_growth`]).
    pub skipped_growth: usize,
    /// `static` variables externalized.
    pub statics_externalized: usize,
    /// Per-call-site decisions (expanded / skipped with budget state),
    /// anchored to the call's source span. A site the round loop revisits
    /// appears once per visit; consumers dedupe by (caller, callee, span).
    pub events: Vec<InlineEvent>,
}

impl InlineReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: InlineReport) {
        self.inlined += other.inlined;
        self.skipped_recursive += other.skipped_recursive;
        self.skipped_size += other.skipped_size;
        self.skipped_growth += other.skipped_growth;
        self.statics_externalized += other.statics_externalized;
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(
    InlineReport,
    [
        inlined,
        skipped_recursive,
        skipped_size,
        skipped_growth,
        statics_externalized,
        events,
    ]
);

/// Links a catalog into the program (§7's database-based inlining), then
/// inlines.
pub fn link_and_inline(
    prog: &mut Program,
    catalog: &Catalog,
    opts: &InlineOptions,
) -> InlineReport {
    catalog.link_into(prog);
    inline_program(prog, opts)
}

/// Expands eligible call sites throughout the program.
pub fn inline_program(prog: &mut Program, opts: &InlineOptions) -> InlineReport {
    let mut report = InlineReport {
        statics_externalized: externalize_statics(prog),
        ..InlineReport::default()
    };
    // growth budget: measured against the pre-inlining program size, with
    // absolute slack so tiny programs still get their first expansions
    let initial: usize = prog.procs.iter().map(|p| p.len()).sum();
    let growth_limit = if opts.max_growth == 0 {
        usize::MAX
    } else {
        initial.saturating_mul(opts.max_growth).saturating_add(256)
    };
    for _round in 0..opts.max_depth {
        let mut any = false;
        let cg = CallGraph::build(prog);
        for ci in 0..prog.procs.len() {
            let caller_name = prog.procs[ci].name.clone();
            // Statement ids change on every restamp, so sites are
            // re-collected after each successful expansion; sites that
            // cannot inline are remembered by position to guarantee
            // progress.
            let mut skip = 0usize;
            // one round expands only the call sites present at round
            // start — calls introduced by inlined bodies wait for the
            // next round (layer-by-layer, bounded by `max_depth`)
            let mut budget = call_sites(&prog.procs[ci]).len();
            loop {
                if budget == 0 {
                    break;
                }
                let sites = call_sites(&prog.procs[ci]);
                let total: usize = prog.procs.iter().map(|p| p.len()).sum();
                let mut expanded = false;
                for &site in sites.iter().skip(skip) {
                    let callee_name = match callee_of(&prog.procs[ci], site) {
                        Some(n) => n,
                        None => {
                            skip += 1;
                            continue;
                        }
                    };
                    let site_span = prog.procs[ci]
                        .find_stmt(site)
                        .map(|s| s.span)
                        .unwrap_or(SrcSpan::NONE);
                    let event = |outcome: InlineOutcome| InlineEvent {
                        caller: caller_name.clone(),
                        callee: callee_name.clone(),
                        span: site_span,
                        outcome,
                    };
                    let inlinable =
                        if callee_name == caller_name || cg.is_recursive(prog, &callee_name) {
                            report.skipped_recursive += 1;
                            report.events.push(event(InlineOutcome::SkippedRecursive));
                            false
                        } else {
                            match prog.proc_by_name(&callee_name) {
                                None => false, // intrinsic / external
                                Some(c) if c.len() > opts.max_callee_size => {
                                    let e = event(InlineOutcome::SkippedSize {
                                        callee_len: c.len(),
                                        cap: opts.max_callee_size,
                                    });
                                    report.skipped_size += 1;
                                    report.events.push(e);
                                    false
                                }
                                Some(c) if total.saturating_add(c.len()) > growth_limit => {
                                    let e = event(InlineOutcome::SkippedGrowth {
                                        program_len: total,
                                        budget: growth_limit,
                                    });
                                    report.skipped_growth += 1;
                                    report.events.push(e);
                                    false
                                }
                                Some(_) => true,
                            }
                        };
                    if !inlinable {
                        skip += 1;
                        continue;
                    }
                    let callee = prog.proc_by_name(&callee_name).unwrap().clone();
                    let mut caller = prog.procs[ci].clone();
                    if inline_site(&mut caller, site, &callee, prog) {
                        caller.restamp();
                        prog.procs[ci] = caller;
                        report.inlined += 1;
                        report.events.push(event(InlineOutcome::Expanded));
                        any = true;
                        expanded = true;
                        budget -= 1;
                        // the inlined body's own calls belong to the next
                        // round (its call sites start after `skip` anyway,
                        // but ids moved — re-collect)
                        break;
                    }
                    skip += 1;
                }
                if !expanded {
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    report
}

/// Moves every function-scoped `static` to a program global named
/// `<proc>.<var>` (§7). Returns how many were externalized.
pub fn externalize_statics(prog: &mut Program) -> usize {
    let mut count = 0;
    for pi in 0..prog.procs.len() {
        let pname = prog.procs[pi].name.clone();
        let statics: Vec<VarId> = prog.procs[pi]
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.storage == Storage::Static)
            .map(|(i, _)| VarId::from_index(i))
            .collect();
        let had_statics = !statics.is_empty();
        for v in statics {
            let info = prog.procs[pi].var(v).clone();
            let global_name = format!("{pname}.{}", info.name);
            prog.ensure_global(VarInfo {
                name: global_name.clone(),
                storage: Storage::Global,
                addressed: true,
                ..info
            });
            let entry = prog.procs[pi].var_mut(v);
            entry.name = global_name;
            entry.storage = Storage::Global;
            entry.init = None; // initializer now lives on the global
            count += 1;
        }
        if had_statics {
            prog.procs[pi].bump_generation();
        }
    }
    count
}

fn call_sites(proc: &Procedure) -> Vec<titanc_il::StmtId> {
    let mut out = Vec::new();
    proc.for_each_stmt(&mut |s| {
        if matches!(s.kind, StmtKind::Call { .. }) {
            out.push(s.id);
        }
    });
    out
}

fn callee_of(proc: &Procedure, site: titanc_il::StmtId) -> Option<String> {
    proc.find_stmt(site).and_then(|s| match &s.kind {
        StmtKind::Call { callee, .. } => Some(callee.clone()),
        _ => None,
    })
}

/// Expands one call site. Returns false when the site no longer exists or
/// the argument count mismatches.
fn inline_site(
    caller: &mut Procedure,
    site: titanc_il::StmtId,
    callee: &Procedure,
    prog: &mut Program,
) -> bool {
    let (dst, args) = match caller.find_stmt(site) {
        Some(Stmt {
            kind: StmtKind::Call { dst, args, .. },
            ..
        }) => (dst.clone(), args.clone()),
        _ => return false,
    };
    if args.len() != callee.params.len() {
        return false;
    }

    // 1. map callee variables into the caller
    let mut var_map: HashMap<VarId, VarId> = HashMap::new();
    for (i, info) in callee.vars.iter().enumerate() {
        let old = VarId::from_index(i);
        let new = match info.storage {
            Storage::Param => caller.add_var(VarInfo {
                name: format!("in_{}", info.name),
                ty: info.ty.clone(),
                storage: Storage::Temp,
                volatile: info.volatile,
                addressed: info.addressed,
                init: None,
            }),
            Storage::Global => {
                // share the caller's import of the same global (or add one)
                match caller
                    .vars
                    .iter()
                    .position(|v| v.storage == Storage::Global && v.name == info.name)
                {
                    Some(idx) => VarId::from_index(idx),
                    None => {
                        if prog.global_by_name(&info.name).is_none() {
                            prog.ensure_global(info.clone());
                        }
                        caller.add_var(info.clone())
                    }
                }
            }
            Storage::Static => unreachable!("statics were externalized"),
            _ => caller.add_var(VarInfo {
                name: format!("in_{}_{}", callee.name, info.name),
                ty: info.ty.clone(),
                storage: info.storage.clone(),
                volatile: info.volatile,
                addressed: info.addressed,
                init: None,
            }),
        };
        var_map.insert(old, new);
    }

    // 2. map labels
    let mut label_map: HashMap<LabelId, LabelId> = HashMap::new();
    for l in 0..callee.num_labels {
        label_map.insert(LabelId(l), caller.fresh_label());
    }
    let end_label = caller.fresh_label();

    // return-value temp
    let ret_tmp = callee.ret.scalar().filter(|_| dst.is_some()).map(|_| {
        caller.add_var(VarInfo {
            name: format!("ret_{}", callee.name),
            ty: callee.ret.clone(),
            storage: Storage::Temp,
            volatile: false,
            addressed: false,
            init: None,
        })
    });

    // 3. parameter bindings
    let mut replacement: Vec<Stmt> = Vec::new();
    for (pi, &pv) in callee.params.iter().enumerate() {
        let s = caller.stamp(StmtKind::Assign {
            lhs: LValue::Var(var_map[&pv]),
            rhs: args[pi].clone(),
        });
        replacement.push(s);
    }

    // 4. clone + rewrite the body
    let mut body = callee.body.clone();
    rewrite_block(&mut body, &var_map, &label_map, end_label, ret_tmp, caller);
    replacement.extend(body);
    let lbl = caller.stamp(StmtKind::Label(end_label));
    replacement.push(lbl);
    if let (Some(d), Some(rt)) = (dst, ret_tmp) {
        let s = caller.stamp(StmtKind::Assign {
            lhs: d,
            rhs: Expr::var(rt),
        });
        replacement.push(s);
    }

    // 5. splice
    splice(caller, site, replacement)
}

fn rewrite_block(
    block: &mut Vec<Stmt>,
    var_map: &HashMap<VarId, VarId>,
    label_map: &HashMap<LabelId, LabelId>,
    end_label: LabelId,
    ret_tmp: Option<VarId>,
    caller: &mut Procedure,
) {
    let mut i = 0;
    while i < block.len() {
        // rewrite nested blocks first
        for b in block[i].blocks_mut() {
            rewrite_block(b, var_map, label_map, end_label, ret_tmp, caller);
        }
        // remap variables in expressions
        for e in block[i].exprs_mut() {
            remap_expr(e, var_map);
        }
        // remap assignment targets and labels. Careful: `exprs_mut` above
        // already remapped the *address expressions* of memory targets, so
        // only plain variable targets are touched here (a second pass over
        // an address would re-map a caller id that collides with a callee
        // id).
        let new_kind: Option<Vec<Stmt>> = match &mut block[i].kind {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                ..
            } => {
                if let Some(n) = var_map.get(v) {
                    *v = *n;
                }
                None
            }
            StmtKind::Call {
                dst: Some(LValue::Var(v)),
                ..
            } => {
                if let Some(n) = var_map.get(v) {
                    *v = *n;
                }
                None
            }
            StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
                *var = var_map[var];
                None
            }
            StmtKind::Label(l) => {
                *l = label_map[l];
                None
            }
            StmtKind::Goto(l) => {
                *l = label_map[l];
                None
            }
            StmtKind::IfGoto { target, .. } => {
                *target = label_map[target];
                None
            }
            StmtKind::Return(v) => {
                // return E  =>  [ret_tmp = E;] goto end
                let mut seq = Vec::new();
                if let (Some(rt), Some(e)) = (ret_tmp, v.take()) {
                    seq.push(caller.stamp(StmtKind::Assign {
                        lhs: LValue::Var(rt),
                        rhs: e,
                    }));
                }
                seq.push(caller.stamp(StmtKind::Goto(end_label)));
                Some(seq)
            }
            _ => None,
        };
        match new_kind {
            Some(seq) => {
                let n = seq.len();
                block.splice(i..=i, seq);
                i += n;
            }
            None => i += 1,
        }
    }
}

fn remap_expr(e: &mut Expr, var_map: &HashMap<VarId, VarId>) {
    match e {
        Expr::Var(v) | Expr::AddrOf(v) => {
            if let Some(n) = var_map.get(v) {
                *v = *n;
            }
        }
        _ => {}
    }
    for c in e.children_mut() {
        remap_expr(c, var_map);
    }
}

fn splice(proc: &mut Procedure, site: titanc_il::StmtId, replacement: Vec<Stmt>) -> bool {
    fn walk(block: &mut Vec<Stmt>, site: titanc_il::StmtId, repl: &mut Option<Vec<Stmt>>) -> bool {
        for i in 0..block.len() {
            if block[i].id == site {
                block.splice(i..=i, repl.take().unwrap());
                return true;
            }
            for b in block[i].blocks_mut() {
                if walk(b, site, repl) {
                    return true;
                }
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    let ok = walk(&mut body, site, &mut Some(replacement));
    proc.body = body;
    ok
}

#[cfg(test)]
mod tests;
