//! # titanc-analysis — scalar analysis
//!
//! The control-flow graph, use–def chains, and live-variable analysis that
//! drive the scalar optimizations of §5–§6. The paper's ordering constraint
//! — *"the proper place to convert while loops is immediately after use-def
//! chains have been constructed"* (§5.2) — is honoured by `titanc-opt`,
//! which builds these structures and runs the conversion first.
//!
//! ## Example
//!
//! ```
//! use titanc_analysis::{Cfg, UseDef};
//!
//! let prog = titanc_lower::compile_to_il(
//!     "int f(int n) { int s; s = 0; while (n) { s = s + n; n = n - 1; } return s; }",
//! ).unwrap();
//! let proc = prog.proc_by_name("f").unwrap();
//! let cfg = Cfg::build(proc);
//! let ud = UseDef::build(proc, &cfg);
//! let n = proc.var_by_name("n").unwrap();
//! assert!(ud.tracked(n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cache;
pub mod cfg;
pub mod dataflow;
pub mod dominators;
pub mod loops;

pub use bitset::BitSet;
pub use cache::{AnalysisCache, CacheStats, ProcAnalyses};
pub use cfg::{Cfg, NodeId};
pub use dataflow::{DefSite, Liveness, UseDef};
pub use dominators::Dominators;
pub use loops::{LoopNest, LoopNestEntry};

/// The call graph of a program: which procedures each procedure calls.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[i]` lists callee names of procedure `i` (in
    /// [`titanc_il::Program::procs`] order), with repeats.
    pub calls: Vec<Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph.
    pub fn build(prog: &titanc_il::Program) -> CallGraph {
        let mut calls = Vec::with_capacity(prog.procs.len());
        for p in &prog.procs {
            let mut list = Vec::new();
            p.for_each_stmt(&mut |_, k| {
                if let titanc_il::StmtKind::Call { callee, .. } = k {
                    list.push(callee.clone());
                }
            });
            calls.push(list);
        }
        CallGraph { calls }
    }

    /// True when `name` can (transitively) call itself — inlining it
    /// without care would never terminate (§7).
    pub fn is_recursive(&self, prog: &titanc_il::Program, name: &str) -> bool {
        let idx = match prog.procs.iter().position(|p| p.name == name) {
            Some(i) => i,
            None => return false,
        };
        let mut stack = vec![idx];
        let mut seen = vec![false; prog.procs.len()];
        while let Some(i) = stack.pop() {
            for callee in &self.calls[i] {
                if callee == name {
                    return true;
                }
                if let Some(j) = prog.procs.iter().position(|p| &p.name == callee) {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_graph_and_recursion() {
        let prog = titanc_lower::compile_to_il(
            r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int helper(int n) { return fib(n); }
int leaf(int n) { return n + 1; }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        assert!(cg.is_recursive(&prog, "fib"));
        assert!(!cg.is_recursive(&prog, "helper"));
        assert!(!cg.is_recursive(&prog, "leaf"));
        assert_eq!(cg.calls[0].len(), 2);
    }

    #[test]
    fn mutual_recursion_detected() {
        let prog = titanc_lower::compile_to_il(
            r#"
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        assert!(cg.is_recursive(&prog, "even"));
        assert!(cg.is_recursive(&prog, "odd"));
    }
}
