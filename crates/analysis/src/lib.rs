//! # titanc-analysis — scalar analysis
//!
//! The control-flow graph, use–def chains, and live-variable analysis that
//! drive the scalar optimizations of §5–§6. The paper's ordering constraint
//! — *"the proper place to convert while loops is immediately after use-def
//! chains have been constructed"* (§5.2) — is honoured by `titanc-opt`,
//! which builds these structures and runs the conversion first.
//!
//! ## Example
//!
//! ```
//! use titanc_analysis::{Cfg, UseDef};
//!
//! let prog = titanc_lower::compile_to_il(
//!     "int f(int n) { int s; s = 0; while (n) { s = s + n; n = n - 1; } return s; }",
//! ).unwrap();
//! let proc = prog.proc_by_name("f").unwrap();
//! let cfg = Cfg::build(proc);
//! let ud = UseDef::build(proc, &cfg);
//! let n = proc.var_by_name("n").unwrap();
//! assert!(ud.tracked(n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cache;
pub mod cfg;
pub mod dataflow;
pub mod dominators;
pub mod loops;

pub use bitset::BitSet;
pub use cache::{AnalysisCache, CacheStats, ProcAnalyses};
pub use cfg::{Cfg, NodeId};
pub use dataflow::{DefSite, Liveness, UseDef};
pub use dominators::Dominators;
pub use loops::{LoopNest, LoopNestEntry};

/// The call graph of a program: which procedures each procedure calls.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[i]` lists callee names of procedure `i` (in
    /// [`titanc_il::Program::procs`] order), with repeats.
    pub calls: Vec<Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph.
    pub fn build(prog: &titanc_il::Program) -> CallGraph {
        let mut calls = Vec::with_capacity(prog.procs.len());
        for p in &prog.procs {
            let mut list = Vec::new();
            p.for_each_stmt(&mut |_, k| {
                if let titanc_il::StmtKind::Call { callee, .. } = k {
                    list.push(callee.clone());
                }
            });
            calls.push(list);
        }
        CallGraph { calls }
    }

    /// True when `name` can (transitively) call itself — inlining it
    /// without care would never terminate (§7).
    pub fn is_recursive(&self, prog: &titanc_il::Program, name: &str) -> bool {
        let idx = match prog.procs.iter().position(|p| p.name == name) {
            Some(i) => i,
            None => return false,
        };
        let mut stack = vec![idx];
        let mut seen = vec![false; prog.procs.len()];
        while let Some(i) = stack.pop() {
            for callee in &self.calls[i] {
                if callee == name {
                    return true;
                }
                if let Some(j) = prog.procs.iter().position(|p| &p.name == callee) {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        false
    }

    /// The *inline dependency cone* of every procedure: the indices (in
    /// program order, self included) of all procedures whose parsed body
    /// can influence that procedure's post-inline IL.
    ///
    /// The cone is the full transitive-callee closure, deliberately
    /// **unfiltered** by `max_depth` or the size/recursion eligibility
    /// gates. Both filters would be unsound in a cache key:
    ///
    /// * one inlining round can splice bodies from arbitrarily deep in
    ///   the call chain — a callee processed earlier in the same round
    ///   has already absorbed *its* callees, so depth-`max_depth`
    ///   reachability is not a bound on whose code lands in a caller;
    /// * whether a callee passes the recursion gate depends on call
    ///   edges *through* procedures that are themselves ineligible (an
    ///   edit anywhere on a cycle can flip a callee from recursive to
    ///   inlinable), and whether it passes the size gate depends on its
    ///   own inlining, i.e. on its whole reachable set.
    ///
    /// A simple over-approximation that is obviously sound beats a tight
    /// one that silently replays stale IL.
    pub fn inline_cones(&self, prog: &titanc_il::Program) -> Vec<Vec<usize>> {
        let n = prog.procs.len();
        let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (i, p) in prog.procs.iter().enumerate() {
            // duplicate names cannot occur in a merged session program;
            // first definition wins elsewhere, so mirror that here
            index.entry(p.name.as_str()).or_insert(i);
        }
        // adjacency by index; unknown callees (intrinsics, externals) are
        // not inlinable and drop out of the cone
        let adj: Vec<Vec<usize>> = self
            .calls
            .iter()
            .map(|list| {
                let mut row: Vec<usize> = list
                    .iter()
                    .filter_map(|name| index.get(name.as_str()).copied())
                    .collect();
                row.sort_unstable();
                row.dedup();
                row
            })
            .collect();
        (0..n)
            .map(|start| {
                let mut seen = vec![false; n];
                seen[start] = true;
                let mut stack = vec![start];
                while let Some(i) = stack.pop() {
                    for &j in &adj[i] {
                        if !seen[j] {
                            seen[j] = true;
                            stack.push(j);
                        }
                    }
                }
                (0..n).filter(|&i| seen[i]).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_graph_and_recursion() {
        let prog = titanc_lower::compile_to_il(
            r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int helper(int n) { return fib(n); }
int leaf(int n) { return n + 1; }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        assert!(cg.is_recursive(&prog, "fib"));
        assert!(!cg.is_recursive(&prog, "helper"));
        assert!(!cg.is_recursive(&prog, "leaf"));
        assert_eq!(cg.calls[0].len(), 2);
    }

    #[test]
    fn inline_cones_are_transitive_and_include_self() {
        let prog = titanc_lower::compile_to_il(
            r#"
int leaf(int n) { return n + 1; }
int mid(int n) { return leaf(n) * 2; }
int top(int n) { return mid(n) + leaf(n); }
int lone(int n) { return n; }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let cones = cg.inline_cones(&prog);
        // program order: leaf=0, mid=1, top=2, lone=3
        assert_eq!(cones[0], vec![0]);
        assert_eq!(cones[1], vec![0, 1]);
        assert_eq!(cones[2], vec![0, 1, 2]);
        assert_eq!(cones[3], vec![3]);
    }

    #[test]
    fn inline_cones_cover_cycles_and_ignore_intrinsics() {
        let prog = titanc_lower::compile_to_il(
            r#"
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main(void) { print_int(even(4)); return 0; }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let cones = cg.inline_cones(&prog);
        // even=0, odd=1, main=2; `print_int` is an intrinsic, not a cone
        // member. The even/odd cycle keeps both in each other's cone —
        // an edit anywhere on the cycle can change its recursion status.
        assert_eq!(cones[0], vec![0, 1]);
        assert_eq!(cones[1], vec![0, 1]);
        assert_eq!(cones[2], vec![0, 1, 2]);
    }

    #[test]
    fn mutual_recursion_detected() {
        let prog = titanc_lower::compile_to_il(
            r#"
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
"#,
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        assert!(cg.is_recursive(&prog, "even"));
        assert!(cg.is_recursive(&prog, "odd"));
    }
}
