//! Control-flow graph over the statement tree.
//!
//! Each IL statement becomes one CFG node (plus virtual entry/exit nodes).
//! Structured constructs contribute their natural edges; `goto`s — which C
//! allows to enter loops (§1 item 3) — contribute arbitrary edges to label
//! nodes. The while→DO conversion (§5.2) asks this graph whether any branch
//! enters a loop from outside.

use crate::loops::stmt_ids_in;
use std::collections::HashMap;
use titanc_il::{LabelId, Procedure, StmtId, StmtKind, StmtPool};

/// A CFG node index.
pub type NodeId = usize;

/// The control-flow graph of one procedure.
#[derive(Debug)]
pub struct Cfg {
    /// Virtual entry node.
    pub entry: NodeId,
    /// Virtual exit node.
    pub exit: NodeId,
    /// `stmt_of[n]` is the statement a node represents (None for
    /// entry/exit).
    pub stmt_of: Vec<Option<StmtId>>,
    /// Successor lists.
    pub succs: Vec<Vec<NodeId>>,
    /// Predecessor lists.
    pub preds: Vec<Vec<NodeId>>,
    node_of_stmt: HashMap<StmtId, NodeId>,
    labels: HashMap<LabelId, NodeId>,
}

impl Cfg {
    /// Builds the CFG of a procedure.
    pub fn build(proc: &Procedure) -> Cfg {
        let mut b = Builder {
            cfg: Cfg {
                entry: 0,
                exit: 1,
                stmt_of: vec![None, None],
                succs: vec![Vec::new(), Vec::new()],
                preds: vec![Vec::new(), Vec::new()],
                node_of_stmt: HashMap::new(),
                labels: HashMap::new(),
            },
            gotos: Vec::new(),
        };
        // pass 1: a node per statement, labels recorded
        b.alloc_block(&proc.stmts, &proc.body);
        // pass 2: structured edges; gotos collected
        let (head, tails) = b.wire_block(&proc.stmts, &proc.body);
        let entry = b.cfg.entry;
        let exit = b.cfg.exit;
        match head {
            Some(h) => b.edge(entry, h),
            None => b.edge(entry, exit),
        }
        for t in tails {
            b.edge(t, exit);
        }
        // pass 3: goto edges
        let gotos = std::mem::take(&mut b.gotos);
        for (from, label) in gotos {
            if let Some(&target) = b.cfg.labels.get(&label) {
                b.edge(from, target);
            }
        }
        b.cfg
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.stmt_of.len()
    }

    /// True when the graph has only entry/exit.
    pub fn is_empty(&self) -> bool {
        self.len() == 2
    }

    /// The node representing statement `s`, if it exists.
    pub fn node_of(&self, s: StmtId) -> Option<NodeId> {
        self.node_of_stmt.get(&s).copied()
    }

    /// The node a label resolves to.
    pub fn label_node(&self, l: LabelId) -> Option<NodeId> {
        self.labels.get(&l).copied()
    }

    /// Nodes in reverse-postorder from entry.
    pub fn rpo(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut order = Vec::with_capacity(self.len());
        self.dfs(self.entry, &mut seen, &mut order);
        order.reverse();
        order
    }

    fn dfs(&self, n: NodeId, seen: &mut [bool], post: &mut Vec<NodeId>) {
        if seen[n] {
            return;
        }
        seen[n] = true;
        for &s in &self.succs[n] {
            self.dfs(s, seen, post);
        }
        post.push(n);
    }

    /// Nodes unreachable from entry (dead code at the graph level).
    pub fn unreachable_nodes(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut post = Vec::new();
        self.dfs(self.entry, &mut seen, &mut post);
        (0..self.len()).filter(|&n| !seen[n]).collect()
    }

    /// True if any branch from outside `loop_stmt`'s body targets a label
    /// inside it — the §5.2 "branches entering the loop" test.
    pub fn has_branch_into(&self, proc: &Procedure, loop_stmt: StmtId) -> bool {
        let inside = stmt_ids_in(&proc.stmts, loop_stmt);
        let inside_nodes: Vec<NodeId> = inside.iter().filter_map(|s| self.node_of(*s)).collect();
        let loop_node = match self.node_of(loop_stmt) {
            Some(n) => n,
            None => return false,
        };
        for &n in &inside_nodes {
            for &p in &self.preds[n] {
                // a predecessor that is neither the loop header nor inside
                // the body is an entering branch
                if p != loop_node && !inside_nodes.contains(&p) {
                    return true;
                }
            }
        }
        false
    }
}

struct Builder {
    cfg: Cfg,
    gotos: Vec<(NodeId, LabelId)>,
}

impl Builder {
    fn alloc_block(&mut self, pool: &StmtPool, block: &[StmtId]) {
        for &s in block {
            let n = self.cfg.stmt_of.len();
            self.cfg.stmt_of.push(Some(s));
            self.cfg.succs.push(Vec::new());
            self.cfg.preds.push(Vec::new());
            self.cfg.node_of_stmt.insert(s, n);
            if let StmtKind::Label(l) = pool[s] {
                self.cfg.labels.insert(l, n);
            }
            for b in pool[s].blocks() {
                self.alloc_block(pool, b);
            }
        }
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.cfg.succs[from].contains(&to) {
            self.cfg.succs[from].push(to);
            self.cfg.preds[to].push(from);
        }
    }

    fn node(&self, s: StmtId) -> NodeId {
        self.cfg.node_of_stmt[&s]
    }

    /// Wires a block; returns (head node, dangling tails needing an edge to
    /// whatever follows the block).
    fn wire_block(&mut self, pool: &StmtPool, block: &[StmtId]) -> (Option<NodeId>, Vec<NodeId>) {
        let mut head: Option<NodeId> = None;
        let mut tails: Vec<NodeId> = Vec::new();
        for &s in block {
            let n = self.node(s);
            // connect previous tails to this statement
            if head.is_none() {
                head = Some(n);
            }
            for t in tails.drain(..) {
                self.edge(t, n);
            }
            match &pool[s] {
                StmtKind::Assign { .. }
                | StmtKind::Call { .. }
                | StmtKind::Nop
                | StmtKind::Label(_) => {
                    tails.push(n);
                }
                StmtKind::Return(_) => {
                    let exit = self.cfg.exit;
                    self.edge(n, exit);
                    // no fallthrough
                }
                StmtKind::Goto(l) => {
                    self.gotos.push((n, *l));
                    // no fallthrough
                }
                StmtKind::IfGoto { target, .. } => {
                    self.gotos.push((n, *target));
                    tails.push(n); // fallthrough when not taken
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    let (th, tt) = self.wire_block(pool, then_blk);
                    let (eh, et) = self.wire_block(pool, else_blk);
                    match th {
                        Some(h) => self.edge(n, h),
                        None => tails.push(n),
                    }
                    match eh {
                        Some(h) => self.edge(n, h),
                        None => tails.push(n),
                    }
                    tails.extend(tt);
                    tails.extend(et);
                }
                StmtKind::While { body, .. }
                | StmtKind::DoLoop { body, .. }
                | StmtKind::DoParallel { body, .. } => {
                    let (bh, bt) = self.wire_block(pool, body);
                    match bh {
                        Some(h) => self.edge(n, h),
                        None => self.edge(n, n), // empty body loops on header
                    }
                    for t in bt {
                        self.edge(t, n); // back edge
                    }
                    tails.push(n); // loop exit
                }
                StmtKind::WhileSpread {
                    parallel, serial, ..
                } => {
                    // cond -> parallel -> serial -> cond (back edge)
                    let (ph, pt) = self.wire_block(pool, parallel);
                    let (sh, st) = self.wire_block(pool, serial);
                    let first = ph.or(sh);
                    match first {
                        Some(h) => self.edge(n, h),
                        None => self.edge(n, n),
                    }
                    match (pt.is_empty(), sh) {
                        (false, Some(h)) => {
                            for t in pt {
                                self.edge(t, h);
                            }
                        }
                        (false, None) => {
                            for t in pt {
                                self.edge(t, n);
                            }
                        }
                        _ => {}
                    }
                    for t in st {
                        self.edge(t, n);
                    }
                    tails.push(n);
                }
            }
        }
        (head, tails)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_lower::compile_to_il;

    fn cfg_of(src: &str, name: &str) -> (Procedure, Cfg) {
        let prog = compile_to_il(src).unwrap();
        let proc = prog.proc_by_name(name).unwrap().clone();
        let cfg = Cfg::build(&proc);
        (proc, cfg)
    }

    #[test]
    fn straight_line_chains() {
        let (_p, cfg) = cfg_of("void f(int a) { a = 1; a = 2; a = 3; }", "f");
        // entry -> s1 -> s2 -> s3 -> exit
        assert_eq!(cfg.len(), 5);
        assert_eq!(cfg.succs[cfg.entry].len(), 1);
        assert_eq!(cfg.preds[cfg.exit].len(), 1);
    }

    #[test]
    fn if_has_two_successors() {
        let (p, cfg) = cfg_of("void f(int a) { if (a) a = 1; else a = 2; a = 3; }", "f");
        let if_stmt = p
            .body
            .iter()
            .find(|&&s| matches!(p.stmts[s], StmtKind::If { .. }))
            .unwrap();
        let n = cfg.node_of(*if_stmt).unwrap();
        assert_eq!(cfg.succs[n].len(), 2);
    }

    #[test]
    fn while_has_back_edge_and_exit() {
        let (p, cfg) = cfg_of("void f(int n) { while (n) { n = n - 1; } n = 9; }", "f");
        let w = p
            .body
            .iter()
            .find(|&&s| matches!(p.stmts[s], StmtKind::While { .. }))
            .unwrap();
        let n = cfg.node_of(*w).unwrap();
        assert_eq!(cfg.succs[n].len(), 2, "body + exit");
        assert!(cfg.preds[n].len() >= 2, "entry-side + back edge");
    }

    #[test]
    fn return_cuts_fallthrough() {
        let (p, cfg) = cfg_of("int f(int a) { return 1; a = 2; return a; }", "f");
        // `a = 2` is unreachable
        let dead = cfg.unreachable_nodes();
        let a2 = p.body[1];
        assert!(dead.contains(&cfg.node_of(a2).unwrap()));
    }

    #[test]
    fn goto_into_loop_detected() {
        let src = r#"
void f(int n)
{
    if (n > 5) goto inside;
    while (n) {
inside:
        n = n - 1;
    }
}
"#;
        let (p, cfg) = cfg_of(src, "f");
        let mut loop_stmt = None;
        p.for_each_stmt(&mut |s, k| {
            if matches!(k, StmtKind::While { .. }) {
                loop_stmt = Some(s);
            }
        });
        assert!(cfg.has_branch_into(&p, loop_stmt.unwrap()));
    }

    #[test]
    fn normal_loop_has_no_entering_branch() {
        let (p, cfg) = cfg_of("void f(int n) { while (n) { n = n - 1; } }", "f");
        let w = p
            .body
            .iter()
            .find(|&&s| matches!(p.stmts[s], StmtKind::While { .. }))
            .unwrap();
        assert!(!cfg.has_branch_into(&p, *w));
    }

    #[test]
    fn break_is_not_an_entering_branch() {
        let (p, cfg) = cfg_of(
            "void f(int n) { while (n) { if (n == 2) break; n = n - 1; } }",
            "f",
        );
        let w = p
            .body
            .iter()
            .find(|&&s| matches!(p.stmts[s], StmtKind::While { .. }))
            .unwrap();
        assert!(!cfg.has_branch_into(&p, *w));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (_p, cfg) = cfg_of("void f(int n) { while (n) n = n - 1; }", "f");
        let order = cfg.rpo();
        assert_eq!(order[0], cfg.entry);
        assert!(order.contains(&cfg.exit));
    }

    #[test]
    fn empty_body_loop() {
        let (_p, cfg) = cfg_of("void f(volatile int *p) { while (*p); }", "f");
        assert!(!cfg.is_empty());
        // self-loop on the header
        let hdr = (0..cfg.len()).find(|&n| cfg.succs[n].contains(&n));
        assert!(hdr.is_some(), "empty while body yields a header self-loop");
    }
}
