//! Generation-keyed analysis memoization.
//!
//! The paper's compiler builds use–def chains **once** and incrementally
//! repairs them while while→DO conversion and induction-variable
//! substitution rewrite the loop (§5.2). This module is the modern shape
//! of that idea: every [`titanc_il::Procedure`] carries a *generation
//! counter* that mutating passes bump, and a [`ProcAnalyses`] slot
//! memoizes the expensive analyses ([`Cfg`], [`UseDef`], [`Liveness`],
//! [`Dominators`], [`LoopNest`]) keyed to the generation they were built
//! against. A request at the same generation is a hit; a request after
//! the generation moved drops the stale artifacts and rebuilds.
//!
//! Two escape hatches implement the §5.2 repair discipline:
//!
//! * [`ProcAnalyses::rekey`] — a pass that performed only *pure
//!   expression rewrites* (no statement added/removed/restamped, no
//!   control-flow edge or definition site changed) may adopt the new
//!   generation without dropping the CFG, use–def chains, dominators, or
//!   loop nest: those artifacts are still exact. Liveness is dropped —
//!   rewrites can remove variable reads, and a stale over-approximation
//!   is only *conservatively* correct, so it is rebuilt on next request.
//! * A pass may hold the `Arc` of an artifact across its own mutations
//!   when it can argue validity locally (while→DO conversion reuses one
//!   CFG across every conversion of a procedure) and call
//!   [`ProcAnalyses::note_repair`] to account for the reuse.
//!
//! Artifacts are shared as `Arc`s so a pass can hold an analysis while
//! the cache stays borrowable; `Arc` (not `Rc`) keeps the slots `Send`,
//! which lets the pass manager move each procedure's slot onto a worker
//! thread. [`AnalysisCache`] is the per-compilation collection of slots,
//! indexed by procedure position; [`CacheStats`] counts hits, builds,
//! invalidations, and repairs so the cached-vs-rebuilt ratio is
//! observable per pass (`--time`, EXP6, `BENCH_compile.json`).

use std::sync::Arc;

use titanc_il::Procedure;

use crate::loops::LoopNest;
use crate::{Cfg, Dominators, Liveness, UseDef};

/// Hit/build counters for the generation-keyed analysis cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// CFG requests answered from the cache.
    pub cfg_hits: usize,
    /// CFG requests that ran [`Cfg::build`].
    pub cfg_builds: usize,
    /// Use–def requests answered from the cache.
    pub usedef_hits: usize,
    /// Use–def requests that ran [`UseDef::build`].
    pub usedef_builds: usize,
    /// Liveness requests answered from the cache.
    pub liveness_hits: usize,
    /// Liveness requests that ran [`Liveness::build`].
    pub liveness_builds: usize,
    /// Dominator requests answered from the cache.
    pub dominators_hits: usize,
    /// Dominator requests that ran [`Dominators::build`].
    pub dominators_builds: usize,
    /// Loop-nest requests answered from the cache.
    pub loopnest_hits: usize,
    /// Loop-nest requests that ran [`LoopNest::build`].
    pub loopnest_builds: usize,
    /// Times cached artifacts were dropped because the generation moved.
    pub invalidations: usize,
    /// Times artifacts survived a mutation via §5.2-style repair
    /// ([`ProcAnalyses::rekey`] / [`ProcAnalyses::note_repair`]).
    pub repairs: usize,
}

impl CacheStats {
    /// Total requests answered from the cache.
    pub fn hits(&self) -> usize {
        self.cfg_hits
            + self.usedef_hits
            + self.liveness_hits
            + self.dominators_hits
            + self.loopnest_hits
    }

    /// Total requests that had to build.
    pub fn builds(&self) -> usize {
        self.cfg_builds
            + self.usedef_builds
            + self.liveness_builds
            + self.dominators_builds
            + self.loopnest_builds
    }

    /// Total analysis requests.
    pub fn requests(&self) -> usize {
        self.hits() + self.builds()
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.cfg_hits += other.cfg_hits;
        self.cfg_builds += other.cfg_builds;
        self.usedef_hits += other.usedef_hits;
        self.usedef_builds += other.usedef_builds;
        self.liveness_hits += other.liveness_hits;
        self.liveness_builds += other.liveness_builds;
        self.dominators_hits += other.dominators_hits;
        self.dominators_builds += other.dominators_builds;
        self.loopnest_hits += other.loopnest_hits;
        self.loopnest_builds += other.loopnest_builds;
        self.invalidations += other.invalidations;
        self.repairs += other.repairs;
    }
}

titanc_il::struct_json!(
    CacheStats,
    [
        cfg_hits,
        cfg_builds,
        usedef_hits,
        usedef_builds,
        liveness_hits,
        liveness_builds,
        dominators_hits,
        dominators_builds,
        loopnest_hits,
        loopnest_builds,
        invalidations,
        repairs,
    ]
);

impl CacheStats {
    /// The counters accumulated since `earlier` (fieldwise difference;
    /// `earlier` must be a previous snapshot of the same counters).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            cfg_hits: self.cfg_hits - earlier.cfg_hits,
            cfg_builds: self.cfg_builds - earlier.cfg_builds,
            usedef_hits: self.usedef_hits - earlier.usedef_hits,
            usedef_builds: self.usedef_builds - earlier.usedef_builds,
            liveness_hits: self.liveness_hits - earlier.liveness_hits,
            liveness_builds: self.liveness_builds - earlier.liveness_builds,
            dominators_hits: self.dominators_hits - earlier.dominators_hits,
            dominators_builds: self.dominators_builds - earlier.dominators_builds,
            loopnest_hits: self.loopnest_hits - earlier.loopnest_hits,
            loopnest_builds: self.loopnest_builds - earlier.loopnest_builds,
            invalidations: self.invalidations - earlier.invalidations,
            repairs: self.repairs - earlier.repairs,
        }
    }
}

/// Memoized analyses for one procedure, keyed by its generation counter.
#[derive(Debug, Default)]
pub struct ProcAnalyses {
    /// The generation the cached artifacts were built against.
    generation: Option<u64>,
    cfg: Option<Arc<Cfg>>,
    usedef: Option<Arc<UseDef>>,
    liveness: Option<Arc<Liveness>>,
    dominators: Option<Arc<Dominators>>,
    loopnest: Option<Arc<LoopNest>>,
    stats: CacheStats,
}

impl ProcAnalyses {
    /// An empty cache slot.
    pub fn new() -> ProcAnalyses {
        ProcAnalyses::default()
    }

    /// The accumulated hit/build counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The generation the cached artifacts are keyed to, if any.
    pub fn cached_generation(&self) -> Option<u64> {
        self.generation
    }

    fn has_any(&self) -> bool {
        self.cfg.is_some()
            || self.usedef.is_some()
            || self.liveness.is_some()
            || self.dominators.is_some()
            || self.loopnest.is_some()
    }

    fn drop_artifacts(&mut self) {
        self.cfg = None;
        self.usedef = None;
        self.liveness = None;
        self.dominators = None;
        self.loopnest = None;
    }

    /// Drops stale artifacts when the procedure's generation has moved
    /// past the cached one. Called on every request, so a stale artifact
    /// is never served.
    fn sync(&mut self, proc: &Procedure) {
        let current = proc.generation();
        if self.generation != Some(current) {
            if self.has_any() {
                self.stats.invalidations += 1;
            }
            self.drop_artifacts();
            self.generation = Some(current);
        }
    }

    /// Drops everything unconditionally (a pass made a structural edit it
    /// cannot argue repair for).
    pub fn invalidate(&mut self) {
        if self.has_any() {
            self.stats.invalidations += 1;
        }
        self.drop_artifacts();
        self.generation = None;
    }

    /// §5.2 incremental repair: adopt the procedure's current generation
    /// while keeping the CFG, use–def chains, dominators, and loop nest.
    ///
    /// Only sound after *pure expression rewrites*: the statement set,
    /// statement ids, control-flow edges, and definition sites must be
    /// unchanged (constant propagation's replace/fold rounds qualify;
    /// branch simplification does not). Liveness is dropped — a rewrite
    /// can remove reads, leaving cached liveness a sound but imprecise
    /// over-approximation, so it is rebuilt on next request instead.
    pub fn rekey(&mut self, proc: &Procedure) {
        let current = proc.generation();
        if self.generation == Some(current) {
            return;
        }
        self.liveness = None;
        self.generation = Some(current);
        if self.has_any() {
            self.stats.repairs += 1;
        }
    }

    /// Accounts for an in-place artifact reuse a pass performed itself
    /// (e.g. while→DO conversion holding one CFG across conversions).
    pub fn note_repair(&mut self) {
        self.stats.repairs += 1;
    }

    /// The control-flow graph at the procedure's current generation.
    pub fn cfg(&mut self, proc: &Procedure) -> Arc<Cfg> {
        self.sync(proc);
        if let Some(c) = &self.cfg {
            self.stats.cfg_hits += 1;
            return Arc::clone(c);
        }
        self.stats.cfg_builds += 1;
        let c = Arc::new(Cfg::build(proc));
        self.cfg = Some(Arc::clone(&c));
        c
    }

    /// Use–def chains at the procedure's current generation (builds the
    /// CFG first if needed).
    pub fn usedef(&mut self, proc: &Procedure) -> Arc<UseDef> {
        let cfg = self.cfg(proc);
        if let Some(ud) = &self.usedef {
            self.stats.usedef_hits += 1;
            return Arc::clone(ud);
        }
        self.stats.usedef_builds += 1;
        let ud = Arc::new(UseDef::build(proc, &cfg));
        self.usedef = Some(Arc::clone(&ud));
        ud
    }

    /// Live-variable analysis at the procedure's current generation.
    pub fn liveness(&mut self, proc: &Procedure) -> Arc<Liveness> {
        let cfg = self.cfg(proc);
        if let Some(lv) = &self.liveness {
            self.stats.liveness_hits += 1;
            return Arc::clone(lv);
        }
        self.stats.liveness_builds += 1;
        let lv = Arc::new(Liveness::build(proc, &cfg));
        self.liveness = Some(Arc::clone(&lv));
        lv
    }

    /// The dominator tree at the procedure's current generation.
    pub fn dominators(&mut self, proc: &Procedure) -> Arc<Dominators> {
        let cfg = self.cfg(proc);
        if let Some(d) = &self.dominators {
            self.stats.dominators_hits += 1;
            return Arc::clone(d);
        }
        self.stats.dominators_builds += 1;
        let d = Arc::new(Dominators::build(&cfg));
        self.dominators = Some(Arc::clone(&d));
        d
    }

    /// The loop-nest forest at the procedure's current generation.
    pub fn loop_nest(&mut self, proc: &Procedure) -> Arc<LoopNest> {
        self.sync(proc);
        if let Some(n) = &self.loopnest {
            self.stats.loopnest_hits += 1;
            return Arc::clone(n);
        }
        self.stats.loopnest_builds += 1;
        let n = Arc::new(LoopNest::build(proc));
        self.loopnest = Some(Arc::clone(&n));
        n
    }
}

/// Per-compilation analysis cache: one [`ProcAnalyses`] slot per
/// procedure, indexed by position in [`titanc_il::Program::procs`]. The
/// pass manager hands each worker thread the slot alongside its
/// procedure, so a procedure's analyses follow it through the whole
/// per-procedure pass sequence.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    slots: Vec<ProcAnalyses>,
}

impl AnalysisCache {
    /// A cache with one slot per procedure.
    pub fn with_procs(n: usize) -> AnalysisCache {
        let mut c = AnalysisCache::default();
        c.ensure(n);
        c
    }

    /// Grows the cache to at least `n` slots (new slots start empty).
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, ProcAnalyses::default);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot for procedure `index`.
    pub fn slot_mut(&mut self, index: usize) -> &mut ProcAnalyses {
        &mut self.slots[index]
    }

    /// Mutable access to all slots (the pass manager splits these across
    /// worker threads alongside the procedures).
    pub fn slots_mut(&mut self) -> &mut [ProcAnalyses] {
        &mut self.slots
    }

    /// Counters merged across every slot.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.slots {
            total.merge(&s.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_of(src: &str) -> Procedure {
        titanc_lower::compile_to_il(src).unwrap().procs[0].clone()
    }

    #[test]
    fn same_generation_hits() {
        let proc =
            proc_of("int f(int n) { int s; s = 0; while (n) { s = s + n; n = n - 1; } return s; }");
        let mut a = ProcAnalyses::new();
        let c1 = a.cfg(&proc);
        let c2 = a.cfg(&proc);
        assert!(Arc::ptr_eq(&c1, &c2), "second request is the same artifact");
        let u1 = a.usedef(&proc);
        let u2 = a.usedef(&proc);
        assert!(Arc::ptr_eq(&u1, &u2));
        let st = a.stats();
        assert_eq!(st.cfg_builds, 1);
        assert_eq!(st.usedef_builds, 1);
        assert!(st.cfg_hits >= 2, "{st:?}"); // direct hit + usedef's cfg reuse
        assert_eq!(st.usedef_hits, 1);
        assert_eq!(st.invalidations, 0);
    }

    #[test]
    fn bumped_generation_invalidates() {
        let mut proc = proc_of("int f(int n) { return n; }");
        let mut a = ProcAnalyses::new();
        let u1 = a.usedef(&proc);
        proc.bump_generation();
        let u2 = a.usedef(&proc);
        assert!(!Arc::ptr_eq(&u1, &u2), "stale use-def must not be served");
        let st = a.stats();
        assert_eq!(st.usedef_builds, 2);
        assert_eq!(st.invalidations, 1);
        assert_eq!(a.cached_generation(), Some(proc.generation()));
    }

    #[test]
    fn rekey_keeps_usedef_but_drops_liveness() {
        let mut proc = proc_of("int f(int n) { int s; s = n + 1; return s; }");
        let mut a = ProcAnalyses::new();
        let u1 = a.usedef(&proc);
        let l1 = a.liveness(&proc);
        proc.bump_generation(); // pretend a pure expression rewrite happened
        a.rekey(&proc);
        let u2 = a.usedef(&proc);
        let l2 = a.liveness(&proc);
        assert!(Arc::ptr_eq(&u1, &u2), "repair keeps the use-def chains");
        assert!(!Arc::ptr_eq(&l1, &l2), "liveness is rebuilt after repair");
        let st = a.stats();
        assert_eq!(st.repairs, 1);
        assert_eq!(st.usedef_builds, 1);
        assert_eq!(st.liveness_builds, 2);
    }

    #[test]
    fn stats_delta_and_merge() {
        let proc = proc_of("void f(void) { ; }");
        let mut a = ProcAnalyses::new();
        let before = a.stats();
        let _ = a.cfg(&proc);
        let _ = a.loop_nest(&proc);
        let d = a.stats().delta_since(&before);
        assert_eq!(d.cfg_builds, 1);
        assert_eq!(d.loopnest_builds, 1);
        let mut total = CacheStats::default();
        total.merge(&d);
        total.merge(&d);
        assert_eq!(total.builds(), 2 * d.builds());
        assert_eq!(total.requests(), total.hits() + total.builds());
    }

    #[test]
    fn cache_slots_per_proc() {
        let mut cache = AnalysisCache::with_procs(3);
        assert_eq!(cache.len(), 3);
        let proc = proc_of("void f(void) { ; }");
        let _ = cache.slot_mut(1).cfg(&proc);
        assert_eq!(cache.stats().cfg_builds, 1);
        cache.ensure(5);
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
    }
}
