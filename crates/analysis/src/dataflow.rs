//! Scalar dataflow: reaching definitions (→ use-def chains, §5.2's
//! prerequisite) and live variables (→ dead-code elimination).
//!
//! Both analyses track only *register candidates*: scalar variables whose
//! address is never taken and that are not volatile, static or global.
//! Anything else can be modified through memory, so chain-driven
//! optimizations must simply leave it alone — exactly the conservatism the
//! paper ascribes to C's `&` operator (§1 item 7).

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use std::collections::HashMap;
use titanc_il::{Procedure, StmtId, Storage, VarId};

/// A definition site: a statement defining a variable, or the virtual
/// entry definition (parameter value / uninitialized).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DefSite {
    /// The defining statement; `None` for the entry definition.
    pub stmt: Option<StmtId>,
    /// The variable defined.
    pub var: VarId,
}

/// Use–def chains built from reaching definitions.
#[derive(Debug)]
pub struct UseDef {
    tracked: Vec<bool>,
    defs: Vec<DefSite>,
    def_index: HashMap<DefSite, usize>,
    #[allow(dead_code)]
    defs_of_var: Vec<Vec<usize>>,
    /// reaching-in per CFG node.
    reach_in: Vec<BitSet>,
    node_of_stmt: HashMap<StmtId, NodeId>,
}

impl UseDef {
    /// Builds use–def chains for a procedure.
    pub fn build(proc: &Procedure, cfg: &Cfg) -> UseDef {
        let nvars = proc.vars.len();
        let tracked: Vec<bool> = proc
            .vars
            .iter()
            .map(|v| {
                v.ty.scalar().is_some()
                    && !v.addressed
                    && !v.volatile
                    && matches!(v.storage, Storage::Auto | Storage::Param | Storage::Temp)
            })
            .collect();

        // enumerate definition sites
        let mut defs: Vec<DefSite> = Vec::new();
        let mut def_index = HashMap::new();
        let mut defs_of_var: Vec<Vec<usize>> = vec![Vec::new(); nvars];
        let mut add_def = |d: DefSite, defs: &mut Vec<DefSite>| {
            let idx = defs.len();
            defs.push(d);
            def_index.insert(d, idx);
            defs_of_var[d.var.index()].push(idx);
            idx
        };
        // virtual entry defs for every tracked var
        for (i, is_tracked) in tracked.iter().enumerate() {
            if *is_tracked {
                add_def(
                    DefSite {
                        stmt: None,
                        var: VarId::from_index(i),
                    },
                    &mut defs,
                );
            }
        }
        let mut node_of_stmt = HashMap::new();
        proc.for_each_stmt(&mut |s, k| {
            if let Some(n) = cfg.node_of(s) {
                node_of_stmt.insert(s, n);
            }
            if let Some(v) = k.defined_var() {
                if tracked[v.index()] {
                    add_def(
                        DefSite {
                            stmt: Some(s),
                            var: v,
                        },
                        &mut defs,
                    );
                }
            }
        });

        let ndefs = defs.len();
        // gen/kill per node
        let mut gen: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(ndefs)).collect();
        let mut kill: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(ndefs)).collect();
        // entry node generates all virtual defs
        for (i, d) in defs.iter().enumerate() {
            if d.stmt.is_none() {
                gen[cfg.entry].insert(i);
            }
        }
        proc.for_each_stmt(&mut |s, k| {
            let n = match cfg.node_of(s) {
                Some(n) => n,
                None => return,
            };
            if let Some(v) = k.defined_var() {
                if tracked[v.index()] {
                    let me = def_index[&DefSite {
                        stmt: Some(s),
                        var: v,
                    }];
                    gen[n].insert(me);
                    for &other in &defs_of_var[v.index()] {
                        if other != me {
                            kill[n].insert(other);
                        }
                    }
                }
            }
        });

        // forward may analysis to fixpoint, in RPO
        let order = cfg.rpo();
        let mut reach_in: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(ndefs)).collect();
        let mut reach_out: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(ndefs)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &order {
                let mut inn = BitSet::new(ndefs);
                for &p in &cfg.preds[n] {
                    inn.union_with(&reach_out[p]);
                }
                let mut out = inn.clone();
                out.subtract(&kill[n]);
                out.union_with(&gen[n]);
                if out != reach_out[n] {
                    reach_out[n] = out;
                    changed = true;
                }
                reach_in[n] = inn;
            }
        }

        UseDef {
            tracked,
            defs,
            def_index,
            defs_of_var,
            reach_in,
            node_of_stmt,
        }
    }

    /// True when the variable's chains are maintained (non-addressed scalar
    /// auto/param/temp).
    pub fn tracked(&self, v: VarId) -> bool {
        self.tracked.get(v.index()).copied().unwrap_or(false)
    }

    /// The definition sites of `var` that reach the *top* of statement
    /// `at`. `None` entries denote the entry definition.
    pub fn reaching_defs(&self, at: StmtId, var: VarId) -> Vec<Option<StmtId>> {
        let n = match self.node_of_stmt.get(&at) {
            Some(n) => *n,
            None => return Vec::new(),
        };
        self.reach_in[n]
            .iter()
            .filter(|&i| self.defs[i].var == var)
            .map(|i| self.defs[i].stmt)
            .collect()
    }

    /// The unique *statement* definition of `var` reaching `at`, if there
    /// is exactly one reaching def and it is a real statement.
    pub fn unique_reaching_def(&self, at: StmtId, var: VarId) -> Option<StmtId> {
        let defs = self.reaching_defs(at, var);
        match defs.as_slice() {
            [Some(s)] => Some(*s),
            _ => None,
        }
    }

    /// Every statement whose use of `var` may see the definition made by
    /// `def_stmt` (the def-use direction of the chains).
    pub fn uses_of_def(&self, proc: &Procedure, def_stmt: StmtId, var: VarId) -> Vec<StmtId> {
        let key = DefSite {
            stmt: Some(def_stmt),
            var,
        };
        let idx = match self.def_index.get(&key) {
            Some(i) => *i,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        proc.for_each_stmt(&mut |s, k| {
            let n = match self.node_of_stmt.get(&s) {
                Some(n) => *n,
                None => return,
            };
            if !self.reach_in[n].contains(idx) {
                return;
            }
            let reads = k.exprs().iter().any(|&e| proc.exprs.reads_var(e, var));
            if reads {
                out.push(s);
            }
        });
        out
    }

    /// Count of definition sites (including virtual entry defs).
    pub fn num_defs(&self) -> usize {
        self.defs.len()
    }
}

/// Live-variable analysis over register candidates.
#[derive(Debug)]
pub struct Liveness {
    tracked: Vec<bool>,
    live_out: Vec<BitSet>,
    node_of_stmt: HashMap<StmtId, NodeId>,
    nvars: usize,
}

impl Liveness {
    /// Runs the backward analysis.
    pub fn build(proc: &Procedure, cfg: &Cfg) -> Liveness {
        let nvars = proc.vars.len();
        let tracked: Vec<bool> = proc
            .vars
            .iter()
            .map(|v| {
                v.ty.scalar().is_some()
                    && !v.addressed
                    && !v.volatile
                    && matches!(v.storage, Storage::Auto | Storage::Param | Storage::Temp)
            })
            .collect();
        let mut uses: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(nvars)).collect();
        let mut defs: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(nvars)).collect();
        let mut node_of_stmt = HashMap::new();
        proc.for_each_stmt(&mut |s, k| {
            let n = match cfg.node_of(s) {
                Some(n) => n,
                None => return,
            };
            node_of_stmt.insert(s, n);
            for e in k.exprs() {
                for v in proc.exprs.vars_read(e) {
                    if tracked[v.index()] {
                        uses[n].insert(v.index());
                    }
                }
            }
            if let Some(v) = k.defined_var() {
                if tracked[v.index()] && !uses[n].contains(v.index()) {
                    defs[n].insert(v.index());
                }
            }
        });

        let mut order = cfg.rpo();
        order.reverse();
        let mut live_in: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(nvars)).collect();
        let mut live_out: Vec<BitSet> = (0..cfg.len()).map(|_| BitSet::new(nvars)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &order {
                let mut out = BitSet::new(nvars);
                for &s in &cfg.succs[n] {
                    out.union_with(&live_in[s]);
                }
                let mut inn = out.clone();
                inn.subtract(&defs[n]);
                inn.union_with(&uses[n]);
                if inn != live_in[n] {
                    live_in[n] = inn;
                    changed = true;
                }
                live_out[n] = out;
            }
        }
        Liveness {
            tracked,
            live_out,
            node_of_stmt,
            nvars,
        }
    }

    /// True when `var`'s value may be read after statement `at` executes.
    /// Untracked variables are always considered live (conservative).
    pub fn live_after(&self, at: StmtId, var: VarId) -> bool {
        if !self.tracked.get(var.index()).copied().unwrap_or(false) {
            return true;
        }
        match self.node_of_stmt.get(&at) {
            Some(&n) => self.live_out[n].contains(var.index()),
            None => true,
        }
    }

    /// Number of variables in the underlying procedure.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::StmtKind;
    use titanc_lower::compile_to_il;

    fn setup(src: &str) -> (Procedure, Cfg) {
        let prog = compile_to_il(src).unwrap();
        let proc = prog.procs[0].clone();
        let cfg = Cfg::build(&proc);
        (proc, cfg)
    }

    fn stmt_matching(proc: &Procedure, pred: impl Fn(StmtId, &StmtKind) -> bool) -> StmtId {
        let mut found = None;
        proc.for_each_stmt(&mut |s, k| {
            if found.is_none() && pred(s, k) {
                found = Some(s);
            }
        });
        found.expect("statement")
    }

    #[test]
    fn unique_def_in_straight_line() {
        let (proc, cfg) = setup("int f(void) { int x, y; x = 3; y = x + 1; return y; }");
        let ud = UseDef::build(&proc, &cfg);
        let x = proc.var_by_name("x").unwrap();
        let use_stmt = stmt_matching(&proc, |_, k| {
            k.exprs().iter().any(|&e| proc.exprs.reads_var(e, x))
        });
        let def = ud.unique_reaching_def(use_stmt, x);
        assert!(def.is_some());
    }

    #[test]
    fn branch_merges_two_defs() {
        let (proc, cfg) = setup("int f(int c) { int x; if (c) x = 1; else x = 2; return x; }");
        let ud = UseDef::build(&proc, &cfg);
        let x = proc.var_by_name("x").unwrap();
        let ret = stmt_matching(&proc, |_, k| matches!(k, StmtKind::Return(Some(_))));
        let defs = ud.reaching_defs(ret, x);
        assert_eq!(defs.len(), 2);
        assert!(ud.unique_reaching_def(ret, x).is_none());
    }

    #[test]
    fn param_use_sees_entry_def() {
        let (proc, cfg) = setup("int f(int n) { return n; }");
        let ud = UseDef::build(&proc, &cfg);
        let n = proc.var_by_name("n").unwrap();
        let ret = stmt_matching(&proc, |_, k| matches!(k, StmtKind::Return(Some(_))));
        let defs = ud.reaching_defs(ret, n);
        assert_eq!(defs, vec![None], "entry definition");
    }

    #[test]
    fn loop_carried_def_reaches_header() {
        let (proc, cfg) = setup("void f(int n) { while (n) { n = n - 1; } }");
        let ud = UseDef::build(&proc, &cfg);
        let n = proc.var_by_name("n").unwrap();
        let w = stmt_matching(&proc, |_, k| matches!(k, StmtKind::While { .. }));
        let defs = ud.reaching_defs(w, n);
        assert_eq!(defs.len(), 2, "entry def + loop body def: {defs:?}");
    }

    #[test]
    fn addressed_vars_untracked() {
        let (proc, cfg) = setup("int f(void) { int x; int *p; p = &x; x = 1; *p = 2; return x; }");
        let ud = UseDef::build(&proc, &cfg);
        let x = proc.var_by_name("x").unwrap();
        assert!(!ud.tracked(x), "addressed variable is not chain-tracked");
        let p = proc.var_by_name("p").unwrap();
        assert!(ud.tracked(p));
    }

    #[test]
    fn uses_of_def_finds_reader() {
        let (proc, cfg) = setup("int f(void) { int x; x = 3; return x + x; }");
        let ud = UseDef::build(&proc, &cfg);
        let x = proc.var_by_name("x").unwrap();
        let def = stmt_matching(&proc, |_, k| k.defined_var() == Some(x));
        let uses = ud.uses_of_def(&proc, def, x);
        assert_eq!(uses.len(), 1, "the return reads x");
    }

    #[test]
    fn dead_store_not_live() {
        let (proc, cfg) = setup("int f(void) { int x, y; x = 1; x = 2; y = x; return y; }");
        let lv = Liveness::build(&proc, &cfg);
        let x = proc.var_by_name("x").unwrap();
        let first = proc.body[0];
        assert_eq!(proc.stmts[first].defined_var(), Some(x));
        assert!(!lv.live_after(first, x), "x is overwritten before any read");
        let second = proc.body[1];
        assert!(lv.live_after(second, x));
    }

    #[test]
    fn loop_variable_is_live_across_back_edge() {
        let (proc, cfg) = setup("void f(int n) { while (n) { n = n - 1; } }");
        let lv = Liveness::build(&proc, &cfg);
        let n = proc.var_by_name("n").unwrap();
        let def = stmt_matching(&proc, |_, k| k.defined_var() == Some(n));
        assert!(lv.live_after(def, n), "read again by the loop condition");
    }

    #[test]
    fn untracked_is_always_live() {
        let (proc, cfg) = setup("volatile int v; void f(void) { v = 1; }");
        let lv = Liveness::build(&proc, &cfg);
        let v = proc.var_by_name("v").unwrap();
        let def = proc.body[0];
        assert!(lv.live_after(def, v));
    }
}
