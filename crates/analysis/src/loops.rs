//! Tree-level loop facts.

use std::collections::HashSet;
use titanc_il::{LabelId, Stmt, StmtId, StmtKind};

/// All statement ids inside a statement's nested blocks (excluding the
/// statement itself).
pub fn stmt_ids_in(s: &Stmt) -> HashSet<StmtId> {
    let mut out = HashSet::new();
    fn walk(block: &[Stmt], out: &mut HashSet<StmtId>) {
        for s in block {
            out.insert(s.id);
            for b in s.blocks() {
                walk(b, out);
            }
        }
    }
    for b in s.blocks() {
        walk(b, &mut out);
    }
    out
}

/// Labels defined inside a statement's nested blocks.
pub fn labels_in(s: &Stmt) -> HashSet<LabelId> {
    let mut out = HashSet::new();
    visit(s, &mut |inner| {
        if let StmtKind::Label(l) = inner.kind {
            out.insert(l);
        }
    });
    out
}

/// Branch targets referenced from inside a statement's nested blocks.
pub fn goto_targets_in(s: &Stmt) -> HashSet<LabelId> {
    let mut out = HashSet::new();
    visit(s, &mut |inner| match inner.kind {
        StmtKind::Goto(l) | StmtKind::IfGoto { target: l, .. } => {
            out.insert(l);
        }
        _ => {}
    });
    out
}

/// True when the statement tree contains a `Return`.
pub fn has_return(s: &Stmt) -> bool {
    let mut found = false;
    visit(s, &mut |inner| {
        if matches!(inner.kind, StmtKind::Return(_)) {
            found = true;
        }
    });
    found
}

/// True when the statement tree contains a procedure call.
pub fn has_call(s: &Stmt) -> bool {
    let mut found = false;
    visit(s, &mut |inner| {
        if matches!(inner.kind, StmtKind::Call { .. }) {
            found = true;
        }
    });
    found
}

/// True when any branch inside the tree leaves it (targets a label not
/// defined inside) — an early exit, which defeats DO conversion (§5.2).
pub fn has_branch_out(s: &Stmt) -> bool {
    let labels = labels_in(s);
    goto_targets_in(s).iter().any(|l| !labels.contains(l))
}

/// One loop of a procedure's loop-nest forest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoopNestEntry {
    /// The loop statement (`While`/`DoLoop`/`DoParallel`).
    pub id: StmtId,
    /// The innermost enclosing loop, if any.
    pub parent: Option<StmtId>,
    /// Nesting depth (outermost loops are depth 0).
    pub depth: usize,
}

/// The loop-nest forest of a procedure, in preorder. The structured IL
/// makes this a tree walk rather than a back-edge search; it is memoized
/// per generation by the analysis cache so dependence-driven passes can
/// ask "how deep is this loop" without re-walking the body.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LoopNest {
    /// Every loop statement with its parent and depth, preorder.
    pub loops: Vec<LoopNestEntry>,
}

impl LoopNest {
    /// Builds the loop-nest forest of `proc`.
    pub fn build(proc: &titanc_il::Procedure) -> LoopNest {
        let mut nest = LoopNest::default();
        fn walk(
            block: &[Stmt],
            parent: Option<StmtId>,
            depth: usize,
            out: &mut Vec<LoopNestEntry>,
        ) {
            for s in block {
                let (p, d) = if s.is_loop() {
                    out.push(LoopNestEntry {
                        id: s.id,
                        parent,
                        depth,
                    });
                    (Some(s.id), depth + 1)
                } else {
                    (parent, depth)
                };
                for b in s.blocks() {
                    walk(b, p, d, out);
                }
            }
        }
        walk(&proc.body, None, 0, &mut nest.loops);
        nest
    }

    /// The entry for loop `id`, if it is a loop statement.
    pub fn entry(&self, id: StmtId) -> Option<&LoopNestEntry> {
        self.loops.iter().find(|e| e.id == id)
    }

    /// Nesting depth of loop `id` (outermost = 0).
    pub fn depth_of(&self, id: StmtId) -> Option<usize> {
        self.entry(id).map(|e| e.depth)
    }

    /// The maximum nesting depth, or `None` when the procedure has no
    /// loops.
    pub fn max_depth(&self) -> Option<usize> {
        self.loops.iter().map(|e| e.depth).max()
    }
}

fn visit(s: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    for b in s.blocks() {
        for inner in b {
            f(inner);
            visit(inner, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{Expr, StmtKind};

    fn with_loop(src: &str) -> Stmt {
        let prog = titanc_lower::compile_to_il(src).unwrap();
        let proc = prog.procs[0].clone();
        let mut found = None;
        proc.for_each_stmt(&mut |s| {
            if s.is_loop() && found.is_none() {
                found = Some(s.clone());
            }
        });
        found.expect("loop")
    }

    #[test]
    fn ids_in_excludes_self() {
        let w = with_loop("void f(int n) { while (n) { n = n - 1; } }");
        let ids = stmt_ids_in(&w);
        assert!(!ids.contains(&w.id));
        assert!(!ids.is_empty());
    }

    #[test]
    fn break_is_a_branch_out() {
        let w = with_loop("void f(int n) { while (n) { if (n == 2) break; n = n - 1; } }");
        assert!(has_branch_out(&w));
    }

    #[test]
    fn continue_is_not_a_branch_out() {
        let w = with_loop("void f(int n) { while (n) { if (n == 2) continue; n = n - 1; } }");
        assert!(
            !has_branch_out(&w),
            "continue targets a label inside the loop"
        );
    }

    #[test]
    fn return_detected() {
        let w =
            with_loop("int f(int n) { while (n) { if (n == 2) return 1; n = n - 1; } return 0; }");
        assert!(has_return(&w));
        let w2 = with_loop("void f(int n) { while (n) { n = n - 1; } }");
        assert!(!has_return(&w2));
    }

    #[test]
    fn call_detected() {
        let w = with_loop("void g(void); void f(int n) { while (n) { g(); n = n - 1; } }");
        assert!(has_call(&w));
    }

    #[test]
    fn nop_has_no_inner_ids() {
        let s = Stmt::new(titanc_il::StmtId(0), StmtKind::Return(Some(Expr::int(0))));
        assert!(stmt_ids_in(&s).is_empty());
    }

    #[test]
    fn loop_nest_depths() {
        let prog = titanc_lower::compile_to_il(
            "void f(float *a, int n, int m) { int i, j; for (i = 0; i < n; i++) \
             for (j = 0; j < m; j++) a[i * m + j] = 0; }",
        )
        .unwrap();
        let nest = LoopNest::build(&prog.procs[0]);
        assert_eq!(nest.loops.len(), 2);
        assert_eq!(nest.loops[0].depth, 0);
        assert_eq!(nest.loops[1].depth, 1);
        assert_eq!(nest.loops[1].parent, Some(nest.loops[0].id));
        assert_eq!(nest.max_depth(), Some(1));
        assert_eq!(nest.depth_of(nest.loops[1].id), Some(1));
    }
}
