//! Tree-level loop facts.

use std::collections::HashSet;
use titanc_il::{LabelId, StmtId, StmtKind, StmtPool};

/// All statement ids inside a statement's nested blocks (excluding the
/// statement itself).
pub fn stmt_ids_in(pool: &StmtPool, s: StmtId) -> HashSet<StmtId> {
    let mut out = HashSet::new();
    fn walk(pool: &StmtPool, block: &[StmtId], out: &mut HashSet<StmtId>) {
        for &s in block {
            out.insert(s);
            for b in pool[s].blocks() {
                walk(pool, b, out);
            }
        }
    }
    for b in pool[s].blocks() {
        walk(pool, b, &mut out);
    }
    out
}

/// Labels defined inside a statement's nested blocks.
pub fn labels_in(pool: &StmtPool, s: StmtId) -> HashSet<LabelId> {
    let mut out = HashSet::new();
    visit(pool, s, &mut |k| {
        if let StmtKind::Label(l) = k {
            out.insert(*l);
        }
    });
    out
}

/// Branch targets referenced from inside a statement's nested blocks.
pub fn goto_targets_in(pool: &StmtPool, s: StmtId) -> HashSet<LabelId> {
    let mut out = HashSet::new();
    visit(pool, s, &mut |k| match k {
        StmtKind::Goto(l) | StmtKind::IfGoto { target: l, .. } => {
            out.insert(*l);
        }
        _ => {}
    });
    out
}

/// True when the statement tree contains a `Return`.
pub fn has_return(pool: &StmtPool, s: StmtId) -> bool {
    let mut found = false;
    visit(pool, s, &mut |k| {
        if matches!(k, StmtKind::Return(_)) {
            found = true;
        }
    });
    found
}

/// True when the statement tree contains a procedure call.
pub fn has_call(pool: &StmtPool, s: StmtId) -> bool {
    let mut found = false;
    visit(pool, s, &mut |k| {
        if matches!(k, StmtKind::Call { .. }) {
            found = true;
        }
    });
    found
}

/// True when any branch inside the tree leaves it (targets a label not
/// defined inside) — an early exit, which defeats DO conversion (§5.2).
pub fn has_branch_out(pool: &StmtPool, s: StmtId) -> bool {
    let labels = labels_in(pool, s);
    goto_targets_in(pool, s).iter().any(|l| !labels.contains(l))
}

/// One loop of a procedure's loop-nest forest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoopNestEntry {
    /// The loop statement (`While`/`DoLoop`/`DoParallel`).
    pub id: StmtId,
    /// The innermost enclosing loop, if any.
    pub parent: Option<StmtId>,
    /// Nesting depth (outermost loops are depth 0).
    pub depth: usize,
}

/// The loop-nest forest of a procedure, in preorder. The structured IL
/// makes this a tree walk rather than a back-edge search; it is memoized
/// per generation by the analysis cache so dependence-driven passes can
/// ask "how deep is this loop" without re-walking the body.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LoopNest {
    /// Every loop statement with its parent and depth, preorder.
    pub loops: Vec<LoopNestEntry>,
}

impl LoopNest {
    /// Builds the loop-nest forest of `proc`.
    pub fn build(proc: &titanc_il::Procedure) -> LoopNest {
        let mut nest = LoopNest::default();
        fn walk(
            pool: &StmtPool,
            block: &[StmtId],
            parent: Option<StmtId>,
            depth: usize,
            out: &mut Vec<LoopNestEntry>,
        ) {
            for &s in block {
                let (p, d) = if pool[s].is_loop() {
                    out.push(LoopNestEntry {
                        id: s,
                        parent,
                        depth,
                    });
                    (Some(s), depth + 1)
                } else {
                    (parent, depth)
                };
                for b in pool[s].blocks() {
                    walk(pool, b, p, d, out);
                }
            }
        }
        walk(&proc.stmts, &proc.body, None, 0, &mut nest.loops);
        nest
    }

    /// The entry for loop `id`, if it is a loop statement.
    pub fn entry(&self, id: StmtId) -> Option<&LoopNestEntry> {
        self.loops.iter().find(|e| e.id == id)
    }

    /// Nesting depth of loop `id` (outermost = 0).
    pub fn depth_of(&self, id: StmtId) -> Option<usize> {
        self.entry(id).map(|e| e.depth)
    }

    /// The maximum nesting depth, or `None` when the procedure has no
    /// loops.
    pub fn max_depth(&self) -> Option<usize> {
        self.loops.iter().map(|e| e.depth).max()
    }
}

fn visit(pool: &StmtPool, s: StmtId, f: &mut dyn FnMut(&StmtKind)) {
    for b in pool[s].blocks() {
        for &inner in b {
            f(&pool[inner]);
            visit(pool, inner, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::Procedure;

    fn with_loop(src: &str) -> (Procedure, StmtId) {
        let prog = titanc_lower::compile_to_il(src).unwrap();
        let proc = prog.procs[0].clone();
        let mut found = None;
        proc.for_each_stmt(&mut |s, k| {
            if k.is_loop() && found.is_none() {
                found = Some(s);
            }
        });
        (proc, found.expect("loop"))
    }

    #[test]
    fn ids_in_excludes_self() {
        let (p, w) = with_loop("void f(int n) { while (n) { n = n - 1; } }");
        let ids = stmt_ids_in(&p.stmts, w);
        assert!(!ids.contains(&w));
        assert!(!ids.is_empty());
    }

    #[test]
    fn break_is_a_branch_out() {
        let (p, w) = with_loop("void f(int n) { while (n) { if (n == 2) break; n = n - 1; } }");
        assert!(has_branch_out(&p.stmts, w));
    }

    #[test]
    fn continue_is_not_a_branch_out() {
        let (p, w) = with_loop("void f(int n) { while (n) { if (n == 2) continue; n = n - 1; } }");
        assert!(
            !has_branch_out(&p.stmts, w),
            "continue targets a label inside the loop"
        );
    }

    #[test]
    fn return_detected() {
        let (p, w) =
            with_loop("int f(int n) { while (n) { if (n == 2) return 1; n = n - 1; } return 0; }");
        assert!(has_return(&p.stmts, w));
        let (p2, w2) = with_loop("void f(int n) { while (n) { n = n - 1; } }");
        assert!(!has_return(&p2.stmts, w2));
    }

    #[test]
    fn call_detected() {
        let (p, w) = with_loop("void g(void); void f(int n) { while (n) { g(); n = n - 1; } }");
        assert!(has_call(&p.stmts, w));
    }

    #[test]
    fn nop_has_no_inner_ids() {
        let mut p = Procedure::new("t", titanc_il::Type::Int);
        let zero = p.exprs.int(0);
        let s = p.stamp(titanc_il::StmtKind::Return(Some(zero)));
        assert!(stmt_ids_in(&p.stmts, s).is_empty());
    }

    #[test]
    fn loop_nest_depths() {
        let prog = titanc_lower::compile_to_il(
            "void f(float *a, int n, int m) { int i, j; for (i = 0; i < n; i++) \
             for (j = 0; j < m; j++) a[i * m + j] = 0; }",
        )
        .unwrap();
        let nest = LoopNest::build(&prog.procs[0]);
        assert_eq!(nest.loops.len(), 2);
        assert_eq!(nest.loops[0].depth, 0);
        assert_eq!(nest.loops[1].depth, 1);
        assert_eq!(nest.loops[1].parent, Some(nest.loops[0].id));
        assert_eq!(nest.max_depth(), Some(1));
        assert_eq!(nest.depth_of(nest.loops[1].id), Some(1));
    }
}
