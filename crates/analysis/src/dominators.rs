//! Dominator computation (Cooper–Harvey–Kennedy "a simple, fast dominance
//! algorithm").
//!
//! Dominance underlies the classical loop framework the paper inherits
//! from the Fortran world: a back edge `t → h` defines a natural loop only
//! when `h` dominates `t`. The while→DO conversion works on the structured
//! tree and does not need this, but the CFG-level view is exposed for
//! analyses over goto-heavy (post-inlining) code.

use crate::cfg::{Cfg, NodeId};

/// Immediate-dominator tree over a [`Cfg`].
#[derive(Debug)]
pub struct Dominators {
    idom: Vec<Option<NodeId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators from the CFG's entry node.
    pub fn build(cfg: &Cfg) -> Dominators {
        let rpo = cfg.rpo();
        let mut rpo_index = vec![usize::MAX; cfg.len()];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_index[n] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; cfg.len()];
        idom[cfg.entry] = Some(cfg.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                // first processed predecessor
                let mut new_idom: Option<NodeId> = None;
                for &p in &cfg.preds[n] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[n] != Some(ni) {
                        idom[n] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `n` (entry's idom is itself). `None` for
    /// unreachable nodes.
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom.get(n).copied().flatten()
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Back edges `(tail, head)` where the head dominates the tail — each
    /// defines a natural loop.
    pub fn back_edges(&self, cfg: &Cfg) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for n in 0..cfg.len() {
            for &s in &cfg.succs[n] {
                if self.idom(n).is_some() && self.dominates(s, n) {
                    out.push((n, s));
                }
            }
        }
        out
    }

    /// The natural loop of a back edge: all nodes that can reach `tail`
    /// without passing through `head`, plus `head`.
    pub fn natural_loop(&self, cfg: &Cfg, tail: NodeId, head: NodeId) -> Vec<NodeId> {
        let mut in_loop = vec![false; cfg.len()];
        in_loop[head] = true;
        let mut stack = vec![tail];
        while let Some(n) = stack.pop() {
            if in_loop[n] {
                continue;
            }
            in_loop[n] = true;
            for &p in &cfg.preds[n] {
                stack.push(p);
            }
        }
        (0..cfg.len()).filter(|&n| in_loop[n]).collect()
    }

    /// Number of nodes with a computed dominator.
    pub fn reachable_count(&self) -> usize {
        self.idom.iter().filter(|d| d.is_some()).count()
    }

    /// The RPO index used for intersection (exposed for tests).
    pub fn rpo_index(&self, n: NodeId) -> usize {
        self.rpo_index[n]
    }
}

fn intersect(idom: &[Option<NodeId>], rpo_index: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_lower::compile_to_il;

    fn dom_of(src: &str) -> (titanc_il::Procedure, Cfg, Dominators) {
        let prog = compile_to_il(src).unwrap();
        let proc = prog.procs[0].clone();
        let cfg = Cfg::build(&proc);
        let dom = Dominators::build(&cfg);
        (proc, cfg, dom)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_p, cfg, dom) =
            dom_of("int f(int a) { if (a) a = 1; else a = 2; while (a) a--; return a; }");
        for n in 0..cfg.len() {
            if dom.idom(n).is_some() {
                assert!(dom.dominates(cfg.entry, n));
            }
        }
        assert_eq!(dom.idom(cfg.entry), Some(cfg.entry));
    }

    #[test]
    fn branch_arms_do_not_dominate_the_join() {
        let (p, cfg, dom) = dom_of("int f(int a) { int r; if (a) r = 1; else r = 2; return r; }");
        // find the two assignment nodes and the return node
        let mut assigns = Vec::new();
        let mut ret = None;
        p.for_each_stmt(&mut |s, k| match k {
            titanc_il::StmtKind::Assign { .. } => assigns.push(cfg.node_of(s).unwrap()),
            titanc_il::StmtKind::Return(_) => ret = Some(cfg.node_of(s).unwrap()),
            _ => {}
        });
        let ret = ret.unwrap();
        for &a in &assigns {
            assert!(!dom.dominates(a, ret), "an arm cannot dominate the join");
        }
    }

    #[test]
    fn loop_header_dominates_body_and_back_edge_found() {
        let (_p, cfg, dom) = dom_of("void f(int n) { while (n) { n = n - 1; } }");
        let back = dom.back_edges(&cfg);
        assert_eq!(back.len(), 1, "one natural loop");
        let (tail, head) = back[0];
        assert!(dom.dominates(head, tail));
        let nodes = dom.natural_loop(&cfg, tail, head);
        assert!(nodes.len() >= 2, "header + body: {nodes:?}");
    }

    #[test]
    fn goto_loop_is_a_natural_loop_too() {
        let (_p, cfg, dom) =
            dom_of("int f(int n) { int s; s = 0; top: s += n; n--; if (n) goto top; return s; }");
        let back = dom.back_edges(&cfg);
        assert_eq!(back.len(), 1, "{back:?}");
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let (p, cfg, dom) = dom_of("int f(int a) { return 1; a = 2; return a; }");
        let dead = p.body[1];
        let n = cfg.node_of(dead).unwrap();
        assert!(dom.idom(n).is_none());
        assert!(dom.reachable_count() < cfg.len());
    }
}
