//! A small fixed-capacity bit set for dataflow frames.

/// A fixed-size bit set backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Tests bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set bit indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "no change on second union");
        assert!(a.contains(3));
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        a.subtract(&b);
        assert!(a.contains(1) && !a.contains(2));
        let mut c = BitSet::new(10);
        c.insert(1);
        c.insert(5);
        a.intersect_with(&c);
        assert!(a.contains(1) && a.count() == 1);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut s = BitSet::new(200);
        for i in [5usize, 70, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 70, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        BitSet::new(4).insert(4);
    }
}
