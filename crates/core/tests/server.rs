//! The compile server, end to end through the real binaries: `titand`
//! responses must be byte-identical to one-shot `titanc` on the same
//! inputs (stdout exactly; stderr modulo the `titanc: cache:` accounting
//! line, which legitimately reflects cache state), warm repeats must
//! skip the pipeline, and ≥8 concurrent clients over a Unix socket must
//! each see their own one-shot-identical response.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use titanc::server::{CompileRequest, CompileResponse};
use titanc::SourceFile;
use titanc_il::json::{parse, FromJson, ToJson};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    assert!(files.len() >= 7, "corpus went missing");
    files
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titanc-server-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The CLI flag set the whole file exercises, and its request twin.
const ONE_SHOT_FLAGS: &[&str] = &[
    "--parallel",
    "--spread-lists",
    "--opt-report=json",
    "--stats",
    "--print-il",
];

fn request_for(id: i64, path: &std::path::Path) -> CompileRequest {
    let src = fs::read_to_string(path).unwrap();
    CompileRequest {
        id,
        files: vec![SourceFile::new(path.display().to_string(), src)],
        parallelize: true,
        spread_lists: true,
        print_il: true,
        stats: true,
        opt_report: "json".to_string(),
        ..CompileRequest::default()
    }
}

fn one_shot(path: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_titanc"))
        .args(ONE_SHOT_FLAGS)
        .arg(path)
        .output()
        .unwrap()
}

fn strip_cache_lines(s: &str) -> String {
    s.lines()
        .filter(|l| !l.starts_with("titanc: cache:"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Runs `titand --stdio --quiet`, feeds it the given request lines plus
/// a shutdown, and returns the responses keyed by request id.
fn serve_stdio(lines: &[String]) -> BTreeMap<i64, CompileResponse> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_titand"))
        .args(["--stdio", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in lines {
            writeln!(stdin, "{line}").unwrap();
        }
        // EOF is a graceful shutdown
    }
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "titand failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut responses = BTreeMap::new();
    for line in String::from_utf8(out.stdout).unwrap().lines() {
        let doc = parse(line).unwrap();
        let resp = CompileResponse::from_json(&doc).unwrap();
        responses.insert(resp.id, resp);
    }
    responses
}

#[test]
fn stdio_responses_match_one_shot_titanc_for_every_corpus_file() {
    let files = corpus_files();
    let lines: Vec<String> = files
        .iter()
        .enumerate()
        .map(|(i, f)| request_for(i as i64, f).to_json().to_string_compact())
        .collect();
    let responses = serve_stdio(&lines);
    assert_eq!(responses.len(), files.len());

    for (i, file) in files.iter().enumerate() {
        let resp = &responses[&(i as i64)];
        let reference = one_shot(file);
        assert_eq!(
            resp.exit,
            i64::from(reference.status.code().unwrap()),
            "{}",
            file.display()
        );
        assert_eq!(
            resp.stdout,
            String::from_utf8_lossy(&reference.stdout),
            "stdout diverged for {}",
            file.display()
        );
        assert_eq!(
            strip_cache_lines(&resp.stderr),
            String::from_utf8_lossy(&reference.stderr),
            "stderr diverged for {}",
            file.display()
        );
    }
}

#[test]
fn warm_repeat_skips_the_pipeline_and_stays_byte_identical() {
    let file = &corpus_files()[0];
    let lines = [
        request_for(1, file).to_json().to_string_compact(),
        request_for(2, file).to_json().to_string_compact(),
    ];
    // stdio requests are served concurrently, so the "second" request is
    // not guaranteed to see the first one's published entries — run two
    // daemons over one write-through directory instead, which also
    // proves one-shot/daemon interop on the same cache dir.
    let dir = scratch("warm");
    let dir_arg = dir.join("cache");
    let serve_one = |line: &String| {
        let mut child = Command::new(env!("CARGO_BIN_EXE_titand"))
            .args(["--stdio", "--quiet", "--cache-dir"])
            .arg(&dir_arg)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        writeln!(child.stdin.take().unwrap(), "{line}").unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        let text = String::from_utf8(out.stdout).unwrap();
        let doc = parse(text.lines().next().unwrap()).unwrap();
        CompileResponse::from_json(&doc).unwrap()
    };
    let cold = serve_one(&lines[0]);
    let warm = serve_one(&lines[1]);

    assert_eq!(cold.exit, 0, "{}", cold.stderr);
    assert_eq!(warm.exit, 0, "{}", warm.stderr);
    assert_eq!(cold.stdout, warm.stdout, "warm stdout diverged");
    assert_eq!(
        strip_cache_lines(&cold.stderr),
        strip_cache_lines(&warm.stderr),
        "warm stderr diverged"
    );
    assert!(
        warm.stderr.contains("(fully warm)"),
        "second run did not skip the pipeline:\n{}",
        warm.stderr
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn client_rejects_flags_that_cannot_ride_the_protocol() {
    for flag in [
        &["--run"][..],
        &["--time"][..],
        &["--snapshots"][..],
        &["--cache-dir", "x"][..],
        &["--trace-json", "x"][..],
        &["--emit-catalog", "x"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_titanc"))
            .args(["--server", "/nonexistent.sock"])
            .args(flag)
            .arg("x.c")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "flag {flag:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("cannot be combined with --server"),
            "flag {flag:?}"
        );
    }
}

#[cfg(unix)]
#[test]
fn eight_concurrent_socket_clients_each_match_one_shot() {
    let dir = scratch("socket");
    let sock = dir.join("titand.sock");
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_titand"))
        .args(["--quiet", "--socket"])
        .arg(&sock)
        .args(["--cache-dir"])
        .arg(dir.join("cache"))
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(sock.exists(), "titand never bound its socket");

    // 8+ concurrent clients: every corpus file once, plus repeats of the
    // first two — distinct and identical requests in flight together
    let files = corpus_files();
    let mut batch: Vec<PathBuf> = files.clone();
    batch.push(files[0].clone());
    batch.push(files[1].clone());
    assert!(batch.len() >= 8);

    let outputs: Vec<(PathBuf, Output)> = std::thread::scope(|s| {
        let handles: Vec<_> = batch
            .iter()
            .map(|f| {
                let sock = &sock;
                s.spawn(move || {
                    let out = Command::new(env!("CARGO_BIN_EXE_titanc"))
                        .args(["--server"])
                        .arg(sock)
                        .args(ONE_SHOT_FLAGS)
                        .arg(f)
                        .output()
                        .unwrap();
                    (f.clone(), out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (file, out) in &outputs {
        let reference = one_shot(file);
        assert_eq!(
            out.status.code(),
            reference.status.code(),
            "{}: {}",
            file.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&reference.stdout),
            "stdout diverged for {}",
            file.display()
        );
        assert_eq!(
            strip_cache_lines(&String::from_utf8_lossy(&out.stderr)),
            String::from_utf8_lossy(&reference.stderr),
            "stderr diverged for {}",
            file.display()
        );
    }

    // a request issued after the batch finished is guaranteed to find
    // the published entries in the resident map
    let warm = Command::new(env!("CARGO_BIN_EXE_titanc"))
        .args(["--server"])
        .arg(&sock)
        .args(ONE_SHOT_FLAGS)
        .arg(&files[0])
        .output()
        .unwrap();
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("(fully warm)"),
        "post-batch repeat did not skip the pipeline:\n{}",
        String::from_utf8_lossy(&warm.stderr)
    );

    let totals = titanc::server::shutdown_over_unix(&sock).unwrap();
    assert_eq!(totals.requests, batch.len() as i64 + 1);
    assert_eq!(totals.protocol_errors, 0);
    assert!(
        totals.hits > 0,
        "repeat requests should have hit the resident cache: {totals}"
    );
    let status = daemon.wait().unwrap();
    assert!(status.success());
    let _ = fs::remove_dir_all(&dir);
}
