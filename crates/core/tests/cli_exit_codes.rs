//! The `titanc` exit-code contract, end to end through the real binary:
//! `0` success, `1` source diagnostics, `2` usage error, `3` a contained
//! pass incident under `--strict`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn titanc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titanc"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titanc-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const GOOD: &str = "\
float a[64], b[64];
void axpy(void) { int i; for (i = 0; i < 64; i++) a[i] = a[i] + 2.0f * b[i]; }
int main(void) { axpy(); return 0; }
";

#[test]
fn success_exits_zero() {
    let src = write_temp("good.c", GOOD);
    let out = titanc().arg(&src).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
}

#[test]
fn source_errors_exit_one_and_report_each_mistake() {
    let src = write_temp(
        "bad.c",
        "void f(void)\n{\n    int x;\n    x = ;\n    x = 1;\n    y 2;\n}\n",
    );
    let out = titanc().arg(&src).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    // the recovering parser reports both independent mistakes, with
    // real line:col positions
    assert!(err.contains(":4:"), "missing first diagnostic:\n{err}");
    assert!(err.contains(":6:"), "missing second diagnostic:\n{err}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["--definitely-not-a-flag"][..],
        &[][..],
        &["--procs", "9", "x.c"][..],
        &["--jobs", "banana", "x.c"][..],
    ] {
        let out = titanc().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

#[test]
fn contained_incident_exits_zero_without_strict() {
    let src = write_temp("inject.c", GOOD);
    let out = titanc()
        .env("TITANC_INJECT_PANIC", "axpy")
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("panic in pass `inject-panic` on `axpy`"),
        "incident not reported:\n{err}"
    );
    // the contained panic must not echo through the default hook
    assert!(
        !err.contains("stack backtrace"),
        "noisy containment:\n{err}"
    );
}

#[test]
fn contained_incident_exits_three_under_strict() {
    let src = write_temp("inject-strict.c", GOOD);
    for jobs in ["1", "4"] {
        let out = titanc()
            .env("TITANC_INJECT_PANIC", "axpy")
            .args(["--strict", "-j", jobs])
            .arg(&src)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(3), "-j {jobs}: {}", stderr_of(&out));
    }
}

#[test]
fn degraded_program_still_runs_correctly() {
    // the faulty procedure is rolled back to its last-verified IL, so the
    // compiled program must still execute and return main's value
    let src = write_temp(
        "degraded-run.c",
        "\
float a[8];
int poke(void) { int i; for (i = 0; i < 8; i++) a[i] = 1.0f; return 5; }
int main(void) { return poke(); }
",
    );
    let out = titanc()
        .env("TITANC_INJECT_PANIC", "poke")
        .args(["--run"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "{}", stderr_of(&out));
}

#[test]
fn max_errors_caps_reported_diagnostics() {
    let mut body = String::from("void f(void) {\n");
    for _ in 0..30 {
        body.push_str("    x = ;\n");
    }
    body.push_str("}\n");
    let src = write_temp("cascade.c", &body);
    let out = titanc()
        .args(["--max-errors", "3"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    let reported = err
        .lines()
        .filter(|l| l.contains("expected expression"))
        .count();
    assert_eq!(reported, 3, "cap not applied:\n{err}");
}

#[test]
fn scalar_loop_remark_names_the_dependence() {
    let src = write_temp(
        "recurrence.c",
        "\
float a[100];
int main(void)
{
    int i;
    for (i = 1; i < 100; i++) a[i] = a[i-1] + 1.0f;
    return 0;
}
",
    );
    let out = titanc().arg(&src).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = stderr_of(&out);
    assert!(
        err.contains("remark") && err.contains("left scalar") && err.contains("loop-carried"),
        "no vectorization remark:\n{err}"
    );
}
