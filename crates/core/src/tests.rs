//! Driver tests: end-to-end compilations at every optimization level,
//! checked for observational equivalence, plus the §9 walkthrough.

use crate::{compile, compile_and_run, OptLevel, Options};
use titanc_il::ScalarType;
use titanc_titan::MachineConfig;

/// Every optimization level must agree with O0 on observable state.
fn check_all_levels(src: &str, globals: &[(&str, ScalarType, u32)]) {
    let base = compile(src, &Options::o0()).expect("O0 compile");
    let (expect, _) =
        titanc_titan::observe(&base.program, MachineConfig::default(), "main", globals)
            .expect("O0 run");
    for (name, opts) in [
        ("O1", Options::o1()),
        ("O2", Options::o2()),
        ("O2-parallel", Options::parallel()),
        (
            "O2-fortran",
            Options {
                aliasing: crate::Aliasing::Fortran,
                ..Options::parallel()
            },
        ),
    ] {
        let c = compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (got, _) =
            titanc_titan::observe(&c.program, MachineConfig::optimized(2), "main", globals)
                .unwrap_or_else(|e| {
                    panic!(
                        "{name} run failed: {e}\n{}",
                        titanc_il::pretty_proc(c.program.proc_by_name("main").unwrap())
                    )
                });
        assert_eq!(expect, got, "{name} diverged");
    }
}

#[test]
fn vector_add_all_levels() {
    check_all_levels(
        r#"
float a[100], b[100], c[100];
int main(void)
{
    int i;
    for (i = 0; i < 100; i++) { b[i] = i * 1.5f; c[i] = 100 - i; }
    for (i = 0; i < 100; i++) a[i] = b[i] + c[i];
    return 0;
}
"#,
        &[("a", ScalarType::Float, 100)],
    );
}

#[test]
fn daxpy_inlined_all_levels() {
    check_all_levels(
        r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void)
{
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 2 * i; }
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
"#,
        &[("a", ScalarType::Float, 100)],
    );
}

#[test]
fn backsolve_all_levels() {
    check_all_levels(
        r#"
float x[100], y[100], z[100];
int main(void)
{
    float *p, *q;
    int i;
    for (i = 0; i < 100; i++) { x[i] = 1.0f; y[i] = i; z[i] = 0.5f; }
    p = &x[1];
    q = &x[0];
    for (i = 0; i < 98; i++)
        p[i] = z[i] * (y[i] - q[i]);
    return 0;
}
"#,
        &[("x", ScalarType::Float, 100)],
    );
}

#[test]
fn struct_matrix_all_levels() {
    check_all_levels(
        r#"
struct matrix { float m[4][4]; };
struct matrix g;
int main(void)
{
    int i, j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            g.m[i][j] = i * 4 + j;
    return (int)g.m[3][2];
}
"#,
        &[],
    );
}

#[test]
fn branches_and_calls_all_levels() {
    check_all_levels(
        r#"
int classify(int x) { if (x > 10) return 2; if (x > 0) return 1; return 0; }
int out_g[3];
int main(void)
{
    out_g[0] = classify(-4);
    out_g[1] = classify(4);
    out_g[2] = classify(40);
    return out_g[0] + out_g[1] * 10 + out_g[2] * 100;
}
"#,
        &[("out_g", ScalarType::Int, 3)],
    );
}

#[test]
fn daxpy_9_walkthrough_vectorizes() {
    // the §9 example: inline, specialize (alpha = 1.0 survives, n = 100),
    // convert, substitute, vectorize, parallelize.
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
float a[100], b[100], c[100];
int main(void)
{
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
"#;
    let c = compile(src, &Options::parallel()).unwrap();
    assert!(c.reports.inline.inlined >= 1, "{:?}", c.reports.inline);
    assert!(c.reports.whiledo.converted >= 1);
    assert!(c.reports.ivsub.substituted >= 3, "{:?}", c.reports.ivsub);
    assert!(
        c.reports.vector.vectorized >= 1,
        "main after pipeline:\n{}",
        titanc_il::pretty_proc(c.program.proc_by_name("main").unwrap())
    );
    let text = titanc_il::pretty_proc(c.program.proc_by_name("main").unwrap());
    assert!(text.contains("do parallel"), "{text}");
    // the early-out branches were specialized away
    assert!(
        !text.contains("if ("),
        "constants removed the guards: {text}"
    );
}

#[test]
fn snapshots_capture_passes_that_changed_the_il() {
    let src = "int main(void) { int i, s; s = 0; for (i = 0; i < 4; i++) s += i; return s; }";
    let c = compile(
        src,
        &Options {
            snapshots: true,
            ..Options::default()
        },
    )
    .unwrap();
    let phases: Vec<&str> = c.snapshots.iter().map(|s| s.phase.as_str()).collect();
    // one snapshot after lowering, then one per pass whose generation
    // moved — unchanged procedures are skipped, so every snapshot phase
    // must correspond to a pass that reported a change
    assert_eq!(phases[0], "lower");
    for expected in ["whiledo", "ivsub", "forward", "dce"] {
        assert!(phases.contains(&expected), "missing {expected}: {phases:?}");
    }
    for phase in &phases[1..] {
        assert!(
            c.trace
                .records
                .iter()
                .any(|r| r.name == *phase && r.changed),
            "snapshot for a pass that never changed anything: `{phase}`"
        );
    }
    // a pass name with no changing execution produces no snapshot
    for rec in &c.trace.records {
        if !c
            .trace
            .records
            .iter()
            .any(|r| r.name == rec.name && r.changed)
        {
            assert!(
                !phases.contains(&rec.name),
                "no-op pass `{}` must not snapshot: {phases:?}",
                rec.name
            );
        }
    }
    // snapshots follow pipeline order
    let order: Vec<usize> = ["whiledo", "dce"]
        .iter()
        .map(|p| phases.iter().position(|q| q == p).unwrap())
        .collect();
    assert!(order[0] < order[1]);
}

#[test]
fn compile_error_reports_position() {
    let err = compile("int main(void) { return x; }", &Options::o0()).unwrap_err();
    assert!(err.message.contains("undeclared"), "{err}");
    let err2 = compile("int main(void { return 0; }", &Options::o0()).unwrap_err();
    assert!(!err2.message.is_empty());
}

#[test]
fn compile_and_run_one_call() {
    let r = compile_and_run(
        "int main(void) { int i, s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }",
        &Options::o2(),
        MachineConfig::default(),
        "main",
    )
    .unwrap();
    assert_eq!(r.value.unwrap().as_int(), 55);
}

#[test]
fn o0_does_not_optimize() {
    let src = "int main(void) { int x; x = 2 + 3; return x; }";
    let c = compile(src, &Options::o0()).unwrap();
    assert_eq!(c.reports.constprop.replaced, 0);
    assert_eq!(c.reports.vector.vectorized, 0);
    let c1 = compile(src, &Options::o1()).unwrap();
    assert_eq!(c1.reports.vector.vectorized, 0, "O1 never vectorizes");
    assert!(matches!(Options::o1().opt, OptLevel::O1));
}

#[test]
fn volatile_program_survives_whole_pipeline() {
    // the §1 poll loop must survive every optimization level untouched
    let src = r#"
volatile int keyboard_status;
int main(void)
{
    keyboard_status = 0;
    while (!keyboard_status);
    return keyboard_status;
}
"#;
    for opts in [Options::o0(), Options::o1(), Options::parallel()] {
        let c = compile(src, &opts).unwrap();
        let mut sim = titanc_titan::Simulator::new(&c.program, MachineConfig::default());
        sim.push_volatile_values(&[0, 0, 9]);
        let r = sim.run("main", &[]).unwrap();
        assert_eq!(r.value.unwrap().as_int(), 9, "opt must keep re-reading");
    }
}
