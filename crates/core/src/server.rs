//! The compile server: the protocol, the request executor, and the
//! long-lived serving loops behind `titand` and `titanc --server`.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over stdio or a Unix socket. Each request line
//! is a [`CompileRequest`] object carrying the source files *inline*
//! (name + text — the daemon never touches the client's filesystem) plus
//! the option and output flags the one-shot CLI would have parsed. Each
//! response line is a [`CompileResponse`]: the request id, the exit code
//! the one-shot CLI would have returned, and the exact bytes it would
//! have written to stdout and stderr. A line of `{"shutdown": true}`
//! stops the server; its acknowledgement carries the aggregate
//! [`ServerTotals`].
//!
//! ## Byte identity
//!
//! Server responses must be byte-identical to a one-shot `titanc` run on
//! the same inputs. That contract is kept *by construction*: the CLI
//! driver and [`execute`] render through the same functions in this
//! module ([`diag_line`], [`cache_line`], [`stats_block`], [`il_block`],
//! [`opt_report_block`], …) — there is no second copy of the output
//! formatting to drift. The only legitimate difference is the
//! `titanc: cache:` accounting line, which reflects cache *state* (a
//! long-lived daemon accumulates hits a cold one-shot run cannot see);
//! comparisons strip it.
//!
//! ## Shared cache semantics
//!
//! All requests compile through one [`ResidentCache`]: an in-memory map
//! of unsealed cache entries that write through to the daemon's
//! `--cache-dir` (when it has one), so one-shot `titanc --cache-dir`
//! invocations and the daemon interoperate on the same directory. The
//! per-request pipeline still fans procedures across its own `-j`
//! worker pool; the daemon's pool (its own `-j`) batches independent
//! *requests*. Analysis caches stay per-request — they are keyed by
//! in-memory generation counters that restart with every compilation —
//! but a warm request skips the pipeline (and with it all analyses)
//! outright.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::session::{compile_session_resident, SourceFile};
use crate::store::ResidentCache;
use crate::trace::OptReport;
use crate::{Compilation, Options, Pipeline, Reports, SessionStats};
use titanc_il::json::{parse, FromJson, Json, ToJson};

/// Exit code for "a contained pass incident was reported and `--strict`
/// was given" — shared by the CLI and the server executor.
pub const EXIT_INCIDENT: u8 = 3;

/// Bumped when the request/response encoding changes shape.
pub const PROTOCOL_VERSION: i64 = 1;

// ---------------------------------------------------------------------
// Protocol types
// ---------------------------------------------------------------------

/// One compile request: inline sources plus the CLI flags the server
/// supports. Flags that only make sense against the client's local
/// filesystem or terminal (`--run`, `--trace-json`, `--emit-catalog`,
/// `--catalog`, `--snapshots`, `--time`) are rejected client-side.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Client-chosen tag echoed on the response and in the daemon's
    /// per-request accounting log line.
    pub id: i64,
    /// The translation units, carried inline.
    pub files: Vec<SourceFile>,
    /// Optimization level: 0, 1 or 2.
    pub opt: i64,
    /// `--parallel`.
    pub parallelize: bool,
    /// `--spread-lists`.
    pub spread_lists: bool,
    /// `--fortran-aliasing`.
    pub fortran_aliasing: bool,
    /// Inline expansion (§7); `false` for `--no-inline` / `-O0` / `-O1`.
    pub inline: bool,
    /// `--strip N`.
    pub strip: i64,
    /// `-j N` for the *per-request* pipeline. `0` resolves to 1 on the
    /// server: concurrent requests already saturate the daemon's pool,
    /// and output is byte-identical for every worker count.
    pub jobs: i64,
    /// `--verify`.
    pub verify: bool,
    /// `--max-errors N` (0 = no cap).
    pub max_errors: i64,
    /// `--strict`.
    pub strict: bool,
    /// `--print-il`.
    pub print_il: bool,
    /// `--stats`.
    pub stats: bool,
    /// `--opt-report` flavor: `"none"`, `"text"` or `"json"`.
    pub opt_report: String,
}

titanc_il::struct_json!(
    CompileRequest,
    [
        id,
        files,
        opt,
        parallelize,
        spread_lists,
        fortran_aliasing,
        inline,
        strip,
        jobs,
        verify,
        max_errors,
        strict,
        print_il,
        stats,
        opt_report
    ]
);

impl Default for CompileRequest {
    fn default() -> CompileRequest {
        let o = Options::o2();
        CompileRequest {
            id: 0,
            files: Vec::new(),
            opt: 2,
            parallelize: false,
            spread_lists: false,
            fortran_aliasing: false,
            inline: true,
            strip: o.strip,
            jobs: 0,
            verify: false,
            max_errors: o.max_errors as i64,
            strict: false,
            print_il: false,
            stats: false,
            opt_report: "none".to_string(),
        }
    }
}

impl CompileRequest {
    /// The [`Options`] this request describes. `jobs == 0` maps to one
    /// pipeline worker (see the field docs).
    pub fn options(&self) -> Options {
        let mut o = match self.opt {
            0 => Options::o0(),
            1 => Options::o1(),
            _ => Options::o2(),
        };
        o.inline = self.inline && self.opt >= 2;
        o.parallelize = self.parallelize;
        o.spread_lists = self.spread_lists;
        if self.fortran_aliasing {
            o.aliasing = crate::Aliasing::Fortran;
        }
        o.strip = self.strip;
        o.jobs = if self.jobs <= 0 {
            1
        } else {
            self.jobs as usize
        };
        o.verify = self.verify;
        o.max_errors = self.max_errors.max(0) as usize;
        o
    }
}

/// One compile response: the one-shot CLI's exit code and its exact
/// stdout/stderr bytes, tagged with the request id.
#[derive(Clone, Debug, Default)]
pub struct CompileResponse {
    /// Echo of [`CompileRequest::id`] (`-1` when the request line was
    /// unparseable).
    pub id: i64,
    /// The exit code one-shot `titanc` would have returned: `0` success,
    /// `1` diagnostics, `2` bad request, `3` `--strict` incident.
    pub exit: i64,
    /// Exactly what the one-shot CLI writes to stdout.
    pub stdout: String,
    /// Exactly what the one-shot CLI writes to stderr (including the
    /// `titanc: cache:` accounting line).
    pub stderr: String,
}

titanc_il::struct_json!(CompileResponse, [id, exit, stdout, stderr]);

/// Aggregate accounting across every request a server instance handled;
/// returned on the shutdown acknowledgement and logged by `titand` at
/// exit.
#[derive(Clone, Debug, Default)]
pub struct ServerTotals {
    /// Compile requests executed (including ones that failed with
    /// diagnostics).
    pub requests: i64,
    /// Lines that were not valid requests.
    pub protocol_errors: i64,
    /// Requests whose whole pipeline was skipped via the session
    /// manifest.
    pub fully_warm: i64,
    /// Summed [`SessionStats::hits`].
    pub hits: i64,
    /// Summed [`SessionStats::misses`].
    pub misses: i64,
    /// Summed [`SessionStats::invalidated`].
    pub invalidated: i64,
    /// Summed [`SessionStats::passes_executed`].
    pub passes_executed: i64,
    /// Summed [`SessionStats::corrupt`].
    pub corrupt: i64,
    /// Summed [`SessionStats::quarantined`].
    pub quarantined: i64,
    /// Summed [`SessionStats::lock_contended`].
    pub lock_contended: i64,
    /// Summed [`SessionStats::write_failed`].
    pub write_failed: i64,
}

titanc_il::struct_json!(
    ServerTotals,
    [
        requests,
        protocol_errors,
        fully_warm,
        hits,
        misses,
        invalidated,
        passes_executed,
        corrupt,
        quarantined,
        lock_contended,
        write_failed
    ]
);

impl ServerTotals {
    /// Adds another instance's counters into this one (the stress
    /// harness aggregates totals across many short-lived servers).
    pub fn merge(&mut self, other: &ServerTotals) {
        self.requests += other.requests;
        self.protocol_errors += other.protocol_errors;
        self.fully_warm += other.fully_warm;
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidated += other.invalidated;
        self.passes_executed += other.passes_executed;
        self.corrupt += other.corrupt;
        self.quarantined += other.quarantined;
        self.lock_contended += other.lock_contended;
        self.write_failed += other.write_failed;
    }

    fn fold(&mut self, stats: &SessionStats) {
        self.fully_warm += i64::from(stats.full_warm);
        self.hits += stats.hits as i64;
        self.misses += stats.misses as i64;
        self.invalidated += stats.invalidated as i64;
        self.passes_executed += stats.passes_executed as i64;
        self.corrupt += stats.corrupt as i64;
        self.quarantined += stats.quarantined as i64;
        self.lock_contended += stats.lock_contended as i64;
        self.write_failed += stats.write_failed as i64;
    }
}

impl std::fmt::Display for ServerTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} request(s), {} protocol error(s), {} fully warm; \
             {} hit(s), {} miss(es), {} invalidated; {} pass execution(s); \
             {} corrupt, {} quarantined, {} lock-contended, {} write-failed",
            self.requests,
            self.protocol_errors,
            self.fully_warm,
            self.hits,
            self.misses,
            self.invalidated,
            self.passes_executed,
            self.corrupt,
            self.quarantined,
            self.lock_contended,
            self.write_failed
        )
    }
}

// ---------------------------------------------------------------------
// Shared output rendering (the byte-identity functions)
// ---------------------------------------------------------------------

/// Renders one diagnostic line exactly as the CLI prints it:
/// single-file invocations keep the classic `file:line:col: message`
/// shape; multi-file sessions already carry the file name inside the
/// message.
pub fn diag_line(files: &[String], d: &impl std::fmt::Display) -> String {
    if let [file] = files {
        format!("{file}:{d}\n")
    } else {
        format!("{d}\n")
    }
}

/// The `titanc: cache:` accounting line (no trailing newline); CI's
/// cache-smoke job parses this exact shape.
pub fn cache_line(stats: &SessionStats) -> String {
    format!(
        "titanc: cache: {} hit(s), {} miss(es), {} invalidated; {} pass execution(s){}; \
         {} corrupt, {} quarantined, {} lock-contended, {} write-failed",
        stats.hits,
        stats.misses,
        stats.invalidated,
        stats.passes_executed,
        if stats.full_warm { " (fully warm)" } else { "" },
        stats.corrupt,
        stats.quarantined,
        stats.lock_contended,
        stats.write_failed,
    )
}

/// One contained-incident warning line.
pub fn incident_line(incident: &impl std::fmt::Display) -> String {
    format!("titanc: warning: {incident}\n")
}

/// The `--strict` failure line.
pub fn strict_line(incidents: usize) -> String {
    format!("titanc: {incidents} pass incident(s) contained; failing because of --strict\n")
}

/// The `--print-il` block: every procedure pretty-printed.
pub fn il_block(program: &titanc_il::Program) -> String {
    let mut out = String::new();
    for p in &program.procs {
        let _ = writeln!(out, "{}", titanc_il::pretty_proc(p));
    }
    out
}

/// The `--stats` block.
pub fn stats_block(r: &Reports) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "inline:     {} sites ({} recursive skipped, {} growth-budget skipped)",
        r.inline.inlined, r.inline.skipped_recursive, r.inline.skipped_growth
    );
    let _ = writeln!(
        out,
        "while->DO:  {} converted, {} rejected",
        r.whiledo.converted,
        r.whiledo.rejects.len()
    );
    let _ = writeln!(
        out,
        "ivsub:      {} variables, {} passes, {} backtracks",
        r.ivsub.substituted, r.ivsub.passes, r.ivsub.backtracks
    );
    let _ = writeln!(out, "forward:    {} substitutions", r.forward.substituted);
    let _ = writeln!(
        out,
        "constprop:  {} replaced, {} removed, {} rounds",
        r.constprop.replaced, r.constprop.removed, r.constprop.rounds
    );
    let _ = writeln!(out, "dce:        {} removed", r.dce.removed);
    let _ = writeln!(
        out,
        "vectorizer: {} vectorized, {} spread, {} scalar",
        r.vector.vectorized, r.vector.spread, r.vector.scalar
    );
    let _ = writeln!(
        out,
        "strength:   {} promoted, {} reduced, {} hoisted",
        r.strength.promoted, r.strength.reduced, r.strength.hoisted
    );
    out
}

/// The `--opt-report` block (text or JSON flavor).
pub fn opt_report_block(compiled: &Compilation, json: bool) -> String {
    let report = OptReport::build_for(&compiled.reports, &compiled.trace, &compiled.program.files);
    if json {
        format!("{}\n", report.to_json().to_string_compact())
    } else {
        report.render()
    }
}

/// The pipeline the CLI and the server both compile with:
/// [`Pipeline::for_options`] plus the `TITANC_INJECT_PANIC` test hook (a
/// pass that panics on the named procedure, used by the exit-code
/// integration tests to exercise fail-soft containment end to end).
pub fn base_pipeline(options: &Options) -> Pipeline {
    let mut pipeline = Pipeline::for_options(options);
    if let Ok(target) = std::env::var("TITANC_INJECT_PANIC") {
        pipeline.push_proc(InjectPanic { target });
    }
    pipeline
}

struct InjectPanic {
    target: String,
}

impl crate::ProcPass for InjectPanic {
    fn name(&self) -> &'static str {
        "inject-panic"
    }

    fn run_on(
        &self,
        proc: &mut titanc_il::Procedure,
        _cx: &crate::PassContext<'_>,
        _analyses: &mut crate::ProcAnalyses,
        _delta: &mut Reports,
    ) -> crate::PassOutcome {
        assert!(
            proc.name != self.target,
            "injected fault in `{}`",
            proc.name
        );
        crate::PassOutcome::unchanged()
    }
}

// ---------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------

/// A finished request: the wire response plus the session stats the
/// server folds into its totals (absent for front-end failures).
#[derive(Debug)]
pub struct Executed {
    /// The wire response.
    pub response: CompileResponse,
    /// Cache accounting for successful compiles.
    pub stats: Option<SessionStats>,
}

/// Executes one request against the shared resident cache, rendering
/// stdout/stderr exactly as one-shot `titanc` would (see the module
/// docs on byte identity).
pub fn execute(req: &CompileRequest, resident: &ResidentCache) -> Executed {
    let mut out = String::new();
    let mut err = String::new();
    let names: Vec<String> = req.files.iter().map(|f| f.name.clone()).collect();

    if req.files.is_empty() {
        return Executed {
            response: CompileResponse {
                id: req.id,
                exit: 2,
                stdout: out,
                stderr: "titanc: server: request carries no files\n".to_string(),
            },
            stats: None,
        };
    }

    let options = req.options();
    let pipeline = base_pipeline(&options);
    let compiled = match compile_session_resident(&req.files, &options, pipeline, resident) {
        Ok(sc) => {
            let stats = sc.stats;
            let compiled = sc.compilation;
            for d in &compiled.diagnostics {
                err.push_str(&diag_line(&names, d));
            }
            err.push_str(&cache_line(&stats));
            err.push('\n');
            for incident in &compiled.trace.incidents {
                err.push_str(&incident_line(incident));
            }
            if req.strict && compiled.has_incidents() {
                err.push_str(&strict_line(compiled.trace.incidents.len()));
                return Executed {
                    response: CompileResponse {
                        id: req.id,
                        exit: i64::from(EXIT_INCIDENT),
                        stdout: out,
                        stderr: err,
                    },
                    stats: Some(stats),
                };
            }
            (compiled, stats)
        }
        Err(e) => {
            for d in &e.diagnostics {
                err.push_str(&diag_line(&names, d));
            }
            return Executed {
                response: CompileResponse {
                    id: req.id,
                    exit: 1,
                    stdout: out,
                    stderr: err,
                },
                stats: None,
            };
        }
    };
    let (compiled, stats) = compiled;

    if req.print_il {
        out.push_str(&il_block(&compiled.program));
    }
    if req.stats {
        out.push_str(&stats_block(&compiled.reports));
    }
    match req.opt_report.as_str() {
        "text" => out.push_str(&opt_report_block(&compiled, false)),
        "json" => out.push_str(&opt_report_block(&compiled, true)),
        _ => {}
    }

    Executed {
        response: CompileResponse {
            id: req.id,
            exit: 0,
            stdout: out,
            stderr: err,
        },
        stats: Some(stats),
    }
}

// ---------------------------------------------------------------------
// The server engine
// ---------------------------------------------------------------------

/// Server configuration: the write-through cache directory (optional —
/// without one the cache lives purely in memory) and the request worker
/// pool size (`0` = available parallelism).
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// `--cache-dir`: write-through backing directory shared with
    /// one-shot `titanc` invocations.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Concurrent request workers (`-j`; `0` = available parallelism).
    pub workers: usize,
}

/// The reply to one protocol line.
#[derive(Debug)]
pub enum Reply {
    /// A serialized [`CompileResponse`] line.
    Line(String),
    /// The serialized shutdown acknowledgement (carrying
    /// [`ServerTotals`]); the server stops accepting after sending it.
    Shutdown(String),
}

/// A long-lived compile server: one shared [`ResidentCache`], a request
/// worker pool, and aggregate accounting. Drive it with [`serve_stdio`]
/// (newline-delimited JSON on stdin/stdout) or [`serve_unix`] (a Unix
/// domain socket), or feed it lines directly with [`handle_line`] for
/// in-process use (tests, benches).
///
/// [`serve_stdio`]: Server::serve_stdio
/// [`serve_unix`]: Server::serve_unix
/// [`handle_line`]: Server::handle_line
pub struct Server {
    resident: ResidentCache,
    totals: Mutex<ServerTotals>,
    workers: usize,
    quiet: bool,
}

impl Server {
    /// Builds a server over a fresh resident cache (seeded lazily from
    /// `config.cache_dir` as entries are first read).
    pub fn new(config: &ServerConfig) -> Server {
        Server {
            resident: ResidentCache::new(config.cache_dir.as_deref()),
            totals: Mutex::new(ServerTotals::default()),
            workers: match config.workers {
                0 => std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
                n => n,
            },
            quiet: false,
        }
    }

    /// Suppresses the per-request accounting log lines on stderr
    /// (benches and tests drive thousands of requests).
    pub fn quiet(mut self) -> Server {
        self.quiet = true;
        self
    }

    /// The shared resident cache (tests publish through it).
    pub fn resident(&self) -> &ResidentCache {
        &self.resident
    }

    /// A snapshot of the aggregate accounting.
    pub fn totals(&self) -> ServerTotals {
        self.totals.lock().unwrap().clone()
    }

    /// Handles one protocol line: parse, execute, account, serialize.
    /// Unparseable lines get an `exit: 2` response rather than killing
    /// the connection.
    pub fn handle_line(&self, line: &str) -> Reply {
        let doc = match parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                self.totals.lock().unwrap().protocol_errors += 1;
                return Reply::Line(protocol_error(-1, &format!("bad request line: {e}")));
            }
        };
        if let Some(flag) = doc.get("shutdown") {
            if flag.as_bool().unwrap_or(false) {
                let totals = self.totals();
                let ack = Json::obj(vec![
                    ("shutdown", Json::Bool(true)),
                    ("totals", totals.to_json()),
                ]);
                return Reply::Shutdown(ack.to_string_compact());
            }
        }
        let req = match CompileRequest::from_json(&doc) {
            Ok(req) => req,
            Err(e) => {
                self.totals.lock().unwrap().protocol_errors += 1;
                let id = doc.get("id").and_then(|v| v.as_i64().ok()).unwrap_or(-1);
                return Reply::Line(protocol_error(id, &format!("bad request: {e}")));
            }
        };
        let done = execute(&req, &self.resident);
        {
            let mut totals = self.totals.lock().unwrap();
            totals.requests += 1;
            if let Some(stats) = &done.stats {
                totals.fold(stats);
            }
        }
        if !self.quiet {
            // the per-request accounting line, tagged by request id, on
            // the daemon's own stderr (the response carries the client's
            // copy inside its stderr field)
            match &done.stats {
                Some(stats) => eprintln!(
                    "titand: req={} files={} exit={} {}",
                    req.id,
                    req.files.len(),
                    done.response.exit,
                    cache_line(stats)
                ),
                None => eprintln!(
                    "titand: req={} files={} exit={}",
                    req.id,
                    req.files.len(),
                    done.response.exit
                ),
            }
        }
        Reply::Line(done.response.to_json().to_string_compact())
    }

    /// Serves newline-delimited JSON on stdin/stdout: requests are
    /// batched across the worker pool and responses stream back as they
    /// finish (tagged by id — completion order is not request order).
    /// EOF on stdin is a graceful shutdown, as is a `{"shutdown":true}`
    /// line (acknowledged before the loop stops accepting).
    ///
    /// # Errors
    ///
    /// Returns the first stdin read error.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdout: Arc<Mutex<Box<dyn Write + Send>>> =
            Arc::new(Mutex::new(Box::new(io::stdout())));
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<String>();
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                let out = Arc::clone(&stdout);
                let rx = &rx;
                let stop = &stop;
                s.spawn(move || loop {
                    let line = rx.lock().unwrap().recv();
                    let Ok(line) = line else { break };
                    match self.handle_line(&line) {
                        Reply::Line(resp) => {
                            let mut out = out.lock().unwrap();
                            let _ = writeln!(out, "{resp}");
                            let _ = out.flush();
                        }
                        Reply::Shutdown(ack) => {
                            stop.store(true, Ordering::SeqCst);
                            let mut out = out.lock().unwrap();
                            let _ = writeln!(out, "{ack}");
                            let _ = out.flush();
                        }
                    }
                });
            }
            for line in io::stdin().lock().lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        drop(tx);
                        return Err(e);
                    }
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let _ = tx.send(line);
            }
            drop(tx);
            Ok(())
        })
    }

    /// Serves a Unix domain socket: each accepted connection is handed
    /// to the worker pool, which answers every request line on that
    /// connection in order (concurrency comes from concurrent
    /// connections). A `{"shutdown":true}` request is acknowledged,
    /// then the listener stops accepting.
    ///
    /// # Errors
    ///
    /// Returns bind/accept errors; per-connection IO errors just drop
    /// that connection.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &Path) -> io::Result<()> {
        let listener = bind_unix(path)?;
        self.serve_listener(listener, path)
    }

    /// [`serve_unix`](Server::serve_unix) over an already-bound
    /// listener — the daemon binds first so it can announce readiness
    /// before the accept loop starts.
    ///
    /// # Errors
    ///
    /// Returns accept errors; per-connection IO errors just drop that
    /// connection.
    #[cfg(unix)]
    pub fn serve_listener(
        &self,
        listener: std::os::unix::net::UnixListener,
        path: &Path,
    ) -> io::Result<()> {
        use std::os::unix::net::UnixStream;

        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<UnixStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|s| -> io::Result<()> {
            for _ in 0..self.workers {
                let rx = &rx;
                let stop = &stop;
                s.spawn(move || loop {
                    let stream = rx.lock().unwrap().recv();
                    let Ok(stream) = stream else { break };
                    let Ok(read) = stream.try_clone() else {
                        continue;
                    };
                    let mut write = stream;
                    let reader = BufReader::new(read);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        if line.trim().is_empty() {
                            continue;
                        }
                        match self.handle_line(&line) {
                            Reply::Line(resp) => {
                                if writeln!(write, "{resp}")
                                    .and_then(|()| write.flush())
                                    .is_err()
                                {
                                    break;
                                }
                            }
                            Reply::Shutdown(ack) => {
                                let _ = writeln!(write, "{ack}");
                                let _ = write.flush();
                                stop.store(true, Ordering::SeqCst);
                                // unblock the accept loop so it can see
                                // the stop flag
                                let _ = UnixStream::connect(path);
                                break;
                            }
                        }
                    }
                });
            }
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = tx.send(s);
                    }
                    Err(_) => continue,
                }
            }
            drop(tx);
            Ok(())
        })?;
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

/// Binds the daemon's Unix socket, replacing any leftover socket file
/// from a previous run.
///
/// # Errors
///
/// Returns the bind error.
#[cfg(unix)]
pub fn bind_unix(path: &Path) -> io::Result<std::os::unix::net::UnixListener> {
    let _ = std::fs::remove_file(path);
    std::os::unix::net::UnixListener::bind(path)
}

fn protocol_error(id: i64, message: &str) -> String {
    CompileResponse {
        id,
        exit: 2,
        stdout: String::new(),
        stderr: format!("titanc: server: {message}\n"),
    }
    .to_json()
    .to_string_compact()
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// Sends one request over a Unix socket and reads the response —
/// the transport behind `titanc --server <socket>`.
///
/// # Errors
///
/// Returns connect/IO errors, or `InvalidData` when the server's reply
/// is not a [`CompileResponse`] line.
#[cfg(unix)]
pub fn request_over_unix(addr: &Path, req: &CompileRequest) -> io::Result<CompileResponse> {
    use std::os::unix::net::UnixStream;

    let mut stream = UnixStream::connect(addr)?;
    writeln!(stream, "{}", req.to_json().to_string_compact())?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let doc = parse(line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))?;
    CompileResponse::from_json(&doc)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
}

/// Sends `{"shutdown":true}` over a Unix socket and returns the
/// server's aggregate totals from the acknowledgement.
///
/// # Errors
///
/// Returns connect/IO errors, or `InvalidData` on a malformed
/// acknowledgement.
#[cfg(unix)]
pub fn shutdown_over_unix(addr: &Path) -> io::Result<ServerTotals> {
    use std::os::unix::net::UnixStream;

    let mut stream = UnixStream::connect(addr)?;
    writeln!(stream, "{{\"shutdown\":true}}")?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let doc = parse(line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad ack: {e}")))?;
    let totals = doc
        .field("totals")
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad ack: {e}")))?;
    ServerTotals::from_json(totals)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad ack: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CacheStore;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("titanc-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_request(id: i64, tag: usize) -> CompileRequest {
        let src = format!(
            "float a{tag}[64], b{tag}[64];\n\
             void k{tag}(void) {{ int i; for (i = 0; i < 64; i++) \
             a{tag}[i] = a{tag}[i] + 2.0f * b{tag}[i]; }}\n\
             int main(void) {{ k{tag}(); return 0; }}\n"
        );
        CompileRequest {
            id,
            files: vec![SourceFile::new(format!("t{tag}.c"), src)],
            opt_report: "json".to_string(),
            ..CompileRequest::default()
        }
    }

    fn response_of(reply: Reply) -> CompileResponse {
        match reply {
            Reply::Line(line) => CompileResponse::from_json(&parse(&line).unwrap()).unwrap(),
            Reply::Shutdown(ack) => panic!("unexpected shutdown ack: {ack}"),
        }
    }

    #[test]
    fn protocol_errors_answer_exit_two_and_are_counted() {
        let server = Server::new(&ServerConfig::default()).quiet();
        let bad = response_of(server.handle_line("not json at all"));
        assert_eq!((bad.id, bad.exit), (-1, 2));
        assert!(bad.stderr.contains("bad request line"));

        let missing = response_of(server.handle_line(r#"{"id": 9}"#));
        assert_eq!((missing.id, missing.exit), (9, 2));
        assert!(missing.stderr.contains("bad request"));

        let totals = server.totals();
        assert_eq!(totals.protocol_errors, 2);
        assert_eq!(totals.requests, 0);
    }

    #[test]
    fn shutdown_ack_carries_the_totals() {
        let server = Server::new(&ServerConfig::default()).quiet();
        let req = tiny_request(5, 0).to_json().to_string_compact();
        assert_eq!(response_of(server.handle_line(&req)).exit, 0);
        match server.handle_line(r#"{"shutdown": true}"#) {
            Reply::Shutdown(ack) => {
                let doc = parse(&ack).unwrap();
                let totals = ServerTotals::from_json(doc.field("totals").unwrap()).unwrap();
                assert_eq!(totals.requests, 1);
                assert!(totals.misses > 0);
            }
            Reply::Line(line) => panic!("shutdown not acknowledged: {line}"),
        }
    }

    #[test]
    fn repeat_requests_hit_the_shared_resident_cache() {
        let server = Server::new(&ServerConfig::default()).quiet();
        let line = tiny_request(1, 3).to_json().to_string_compact();
        let cold = response_of(server.handle_line(&line));
        let warm = response_of(server.handle_line(&line));
        assert_eq!(cold.exit, 0, "{}", cold.stderr);
        assert_eq!(cold.stdout, warm.stdout);
        assert!(
            warm.stderr.contains("(fully warm)"),
            "repeat did not skip the pipeline:\n{}",
            warm.stderr
        );
        let totals = server.totals();
        assert_eq!(totals.fully_warm, 1);
        assert!(totals.hits > 0);
    }

    /// The ISSUE's second stress bar: the lock-race fix must hold under
    /// the server's concurrent load. Server workers compile through the
    /// shared write-through directory while external contenders (one-shot
    /// `titanc` processes in real life) hammer `CacheStore::lock` on the
    /// same directory, asserting the identity-token contract the whole
    /// time.
    #[test]
    fn external_lock_contenders_survive_concurrent_server_load() {
        const SERVER_THREADS: usize = 3;
        const REQUESTS_PER_THREAD: usize = 4;
        const CONTENDERS: usize = 3;

        let dir = scratch("lock-under-load");
        let config = ServerConfig {
            cache_dir: Some(dir.clone()),
            workers: SERVER_THREADS,
        };
        let server = Server::new(&config).quiet();
        let violations = AtomicUsize::new(0);
        let acquired = AtomicUsize::new(0);
        let serving = AtomicBool::new(true);

        std::thread::scope(|s| {
            for t in 0..SERVER_THREADS {
                let server = &server;
                s.spawn(move || {
                    for r in 0..REQUESTS_PER_THREAD {
                        let req = tiny_request((t * 100 + r) as i64, t * 100 + r);
                        let line = req.to_json().to_string_compact();
                        let resp = response_of(server.handle_line(&line));
                        assert_eq!(resp.exit, 0, "{}", resp.stderr);
                    }
                });
            }
            for _ in 0..CONTENDERS {
                let dir = &dir;
                let violations = &violations;
                let acquired = &acquired;
                let serving = &serving;
                s.spawn(move || {
                    let lock_path = dir.join(".lock");
                    while serving.load(Ordering::SeqCst) {
                        let mut store = CacheStore::open(dir);
                        if let Some(held) = store.lock() {
                            acquired.fetch_add(1, Ordering::SeqCst);
                            let read = std::fs::read_to_string(&lock_path).unwrap_or_default();
                            if read != held.token() {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                            drop(held);
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
            }
            // signal the contenders once totals show every request done
            loop {
                if server.totals().requests >= (SERVER_THREADS * REQUESTS_PER_THREAD) as i64 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            serving.store(false, Ordering::SeqCst);
        });

        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "a contender's lock was deleted out from under it during server load"
        );
        assert!(acquired.load(Ordering::SeqCst) > 0);
        assert_eq!(
            server.totals().requests as usize,
            SERVER_THREADS * REQUESTS_PER_THREAD
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
