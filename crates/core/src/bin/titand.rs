//! `titand` — the long-lived titanc compile server.
//!
//! ```text
//! titand [--socket PATH | --stdio] [--cache-dir DIR] [-j N] [--quiet]
//!
//!   --socket PATH       serve newline-delimited JSON compile requests
//!                       on a Unix domain socket (the default transport
//!                       for `titanc --server PATH`)
//!   --stdio             serve the same protocol on stdin/stdout
//!   --cache-dir DIR     write-through backing directory for the
//!                       resident cache; one-shot `titanc --cache-dir`
//!                       runs interoperate with the daemon on it
//!   -j N | --jobs N     request worker pool size (default: available
//!                       parallelism)
//!   --quiet             suppress the per-request accounting log lines
//! ```
//!
//! The daemon keeps the content-addressed IL cache resident in memory:
//! the first compile of a program pays the full pipeline, every
//! subsequent compile of unchanged procedures is served from the
//! in-memory map, and warm repeats skip the pipeline outright. Requests
//! are batched across the worker pool; responses stream back as they
//! finish, tagged by request id. Responses are byte-identical to
//! one-shot `titanc` on the same inputs (modulo the `titanc: cache:`
//! accounting line, which reflects cache state).
//!
//! `{"shutdown": true}` stops the daemon; the acknowledgement and the
//! final `titand: totals:` stderr line carry the aggregate accounting.

use std::path::PathBuf;
use std::process::ExitCode;
use titanc::server::{Server, ServerConfig};

struct Args {
    socket: Option<PathBuf>,
    stdio: bool,
    cache_dir: Option<PathBuf>,
    jobs: usize,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: titand [--socket PATH | --stdio] [--cache-dir DIR] [-j N|--jobs N] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        socket: None,
        stdio: false,
        cache_dir: None,
        jobs: 0,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => out.socket = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--stdio" => out.stdio = true,
            "--cache-dir" => {
                out.cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "-j" | "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--quiet" => out.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if out.stdio == out.socket.is_some() {
        // exactly one transport
        usage();
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let config = ServerConfig {
        cache_dir: args.cache_dir.clone(),
        workers: args.jobs,
    };
    let mut server = Server::new(&config);
    if args.quiet {
        server = server.quiet();
    }

    let served = if args.stdio {
        eprintln!("titand: serving stdio");
        server.serve_stdio()
    } else {
        let path = args.socket.expect("parse_args guarantees a transport");
        serve_socket(&server, &path)
    };
    if let Err(e) = served {
        eprintln!("titand: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("titand: totals: {}", server.totals());
    ExitCode::SUCCESS
}

#[cfg(unix)]
fn serve_socket(server: &Server, path: &std::path::Path) -> std::io::Result<()> {
    let listener = titanc::server::bind_unix(path)?;
    // the ready line goes out *after* bind succeeds, so a supervisor can
    // wait for it before launching clients
    eprintln!("titand: listening on {}", path.display());
    server.serve_listener(listener, path)
}

#[cfg(not(unix))]
fn serve_socket(_server: &Server, _path: &std::path::Path) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket needs Unix domain sockets on this platform; use --stdio",
    ))
}
