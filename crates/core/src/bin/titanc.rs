//! The `titanc` command-line driver.
//!
//! ```text
//! titanc [options] file.c [file.c ...]
//!
//!   -O0 | -O1 | -O2          optimization level (default -O2)
//!   -j N | --jobs N          compile procedures on N worker threads
//!                            (default: available parallelism; output is
//!                            byte-identical for every N)
//!   --cache-dir DIR          persistent compilation cache: procedures
//!                            whose parsed IL, options and pass pipeline
//!                            are unchanged skip optimization entirely on
//!                            the next run (output stays byte-identical)
//!   --parallel               emit `do parallel` loops
//!   --spread-lists           spread linked-list while loops (§10)
//!   --procs N                simulate N processors (1-4, default 1)
//!   --fortran-aliasing       assume pointer parameters do not alias (§9)
//!   --no-inline              disable inline expansion
//!   --strip N                vector strip length (default 32)
//!   --print-il               print the optimized IL for every procedure
//!   --snapshots              print every procedure after every phase
//!   --verify                 run the IL verifier between passes
//!   --time                   print per-pass wall-clock timings
//!   --catalog FILE           link a procedure catalog (repeatable)
//!   --emit-catalog FILE      write the parsed (pre-optimization) program
//!                            as a catalog, as §7 prescribes — the
//!                            consumer's inliner optimizes in context
//!   --emit-catalog-optimized FILE
//!                            write the post-O2 program as a catalog
//!                            (the pre-PR-5 --emit-catalog behavior)
//!   --run [ENTRY]            execute on the simulated Titan (default main)
//!   --volatile-values LIST   comma-separated device-register script
//!   --stats                  print pass statistics (per-pass deltas)
//!   --opt-report[=json]      per-loop optimization report (text or JSON);
//!                            byte-identical for every -j value
//!   --trace-json FILE        write pass timings and worker lanes as a
//!                            Chrome trace-event file (chrome://tracing)
//!   --max-errors N           stop after N front-end errors (0 = no cap)
//!   --strict                 fail (exit 3) if any pass incident was contained
//! ```
//!
//! Exit codes: `0` success, `1` source diagnostics (or I/O / simulator
//! failure), `2` usage error, `3` a contained pass incident under
//! `--strict`. With `--run`, a successful simulation exits with the
//! program's own return value instead.
//!
//! Example:
//!
//! ```text
//! titanc --parallel --procs 2 --run --stats corpus/daxpy.c
//! ```

use std::path::Path;
use std::process::ExitCode;
use titanc::server;
use titanc::{
    compile_session_with, compile_with, Aliasing, Catalog, Compilation, Options, SessionStats,
    SourceFile,
};
use titanc_titan::{MachineConfig, Simulator};

struct Cli {
    files: Vec<String>,
    options: Options,
    procs: u32,
    print_il: bool,
    stats: bool,
    /// `Some(false)` = text report, `Some(true)` = JSON.
    opt_report: Option<bool>,
    trace_json: Option<String>,
    time: bool,
    run: bool,
    strict: bool,
    entry: String,
    emit_catalog: Option<String>,
    emit_catalog_optimized: Option<String>,
    cache_dir: Option<String>,
    volatile_values: Vec<i64>,
    /// `--server SOCKET`: compile via a running `titand` instead of
    /// in-process.
    server: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: titanc [-O0|-O1|-O2] [-j N|--jobs N] [--parallel] [--procs N]\n\
         \x20             [--fortran-aliasing] [--cache-dir DIR]\n\
         \x20             [--no-inline] [--strip N] [--print-il] [--snapshots]\n\
         \x20             [--verify] [--time] [--max-errors N] [--strict]\n\
         \x20             [--opt-report[=json]] [--trace-json FILE]\n\
         \x20             [--catalog FILE]... [--emit-catalog FILE]\n\
         \x20             [--emit-catalog-optimized FILE]\n\
         \x20             [--run [ENTRY]] [--volatile-values a,b,c] [--stats]\n\
         \x20             [--server SOCKET] file.c [file.c ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        files: Vec::new(),
        options: Options::o2(),
        procs: 1,
        print_il: false,
        stats: false,
        opt_report: None,
        trace_json: None,
        time: false,
        run: false,
        strict: false,
        entry: "main".to_string(),
        emit_catalog: None,
        emit_catalog_optimized: None,
        cache_dir: None,
        volatile_values: Vec::new(),
        server: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // set only the level-dependent fields so `-On` composes with
            // other flags regardless of argument order
            "-O0" => {
                cli.options.opt = titanc::OptLevel::O0;
                cli.options.inline = false;
            }
            "-O1" => {
                cli.options.opt = titanc::OptLevel::O1;
                cli.options.inline = false;
            }
            "-O2" => {
                cli.options.opt = titanc::OptLevel::O2;
                cli.options.inline = true;
            }
            "--parallel" => cli.options.parallelize = true,
            "--spread-lists" => cli.options.spread_lists = true,
            "--fortran-aliasing" => cli.options.aliasing = Aliasing::Fortran,
            "--no-inline" => cli.options.inline = false,
            "--snapshots" => cli.options.snapshots = true,
            "--verify" => cli.options.verify = true,
            "--strict" => cli.strict = true,
            "--max-errors" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.options.max_errors = v.parse().unwrap_or_else(|_| usage());
            }
            "--time" => cli.time = true,
            "--print-il" => cli.print_il = true,
            "--stats" => cli.stats = true,
            "--opt-report" | "--opt-report=text" => cli.opt_report = Some(false),
            "--opt-report=json" => cli.opt_report = Some(true),
            "--trace-json" => {
                cli.trace_json = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--procs" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.procs = v.parse().unwrap_or_else(|_| usage());
                if !(1..=4).contains(&cli.procs) {
                    eprintln!("titanc: --procs must be 1-4 (the Titan had up to four)");
                    std::process::exit(2);
                }
            }
            "-j" | "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.options.jobs = v.parse().unwrap_or_else(|_| usage());
                if cli.options.jobs == 0 {
                    eprintln!("titanc: --jobs must be at least 1 (omit the flag for auto)");
                    std::process::exit(2);
                }
            }
            "--strip" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.options.strip = v.parse().unwrap_or_else(|_| usage());
            }
            "--catalog" => {
                let path = args.next().unwrap_or_else(|| usage());
                match Catalog::load(&path) {
                    Ok(c) => cli.options.catalogs.push(c),
                    Err(e) => {
                        eprintln!("titanc: cannot load catalog {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--emit-catalog" => {
                cli.emit_catalog = Some(args.next().unwrap_or_else(|| usage()));
                // the catalog wants the *parsed* program; keep it around
                cli.options.keep_parsed = true;
            }
            "--emit-catalog-optimized" => {
                cli.emit_catalog_optimized = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--cache-dir" => {
                cli.cache_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--server" => {
                cli.server = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--run" => {
                cli.run = true;
                if let Some(next) = args.peek() {
                    if !next.starts_with('-') && !next.ends_with(".c") {
                        cli.entry = args.next().unwrap();
                    }
                }
            }
            "--volatile-values" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.volatile_values = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("titanc: unknown option `{arg}`");
                usage();
            }
            _ => cli.files.push(arg),
        }
    }
    cli
}

/// Prints a diagnostic through the shared renderer (single-file
/// invocations keep the classic `file:line:col: message` shape).
fn print_diag(files: &[String], d: &impl std::fmt::Display) {
    eprint!("{}", server::diag_line(files, d));
}

fn main() -> ExitCode {
    let cli = parse_args();
    if cli.files.is_empty() {
        usage();
    }
    if let Some(addr) = cli.server.clone() {
        return run_client(cli, &addr);
    }
    let file = cli.files[0].clone();

    // the server executor builds the same pipeline; byte identity between
    // the two entry points is by shared construction
    let pipeline = server::base_pipeline(&cli.options);

    // a plain single-file compile takes the classic path; several files
    // or a cache directory make it a session
    let session = cli.files.len() > 1 || cli.cache_dir.is_some();
    let mut session_stats: Option<SessionStats> = None;
    let compiled: Compilation = if session {
        let mut sources = Vec::with_capacity(cli.files.len());
        for f in &cli.files {
            match std::fs::read_to_string(f) {
                Ok(src) => sources.push(SourceFile::new(f.clone(), src)),
                Err(e) => {
                    eprintln!("titanc: cannot read {f}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let dir = cli.cache_dir.as_deref().map(Path::new);
        match compile_session_with(&sources, &cli.options, pipeline, dir) {
            Ok(sc) => {
                session_stats = Some(sc.stats);
                sc.compilation
            }
            Err(e) => {
                for d in &e.diagnostics {
                    print_diag(&cli.files, d);
                }
                return ExitCode::FAILURE;
            }
        }
    } else {
        let src = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("titanc: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match compile_with(&src, &cli.options, pipeline) {
            Ok(c) => c,
            Err(e) => {
                // the recovering front end collected every independent
                // mistake; report them all, in source order
                for d in &e.diagnostics {
                    eprintln!("{file}:{d}");
                }
                return ExitCode::FAILURE;
            }
        }
    };
    // warnings and remarks from a successful compile (loops left scalar
    // and the defeating dependence, exhausted budgets)
    for d in &compiled.diagnostics {
        print_diag(&cli.files, d);
    }
    // the cache accounting line is stable: CI's cache-smoke job parses it
    if let (Some(stats), Some(_)) = (&session_stats, &cli.cache_dir) {
        eprintln!("{}", server::cache_line(stats));
    }
    // contained faults: the affected procedures were rolled back to their
    // last-verified IL and shipped unoptimized
    for incident in &compiled.trace.incidents {
        eprint!("{}", server::incident_line(incident));
    }
    if cli.strict && compiled.has_incidents() {
        eprint!("{}", server::strict_line(compiled.trace.incidents.len()));
        return ExitCode::from(server::EXIT_INCIDENT);
    }

    if cli.options.snapshots {
        for snap in &compiled.snapshots {
            println!(
                "===== {} after {} =====\n{}",
                snap.proc, snap.phase, snap.il
            );
        }
    }
    if cli.print_il {
        print!("{}", server::il_block(&compiled.program));
    }
    if cli.stats {
        print!("{}", server::stats_block(&compiled.reports));
    }
    if let Some(json) = cli.opt_report {
        print!("{}", server::opt_report_block(&compiled, json));
    }
    if let Some(path) = &cli.trace_json {
        let trace = titanc::chrome_trace(&compiled.trace).to_string_compact();
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("titanc: cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cli.time {
        for rec in &compiled.trace.records {
            println!(
                "pass {:<12} {:>9.3} ms  cache {:>3} hits {:>3} builds{}",
                rec.name,
                rec.duration.as_secs_f64() * 1e3,
                rec.cache.hits(),
                rec.cache.builds(),
                if rec.changed { "" } else { "  (no change)" }
            );
        }
        let totals = compiled.trace.cache_totals();
        println!(
            "pass total     {:>9.3} ms  cache {:>3} hits {:>3} builds ({} repairs, {} invalidations)",
            compiled.trace.total_duration().as_secs_f64() * 1e3,
            totals.hits(),
            totals.builds(),
            totals.repairs,
            totals.invalidations
        );
    }

    if cli.emit_catalog.is_some() || cli.emit_catalog_optimized.is_some() {
        let name = Path::new(&file)
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_else(|| "catalog".into());
        if let Some(path) = &cli.emit_catalog {
            // §7: catalogs hold parsed procedures, so the *consumer's*
            // inliner can expand them in context and optimize the result
            let parsed = compiled.parsed.as_ref().unwrap_or(&compiled.program);
            let catalog = Catalog::from_program(name.clone(), parsed);
            if let Err(e) = catalog.save(path) {
                eprintln!("titanc: cannot write catalog {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("catalog written to {path}");
        }
        if let Some(path) = &cli.emit_catalog_optimized {
            let catalog = Catalog::from_program(name, &compiled.program);
            if let Err(e) = catalog.save(path) {
                eprintln!("titanc: cannot write catalog {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("catalog written to {path}");
        }
    }

    if cli.run {
        let mut machine = MachineConfig::optimized(cli.procs);
        if cli.options.opt == titanc::OptLevel::O1 || cli.options.opt == titanc::OptLevel::O0 {
            machine = MachineConfig::scalar();
            machine.num_procs = cli.procs;
        }
        let mut sim = Simulator::new(&compiled.program, machine);
        sim.push_volatile_values(&cli.volatile_values);
        match sim.run(&cli.entry, &[]) {
            Ok(result) => {
                for line in &result.stats.output {
                    println!("{line}");
                }
                println!(
                    "[titan] {:.0} cycles, {:.3} ms at 16 MHz, {:.2} MFLOPS, exit {}",
                    result.stats.cycles,
                    result.stats.seconds(16.0) * 1e3,
                    result.stats.mflops(16.0),
                    result
                        .value
                        .map(|v| v.as_int().to_string())
                        .unwrap_or_else(|| "void".into())
                );
                if let Some(v) = result.value {
                    return ExitCode::from((v.as_int() & 0xff) as u8);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `--server SOCKET`: ship the compile to a running `titand` and relay
/// its response verbatim — stdout, stderr, and exit code are exactly
/// what an in-process run would have produced (plus the daemon's
/// `titanc: cache:` accounting line, which one-shot runs only print
/// under `--cache-dir`).
#[cfg(unix)]
fn run_client(cli: Cli, addr: &str) -> ExitCode {
    // flags that need the client's filesystem, its terminal, or the
    // simulator cannot ride the protocol
    let unsupported = [
        (cli.run, "--run"),
        (cli.time, "--time"),
        (cli.trace_json.is_some(), "--trace-json"),
        (cli.emit_catalog.is_some(), "--emit-catalog"),
        (
            cli.emit_catalog_optimized.is_some(),
            "--emit-catalog-optimized",
        ),
        (cli.cache_dir.is_some(), "--cache-dir"),
        (cli.options.snapshots, "--snapshots"),
        (!cli.options.catalogs.is_empty(), "--catalog"),
        (!cli.volatile_values.is_empty(), "--volatile-values"),
    ];
    for (set, flag) in unsupported {
        if set {
            eprintln!("titanc: {flag} cannot be combined with --server");
            std::process::exit(2);
        }
    }
    let mut files = Vec::with_capacity(cli.files.len());
    for f in &cli.files {
        match std::fs::read_to_string(f) {
            Ok(src) => files.push(SourceFile::new(f.clone(), src)),
            Err(e) => {
                eprintln!("titanc: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let req = server::CompileRequest {
        id: i64::from(std::process::id()),
        files,
        opt: match cli.options.opt {
            titanc::OptLevel::O0 => 0,
            titanc::OptLevel::O1 => 1,
            titanc::OptLevel::O2 => 2,
        },
        parallelize: cli.options.parallelize,
        spread_lists: cli.options.spread_lists,
        fortran_aliasing: matches!(cli.options.aliasing, Aliasing::Fortran),
        inline: cli.options.inline,
        strip: cli.options.strip,
        jobs: cli.options.jobs as i64,
        verify: cli.options.verify,
        max_errors: cli.options.max_errors as i64,
        strict: cli.strict,
        print_il: cli.print_il,
        stats: cli.stats,
        opt_report: match cli.opt_report {
            None => "none",
            Some(false) => "text",
            Some(true) => "json",
        }
        .to_string(),
    };
    match server::request_over_unix(Path::new(addr), &req) {
        Ok(resp) => {
            print!("{}", resp.stdout);
            eprint!("{}", resp.stderr);
            ExitCode::from((resp.exit & 0xff) as u8)
        }
        Err(e) => {
            eprintln!("titanc: server {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn run_client(_cli: Cli, _addr: &str) -> ExitCode {
    eprintln!("titanc: --server needs Unix domain sockets on this platform");
    ExitCode::from(2)
}
