//! The pass manager.
//!
//! Every transformation of the compiler — the §5 scalar optimizations, the
//! §9 vectorizer, the §6 dependence-driven scalar improvements and the §7
//! inliner — runs behind the uniform [`Pass`] interface. A [`Pipeline`] is
//! the declarative description of one compilation strategy: `-O1` and
//! `-O2` are nothing more than different pipeline constructions (see
//! [`Pipeline::for_options`]), mirroring the paper's presentation of the
//! compiler as a fixed sequence of cooperating phases.
//!
//! Running a pipeline produces three artifacts beyond the transformed
//! program:
//!
//! * a [`PassTrace`] with one [`PassRecord`] per executed pass — its
//!   wall-clock duration and the per-pass *delta* of the aggregate
//!   [`Reports`], so regressions in either compile time or pass
//!   effectiveness are visible per pass rather than per compilation;
//! * typed [`Snapshot`]s of every procedure after every pass (when
//!   [`Options::snapshots`] is set) — the §9 walkthrough artifacts;
//! * verifier coverage: after every pass the IL is re-checked with
//!   [`titanc_il::verify_program`] in debug builds (and in release builds
//!   when [`Options::verify`] is set), so a pass that breaks an IL
//!   invariant is caught at the boundary where it fired.

use std::time::{Duration, Instant};

use titanc_il::Program;

use crate::{OptLevel, Options, Reports, VectorOptions};

/// Read-only context handed to every pass.
pub struct PassContext<'a> {
    /// The compilation options the pipeline was built from.
    pub options: &'a Options,
}

/// What a pass did, as far as the manager is concerned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassOutcome {
    /// True when the pass changed the program.
    pub changed: bool,
}

impl PassOutcome {
    /// An outcome flagged as having changed the program.
    pub fn changed() -> PassOutcome {
        PassOutcome { changed: true }
    }

    /// An outcome flagged as a no-op.
    pub fn unchanged() -> PassOutcome {
        PassOutcome { changed: false }
    }
}

/// A uniform interface over every program transformation.
///
/// A pass transforms the whole [`Program`] (per-procedure passes loop over
/// `program.procs` internally) and accounts for its work by merging counts
/// into `delta`, a fresh [`Reports`] value the manager aggregates and
/// records in the [`PassTrace`].
pub trait Pass {
    /// Stable pass name, used in traces, snapshots and `--stats` output.
    fn name(&self) -> &'static str;

    /// Transforms `program`, recording statistics into `delta`.
    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome;
}

/// One executed pass in a [`PassTrace`].
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// The pass name.
    pub name: &'static str,
    /// Wall-clock time the pass took.
    pub duration: Duration,
    /// The statistics this pass alone contributed.
    pub delta: Reports,
    /// Whether the pass reported changing the program.
    pub changed: bool,
}

/// The per-pass execution record of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PassTrace {
    /// One record per executed pass, in execution order.
    pub records: Vec<PassRecord>,
}

impl PassTrace {
    /// The position of the first record with the given pass name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.records.iter().position(|r| r.name == name)
    }

    /// The first record with the given pass name.
    pub fn record(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }
}

/// A pretty-printed procedure image captured after one phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// The phase that just ran (`"lower"` or a pass name).
    pub phase: String,
    /// The procedure name.
    pub proc: String,
    /// The pretty-printed IL.
    pub il: String,
}

/// Captures a snapshot of every procedure under the given phase name.
pub(crate) fn snapshot_all(phase: &str, program: &Program, out: &mut Vec<Snapshot>) {
    for p in &program.procs {
        out.push(Snapshot {
            phase: phase.to_string(),
            proc: p.name.clone(),
            il: titanc_il::pretty_proc(p),
        });
    }
}

/// Panics with an internal-compiler-error report when the IL is broken.
pub(crate) fn verify_or_ice(phase: &str, program: &Program) {
    if let Err(errors) = titanc_il::verify_program(program) {
        let rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
        panic!(
            "internal compiler error: IL verification failed after `{phase}`:\n  {}",
            rendered.join("\n  ")
        );
    }
}

/// A declarative sequence of passes.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Builds the pipeline the given options describe.
    ///
    /// * Inlining (§7) always runs first when enabled, so §8's
    ///   specialization opportunities exist before scalar optimization.
    /// * `-O1` is the §5.2 scalar sequence: while→DO conversion right
    ///   after use–def chains, induction-variable substitution, forward
    ///   substitution, constant propagation, dead-code elimination.
    /// * `-O2` appends the vector phase: optional §10 list spreading, the
    ///   Allen–Kennedy vectorizer, the §6 strength reduction, and a
    ///   cleanup round (forward substitution, local CSE, DCE) for the dead
    ///   index arithmetic strength reduction leaves behind.
    pub fn for_options(options: &Options) -> Pipeline {
        let mut pl = Pipeline::new();
        if options.inline {
            pl.push(InlinePass);
        }
        if options.opt == OptLevel::O0 {
            return pl;
        }
        pl.push(WhileDoPass);
        pl.push(IvSubPass);
        pl.push(ForwardPass);
        pl.push(ConstPropPass);
        pl.push(DcePass);
        if options.opt == OptLevel::O2 {
            if options.spread_lists && options.parallelize {
                pl.push(SpreadListsPass);
            }
            pl.push(VectorizePass);
            pl.push(StrengthPass);
            pl.push(ForwardPass);
            pl.push(CsePass);
            pl.push(DcePass);
        }
        pl
    }

    /// Runs every pass in order over `program`.
    ///
    /// Returns the aggregated [`Reports`] and the [`PassTrace`]; when
    /// [`Options::snapshots`] is set, a [`Snapshot`] of every procedure is
    /// appended to `snapshots` after each pass. The IL verifier runs after
    /// every pass in debug builds and, in release builds, when
    /// [`Options::verify`] is set; a violation is an internal compiler
    /// error and panics.
    pub fn run(
        &self,
        program: &mut Program,
        options: &Options,
        snapshots: &mut Vec<Snapshot>,
    ) -> (Reports, PassTrace) {
        let cx = PassContext { options };
        let verify = cfg!(debug_assertions) || options.verify;
        let mut reports = Reports::default();
        let mut trace = PassTrace::default();
        for pass in &self.passes {
            let mut delta = Reports::default();
            let start = Instant::now();
            let outcome = pass.run(program, &cx, &mut delta);
            let duration = start.elapsed();
            if verify {
                verify_or_ice(pass.name(), program);
            }
            if options.snapshots {
                snapshot_all(pass.name(), program, snapshots);
            }
            reports.merge(delta.clone());
            trace.records.push(PassRecord {
                name: pass.name(),
                duration,
                delta,
                changed: outcome.changed,
            });
        }
        (reports, trace)
    }
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::new()
    }
}

/// §7 inline expansion (runs before scalar optimization).
pub struct InlinePass;

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        let r = titanc_inline::inline_program(program, &cx.options.inline_opts);
        let changed = r.inlined > 0 || r.statics_externalized > 0;
        delta.inline.merge(r);
        PassOutcome { changed }
    }
}

/// §5.2 while→DO conversion.
pub struct WhileDoPass;

impl Pass for WhileDoPass {
    fn name(&self) -> &'static str {
        "whiledo"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.whiledo.merge(titanc_opt::convert_while_loops(proc));
        }
        PassOutcome {
            changed: delta.whiledo.converted > 0,
        }
    }
}

/// §5.2 induction-variable substitution with backtracking.
pub struct IvSubPass;

impl Pass for IvSubPass {
    fn name(&self) -> &'static str {
        "ivsub"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.ivsub.merge(titanc_opt::induction_substitution(proc));
        }
        PassOutcome {
            changed: delta.ivsub.substituted > 0,
        }
    }
}

/// Forward substitution of single-use scalar definitions.
pub struct ForwardPass;

impl Pass for ForwardPass {
    fn name(&self) -> &'static str {
        "forward"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.forward.merge(titanc_opt::forward_substitute(proc));
        }
        PassOutcome {
            changed: delta.forward.substituted > 0,
        }
    }
}

/// §8 constant propagation with the unreachable-code heuristic.
pub struct ConstPropPass;

impl Pass for ConstPropPass {
    fn name(&self) -> &'static str {
        "constprop"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta
                .constprop
                .merge(titanc_opt::constant_propagation(proc));
        }
        PassOutcome {
            changed: delta.constprop.replaced > 0 || delta.constprop.removed > 0,
        }
    }
}

/// Dead-code elimination.
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.dce.merge(titanc_opt::eliminate_dead_code(proc));
        }
        PassOutcome {
            changed: delta.dce.removed > 0,
        }
    }
}

/// Local common-subexpression elimination.
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.cse.merge(titanc_opt::local_cse(proc));
        }
        PassOutcome {
            changed: delta.cse.commoned > 0,
        }
    }
}

/// §10 linked-list loop spreading (opt-in future work).
pub struct SpreadListsPass;

impl Pass for SpreadListsPass {
    fn name(&self) -> &'static str {
        "spread_lists"
    }

    fn run(&self, program: &mut Program, _: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta.spread.merge(titanc_vector::spread_list_loops(proc));
        }
        PassOutcome {
            changed: delta.spread.spread > 0,
        }
    }
}

/// The §9 Allen–Kennedy vectorizer (with strip mining and `do parallel`).
pub struct VectorizePass;

impl Pass for VectorizePass {
    fn name(&self) -> &'static str {
        "vectorize"
    }

    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        let vopts = VectorOptions {
            aliasing: cx.options.aliasing,
            parallelize: cx.options.parallelize,
            strip: cx.options.strip,
            max_vl: cx.options.max_vl,
        };
        for proc in &mut program.procs {
            delta.vector.merge(titanc_vector::vectorize(proc, &vopts));
        }
        PassOutcome {
            changed: delta.vector.vectorized > 0 || delta.vector.spread > 0,
        }
    }
}

/// The §6 dependence-driven scalar optimizations.
pub struct StrengthPass;

impl Pass for StrengthPass {
    fn name(&self) -> &'static str {
        "strength"
    }

    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        for proc in &mut program.procs {
            delta
                .strength
                .merge(titanc_vector::strength_reduce(proc, cx.options.aliasing));
        }
        PassOutcome {
            changed: delta.strength.promoted > 0
                || delta.strength.reduced > 0
                || delta.strength.hoisted > 0,
        }
    }
}
