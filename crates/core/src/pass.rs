//! The pass manager.
//!
//! Every transformation of the compiler — the §5 scalar optimizations, the
//! §9 vectorizer, the §6 dependence-driven scalar improvements and the §7
//! inliner — runs behind one of two uniform interfaces. Whole-program
//! transformations (the inliner, which moves code *between* procedures)
//! implement [`Pass`]; everything else is a per-procedure transformation
//! and implements [`ProcPass`]. A [`Pipeline`] is the declarative
//! description of one compilation strategy: `-O1` and `-O2` are nothing
//! more than different pipeline constructions (see
//! [`Pipeline::for_options`]), mirroring the paper's presentation of the
//! compiler as a fixed sequence of cooperating phases.
//!
//! ## Parallel per-procedure execution
//!
//! Maximal runs of consecutive [`ProcPass`] stages are grouped: each
//! procedure is sent through the *whole group* as one unit of work, and
//! the procedures fan out across [`Options::jobs`] worker threads
//! (`std::thread::scope`, no runtime dependency). Each unit carries the
//! procedure, its [`ProcAnalyses`] cache slot, and produces a
//! [`ProcResult`]: per-pass deltas, timings, cache counters and
//! snapshots. Results are merged **in procedure order, pass-major**, and
//! the serial path (`jobs = 1`) runs the exact same per-procedure chain,
//! so `-j 1` and `-j N` produce byte-identical programs, reports, traces
//! and snapshot sequences.
//!
//! ## The generation-keyed analysis cache
//!
//! Each worker threads a [`ProcAnalyses`] slot through its procedure's
//! pass chain. Passes request the CFG, use–def chains, liveness,
//! dominators, or loop nest from the slot; artifacts are memoized keyed
//! to the procedure's *generation counter*, which every mutating pass
//! bumps (the manager bumps defensively when a pass reports a change
//! without moving the counter). Passes performing only pure expression
//! rewrites repair instead of invalidating ([`ProcAnalyses::rekey`] —
//! the §5.2 incremental use–def maintenance). Per-pass cache counters
//! land in [`PassRecord::cache`].
//!
//! Running a pipeline produces three artifacts beyond the transformed
//! program:
//!
//! * a [`PassTrace`] with one [`PassRecord`] per executed pass — its
//!   wall-clock duration (summed across workers for parallel groups), the
//!   per-pass *delta* of the aggregate [`Reports`], and the cache
//!   hit/build counters, so regressions in compile time, pass
//!   effectiveness, or cache effectiveness are visible per pass;
//! * typed [`Snapshot`]s (when [`Options::snapshots`] is set) of every
//!   procedure **whose generation moved** during a pass — the §9
//!   walkthrough artifacts, now without identical copies of untouched
//!   procedures;
//! * verifier coverage: procedures whose generation moved are re-checked
//!   with [`titanc_il::verify_proc`] after the pass that moved them (in
//!   debug builds, and in release builds when [`Options::verify`] is
//!   set); a final whole-program [`titanc_il::verify_program`] closes the
//!   run when anything changed. Unchanged procedures skip re-verification
//!   entirely.

use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

use titanc_analysis::{AnalysisCache, CacheStats, ProcAnalyses};
use titanc_il::{Procedure, Program};

use crate::{OptLevel, Options, Reports, VectorOptions};

/// Read-only context handed to every pass.
pub struct PassContext<'a> {
    /// The compilation options the pipeline was built from.
    pub options: &'a Options,
}

/// What a pass did, as far as the manager is concerned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassOutcome {
    /// True when the pass changed the program.
    pub changed: bool,
}

impl PassOutcome {
    /// An outcome flagged as having changed the program.
    pub fn changed() -> PassOutcome {
        PassOutcome { changed: true }
    }

    /// An outcome flagged as a no-op.
    pub fn unchanged() -> PassOutcome {
        PassOutcome { changed: false }
    }
}

/// A whole-program transformation.
///
/// A pass transforms the whole [`Program`] and accounts for its work by
/// merging counts into `delta`, a fresh [`Reports`] value the manager
/// aggregates and records in the [`PassTrace`]. Implement this directly
/// only for transformations that must see every procedure at once (the
/// inliner); per-procedure transformations should implement [`ProcPass`]
/// instead, which provides `Pass` via a blanket impl and additionally
/// runs in parallel inside pipelines.
pub trait Pass {
    /// Stable pass name, used in traces, snapshots and `--stats` output.
    fn name(&self) -> &'static str;

    /// Transforms `program`, recording statistics into `delta`.
    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome;
}

/// A per-procedure transformation — the parallel unit of the pipeline.
///
/// The manager fans procedures across worker threads, so implementations
/// must be `Sync` (they are shared by reference; all the built-in passes
/// are stateless unit structs). `analyses` is the procedure's
/// generation-keyed cache slot: request analyses from it instead of
/// building them, and keep the generation honest — bump it on mutation
/// (or let the underlying transformation do so), `rekey` after pure
/// expression rewrites, `invalidate` after structural edits.
pub trait ProcPass: Sync {
    /// Stable pass name, used in traces, snapshots and `--stats` output.
    fn name(&self) -> &'static str;

    /// Transforms one procedure, recording statistics into `delta`.
    fn run_on(
        &self,
        proc: &mut Procedure,
        cx: &PassContext<'_>,
        analyses: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome;
}

/// Every per-procedure pass is also a whole-program pass: loop over the
/// procedures serially with throwaway cache slots. This keeps custom
/// pipelines built with [`Pipeline::push`] working unchanged; pipelines
/// built with [`Pipeline::push_proc`] (and [`Pipeline::for_options`]) get
/// the parallel, cache-threading execution instead.
impl<T: ProcPass> Pass for T {
    fn name(&self) -> &'static str {
        ProcPass::name(self)
    }

    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        let mut changed = false;
        for proc in &mut program.procs {
            let mut analyses = ProcAnalyses::new();
            changed |= self.run_on(proc, cx, &mut analyses, delta).changed;
        }
        PassOutcome { changed }
    }
}

/// One executed pass in a [`PassTrace`].
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// The pass name.
    pub name: &'static str,
    /// Wall-clock time the pass took (summed across procedures for
    /// parallel per-procedure groups, so it stays comparable between
    /// `-j 1` and `-j N`). Skipped (pass × procedure) cells contribute
    /// exactly zero; faulted cells contribute the time spent before the
    /// fault was contained.
    pub duration: Duration,
    /// The statistics this pass alone contributed.
    pub delta: Reports,
    /// Whether the pass reported changing the program.
    pub changed: bool,
    /// Analysis-cache counters this pass alone contributed (always zero
    /// for whole-program passes, which do not thread the cache).
    pub cache: CacheStats,
    /// Procedures that skipped this pass because an earlier pass had
    /// already degraded them (their cells carry zero duration).
    pub skipped_procs: usize,
    /// Procedures on which this pass itself faulted (panic or verifier
    /// rejection) and was rolled back.
    pub faulted_procs: usize,
}

/// One (pass × procedure) execution interval, stamped against the
/// pipeline's start instant — the raw material of `--trace-json`'s Chrome
/// trace-event export. Unlike [`PassRecord`]s and [`Reports`], the
/// timeline is *timing* data: wall-clock offsets and worker-lane
/// assignments legitimately differ between runs and between `-j` values.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// The pass that ran.
    pub pass: &'static str,
    /// The procedure it ran on (empty for whole-program passes).
    pub proc: String,
    /// Worker lane: `0` for the main thread (serial groups and
    /// whole-program passes), `1..=N` for parallel group workers.
    pub lane: usize,
    /// Offset of the execution's start from the pipeline's start.
    pub start: Duration,
    /// How long the execution took.
    pub duration: Duration,
}

/// Why a pass execution was abandoned and rolled back.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IncidentKind {
    /// The pass panicked (an `unwrap`, index, or `panic!` deep in the
    /// optimizer). The worker caught the unwind; nothing escaped.
    Panic,
    /// The pass completed but left IL the inter-pass verifier rejects.
    VerifyFailed,
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IncidentKind::Panic => "panic",
            IncidentKind::VerifyFailed => "verifier rejection",
        })
    }
}

/// A contained pass failure: the fault, where it happened, and the fact
/// that the procedure was rolled back to its last-verified IL.
///
/// Incidents are the pass manager's fail-soft currency. A pass that
/// panics or produces unverifiable IL no longer aborts the compilation
/// (or poisons a worker thread): the (pass × procedure) execution is
/// abandoned, the procedure reverts to the IL that last passed
/// verification, the procedure is marked *degraded* — its remaining
/// optimization passes are skipped, mirroring the paper's "simply fails
/// to vectorize" degradation — and the incident is recorded here. The
/// driver decides whether incidents are fatal (`--strict`) or merely
/// reported.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PassIncident {
    /// The pass that faulted.
    pub pass: &'static str,
    /// The procedure being transformed (`None` for whole-program passes
    /// and the final program-level verification).
    pub proc: Option<String>,
    /// What kind of fault was contained.
    pub kind: IncidentKind,
    /// The panic message or the verifier's rendered violation list.
    pub detail: String,
}

impl std::fmt::Display for PassIncident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.proc {
            Some(p) => write!(
                f,
                "{} in pass `{}` on `{}` (rolled back): {}",
                self.kind, self.pass, p, self.detail
            ),
            None => write!(
                f,
                "{} in pass `{}` (rolled back): {}",
                self.kind, self.pass, self.detail
            ),
        }
    }
}

/// The per-pass execution record of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PassTrace {
    /// One record per executed pass, in execution order.
    pub records: Vec<PassRecord>,
    /// Contained faults, in (pass, procedure) order. Empty on a healthy
    /// compilation.
    pub incidents: Vec<PassIncident>,
    /// Per-(pass × procedure) execution intervals with worker-lane
    /// assignments, for the Chrome trace-event export. Merged in
    /// procedure order, but the *timestamps inside* are genuine
    /// wall-clock data and vary run to run — tools must not expect this
    /// to be reproducible the way [`PassTrace::records`] is.
    pub timeline: Vec<WorkItem>,
}

impl PassTrace {
    /// True when any pass faulted (and was contained) during the run.
    pub fn has_incidents(&self) -> bool {
        !self.incidents.is_empty()
    }

    /// The position of the first record with the given pass name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.records.iter().position(|r| r.name == name)
    }

    /// The first record with the given pass name.
    pub fn record(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }

    /// Analysis-cache counters summed across all passes.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.records {
            total.merge(&r.cache);
        }
        total
    }
}

/// A pretty-printed procedure image captured after one phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// The phase that just ran (`"lower"` or a pass name).
    pub phase: String,
    /// The procedure name.
    pub proc: String,
    /// The pretty-printed IL.
    pub il: String,
}

/// Captures a snapshot of every procedure under the given phase name.
pub(crate) fn snapshot_all(phase: &str, program: &Program, out: &mut Vec<Snapshot>) {
    for p in &program.procs {
        out.push(Snapshot {
            phase: phase.to_string(),
            proc: p.name.clone(),
            il: titanc_il::pretty_proc(p),
        });
    }
}

/// Whole-program IL verification, rendered for diagnostics. The seed
/// `panic!`ed here ("internal compiler error"); the fail-soft pipeline
/// instead routes violations through the [`PassIncident`] rollback path.
pub(crate) fn verify_program_check(program: &Program) -> Result<(), String> {
    match titanc_il::verify_program(program) {
        Ok(()) => Ok(()),
        Err(errors) => {
            let rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
            Err(rendered.join("; "))
        }
    }
}

/// Per-procedure flavour of [`verify_program_check`] for the parallel
/// path; also the gate every cache-replayed procedure passes before it
/// is trusted (a parseable-but-wrong entry must demote to a cold miss).
pub(crate) fn verify_proc_check(proc: &Procedure) -> Result<(), String> {
    match titanc_il::verify_proc(proc) {
        Ok(()) => Ok(()),
        Err(errors) => {
            let rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
            Err(rendered.join("; "))
        }
    }
}

thread_local! {
    /// True while this thread is inside a contained pass execution; the
    /// chained panic hook stays silent for panics that will be caught,
    /// converted to a [`PassIncident`] and reported once, properly.
    static CONTAINING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that delegates to the
/// previous hook unless the panicking thread is inside a contained pass.
/// Without this, every contained fault would still splat a backtrace on
/// stderr before the incident report.
fn install_containment_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINING.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind` with the containment hook engaged, so a
/// caught panic does not echo through the default hook.
fn contain<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    install_containment_hook();
    CONTAINING.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    CONTAINING.with(|c| c.set(false));
    result
}

/// Renders a caught panic payload (the `&str`/`String` carried by almost
/// every `panic!`/`unwrap`) for the incident record.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One stage of a pipeline: a whole-program pass, or a per-procedure pass
/// eligible for parallel grouped execution.
enum Stage {
    Program(Box<dyn Pass>),
    Proc(Box<dyn ProcPass>),
}

impl Stage {
    fn name(&self) -> &'static str {
        match self {
            Stage::Program(p) => p.name(),
            Stage::Proc(p) => ProcPass::name(&**p),
        }
    }
}

/// What one procedure produced from one grouped per-procedure chain.
struct ProcResult {
    /// One cell per pass in the group, in group order.
    cells: Vec<PassCell>,
    /// Snapshots taken along the chain: (group pass index, snapshot).
    snaps: Vec<(usize, Snapshot)>,
    /// Execution intervals for the passes that actually ran.
    items: Vec<WorkItem>,
    /// The procedure's generation when the chain finished.
    final_gen: u64,
    /// The contained fault, if one happened: (group pass index, record).
    /// Set at most once — the chain degrades after the first fault.
    incident: Option<(usize, PassIncident)>,
}

/// How one (pass × procedure) cell was accounted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CellStatus {
    /// The pass ran to completion (changed or not).
    Ran,
    /// The pass faulted on this procedure and was rolled back; the cell
    /// keeps the time spent before containment.
    Faulted,
    /// The pass never ran — the procedure was already degraded. Skipped
    /// cells always carry [`Duration::ZERO`] so per-pass durations stay
    /// comparable across `-j` values and across healthy/degraded runs.
    Skipped,
}

struct PassCell {
    duration: Duration,
    delta: Reports,
    changed: bool,
    cache: CacheStats,
    status: CellStatus,
}

impl PassCell {
    /// The cell recorded for a pass that was skipped outright because the
    /// procedure was already degraded. No work happened, so no time is
    /// charged — previously the two skip paths disagreed (zero here,
    /// elapsed time on the fault path), which made `duration` drift
    /// depending on where in the chain a fault landed.
    fn skipped() -> PassCell {
        PassCell {
            duration: Duration::ZERO,
            delta: Reports::default(),
            changed: false,
            cache: CacheStats::default(),
            status: CellStatus::Skipped,
        }
    }

    /// The cell recorded for the pass execution that faulted (and rolled
    /// back). The time spent before containment is real work and stays
    /// charged to the pass.
    fn faulted(duration: Duration) -> PassCell {
        PassCell {
            duration,
            delta: Reports::default(),
            changed: false,
            cache: CacheStats::default(),
            status: CellStatus::Faulted,
        }
    }
}

/// One recorded (pass × procedure) execution in a form the incremental
/// session cache can serialize and replay: the statistics delta the pass
/// contributed, whether it changed the procedure, and its analysis-cache
/// activity. Durations are deliberately absent — they are wall-clock data
/// and replay as [`Duration::ZERO`], keeping everything the opt report
/// derives from a warm run byte-identical to the cold run.
#[derive(Clone, Debug, Default)]
pub struct RecordedCell {
    /// The pass name (matched against the pipeline's static pass names on
    /// replay; the session cache key includes the pipeline fingerprint,
    /// so a mismatch means a stale entry and the chain runs for real).
    pub pass: String,
    /// The statistics delta the pass contributed to this procedure.
    pub delta: Reports,
    /// Whether the pass changed the procedure.
    pub changed: bool,
    /// The analysis-cache counters of the original execution.
    pub cache: CacheStats,
}

titanc_il::struct_json!(RecordedCell, [pass, delta, changed, cache]);

/// A cache hit for one procedure: its fully optimized IL plus the
/// per-pass cells recorded when it was last compiled, consumed group by
/// group as the pipeline replays it.
pub struct CachedProc {
    /// The procedure's post-pipeline IL, decoded from the cache entry.
    pub il: Procedure,
    /// Recorded cells for every per-procedure pass, in pipeline order.
    pub cells: Vec<RecordedCell>,
    /// Consumption cursor: how many cells earlier proc groups used.
    cursor: usize,
}

impl CachedProc {
    /// A replayable hit from a decoded cache entry.
    pub fn new(il: Procedure, cells: Vec<RecordedCell>) -> CachedProc {
        CachedProc {
            il,
            cells,
            cursor: 0,
        }
    }
}

/// Per-procedure replay and record state for an incremental session.
///
/// The session driver seeds [`SessionReplay::hits`] with the procedures
/// whose per-procedure key (content hash plus environment and, with
/// inlining on, the arena encodings of the procedure's inline dependency
/// cone) matched a cache entry; [`Pipeline::run_session`]
/// substitutes their cached IL instead of running their pass chains and
/// replays the recorded cells through the normal pass-major merge — so
/// reports, traces and the opt report stay byte-identical to a cold run.
/// Procedures that miss run normally and land in
/// [`SessionReplay::recorded`] for the driver to persist; procedures
/// whose chain faulted or degraded land in
/// [`SessionReplay::uncacheable`] and must not be cached.
#[derive(Default)]
pub struct SessionReplay {
    /// Procedure name → cached result to substitute for its pass chains.
    pub hits: HashMap<String, CachedProc>,
    /// Procedure name → cells recorded from cleanly executed chains.
    pub recorded: HashMap<String, Vec<RecordedCell>>,
    /// Procedures that faulted or were degraded during this run.
    pub uncacheable: HashSet<String>,
    /// Procedures whose cached IL was actually substituted.
    pub replayed: HashSet<String>,
}

/// Runs one procedure through a group of per-procedure passes. Both the
/// serial and the parallel path execute exactly this function, which is
/// what makes `-j 1` and `-j N` byte-identical.
///
/// ## Fault isolation
///
/// Each pass runs under `catch_unwind`. On a panic — or on a verifier
/// rejection of the pass's output — the procedure is rolled back to
/// `last_good` (the IL that last passed verification, starting from the
/// chain's entry state), the cache slot is invalidated (artifacts built
/// against the abandoned IL must not survive the rollback), a
/// [`PassIncident`] is recorded, and the rest of the chain is skipped:
/// the procedure is *degraded*. Panics never cross the worker-thread
/// boundary, so one faulty procedure cannot poison the thread scope.
#[allow(clippy::too_many_arguments)]
fn run_proc_chain(
    group: &[&dyn ProcPass],
    proc: &mut Procedure,
    analyses: &mut ProcAnalyses,
    cx: &PassContext<'_>,
    verify: bool,
    want_snaps: bool,
    seen_gen: u64,
    degraded_in: bool,
    epoch: Instant,
    lane: usize,
) -> ProcResult {
    let mut cells = Vec::with_capacity(group.len());
    let mut snaps = Vec::new();
    let mut items = Vec::new();
    // the generation already covered by a snapshot + verification
    let mut last_seen = seen_gen;
    let mut incident: Option<(usize, PassIncident)> = None;
    let mut degraded = degraded_in;
    // rollback point: without the verifier this is the state after the
    // last completed pass; with it, the last *verified* state
    let mut last_good = if degraded { None } else { Some(proc.clone()) };
    for (k, pass) in group.iter().enumerate() {
        if degraded {
            cells.push(PassCell::skipped());
            continue;
        }
        let stats_before = analyses.stats();
        let gen_before = proc.generation();
        let mut delta = Reports::default();
        let start = Instant::now();
        let start_offset = start.duration_since(epoch);
        let pname = proc.name.clone();
        let item = move |duration: Duration| WorkItem {
            pass: pass.name(),
            proc: pname.clone(),
            lane,
            start: start_offset,
            duration,
        };
        let run = contain(|| pass.run_on(proc, cx, analyses, &mut delta));
        let outcome = match run {
            Ok(outcome) => outcome,
            Err(payload) => {
                let detail = panic_message(payload.as_ref());
                let elapsed = start.elapsed();
                items.push(item(elapsed));
                *proc = last_good
                    .clone()
                    .expect("non-degraded chain has a rollback point");
                analyses.invalidate();
                incident = Some((
                    k,
                    PassIncident {
                        pass: pass.name(),
                        proc: Some(proc.name.clone()),
                        kind: IncidentKind::Panic,
                        detail,
                    },
                ));
                degraded = true;
                cells.push(PassCell::faulted(elapsed));
                continue;
            }
        };
        if outcome.changed && proc.generation() == gen_before {
            // defensive: a change must move the generation, or a later
            // pass could be served stale analyses
            proc.bump_generation();
        }
        let duration = start.elapsed();
        items.push(item(duration));
        let cache = analyses.stats().delta_since(&stats_before);
        if proc.generation() != last_seen {
            if verify {
                if let Err(detail) = verify_proc_check(proc) {
                    *proc = last_good
                        .clone()
                        .expect("non-degraded chain has a rollback point");
                    analyses.invalidate();
                    incident = Some((
                        k,
                        PassIncident {
                            pass: pass.name(),
                            proc: Some(proc.name.clone()),
                            kind: IncidentKind::VerifyFailed,
                            detail,
                        },
                    ));
                    degraded = true;
                    cells.push(PassCell::faulted(duration));
                    continue;
                }
            }
            if want_snaps {
                snaps.push((
                    k,
                    Snapshot {
                        phase: pass.name().to_string(),
                        proc: proc.name.clone(),
                        il: titanc_il::pretty_proc(proc),
                    },
                ));
            }
            last_seen = proc.generation();
            last_good = Some(proc.clone());
        }
        cells.push(PassCell {
            duration,
            delta,
            changed: outcome.changed,
            cache,
            status: CellStatus::Ran,
        });
    }
    ProcResult {
        cells,
        snaps,
        items,
        final_gen: proc.generation(),
        incident,
    }
}

/// A declarative sequence of passes.
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline { stages: Vec::new() }
    }

    /// Appends a whole-program pass (runs serially on the main thread).
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.stages.push(Stage::Program(Box::new(pass)));
    }

    /// Appends a per-procedure pass. Consecutive per-procedure passes are
    /// grouped and each procedure runs the whole group on one worker,
    /// fanned out across [`Options::jobs`] threads.
    pub fn push_proc(&mut self, pass: impl ProcPass + 'static) {
        self.stages.push(Stage::Proc(Box::new(pass)));
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(Stage::name).collect()
    }

    /// `(whole-program stage count, per-procedure stage count)` — the
    /// session driver sizes its pass-execution accounting from this.
    pub fn stage_counts(&self) -> (usize, usize) {
        let program = self
            .stages
            .iter()
            .filter(|s| matches!(s, Stage::Program(_)))
            .count();
        (program, self.stages.len() - program)
    }

    /// Builds the pipeline the given options describe.
    ///
    /// * Inlining (§7) always runs first when enabled, so §8's
    ///   specialization opportunities exist before scalar optimization.
    /// * `-O1` is the §5.2 scalar sequence: while→DO conversion right
    ///   after use–def chains, induction-variable substitution, forward
    ///   substitution, constant propagation, dead-code elimination.
    /// * `-O2` appends the vector phase: optional §10 list spreading, the
    ///   Allen–Kennedy vectorizer, the §6 strength reduction, and a
    ///   cleanup round (forward substitution, local CSE, DCE) for the dead
    ///   index arithmetic strength reduction leaves behind.
    ///
    /// Everything after the inliner is per-procedure, so the entire
    /// scalar + vector sequence forms one parallel group.
    pub fn for_options(options: &Options) -> Pipeline {
        let mut pl = Pipeline::new();
        if options.inline {
            pl.push(InlinePass);
        }
        if options.opt == OptLevel::O0 {
            return pl;
        }
        pl.push_proc(WhileDoPass);
        pl.push_proc(IvSubPass);
        pl.push_proc(ForwardPass);
        pl.push_proc(ConstPropPass);
        pl.push_proc(DcePass);
        if options.opt == OptLevel::O2 {
            if options.spread_lists && options.parallelize {
                pl.push_proc(SpreadListsPass);
            }
            pl.push_proc(VectorizePass);
            pl.push_proc(StrengthPass);
            pl.push_proc(ForwardPass);
            pl.push_proc(CsePass);
            pl.push_proc(DcePass);
        }
        pl
    }

    /// Runs every stage in order over `program`.
    ///
    /// Returns the aggregated [`Reports`] and the [`PassTrace`]; when
    /// [`Options::snapshots`] is set, a [`Snapshot`] of every procedure
    /// *whose generation moved* is appended to `snapshots` after the pass
    /// that moved it (pass-major, procedure order). The IL verifier runs
    /// over moved procedures in debug builds and, in release builds, when
    /// [`Options::verify`] is set.
    ///
    /// The run is *fail-soft*: a pass that panics or produces
    /// unverifiable IL is contained — the affected procedure (or, for
    /// whole-program passes, the whole program) rolls back to its
    /// last-verified IL, a [`PassIncident`] lands in the trace, and the
    /// degraded procedure skips its remaining optimization passes. The
    /// pipeline itself never panics on a pass fault and never fails:
    /// callers inspect [`PassTrace::incidents`] to decide how strict to
    /// be.
    pub fn run(
        &self,
        program: &mut Program,
        options: &Options,
        snapshots: &mut Vec<Snapshot>,
    ) -> (Reports, PassTrace) {
        self.run_inner(program, options, snapshots, None)
    }

    /// [`Pipeline::run`] with incremental-session replay: procedures with
    /// a seeded hit in `session` skip their per-procedure pass chains —
    /// their cached IL is substituted and their recorded cells replay
    /// through the normal pass-major merge, so the output (program,
    /// reports, opt report) is byte-identical to a cold run. Cleanly
    /// executed chains are recorded into `session` for the driver to
    /// persist.
    pub fn run_session(
        &self,
        program: &mut Program,
        options: &Options,
        snapshots: &mut Vec<Snapshot>,
        session: &mut SessionReplay,
    ) -> (Reports, PassTrace) {
        self.run_inner(program, options, snapshots, Some(session))
    }

    fn run_inner(
        &self,
        program: &mut Program,
        options: &Options,
        snapshots: &mut Vec<Snapshot>,
        mut session: Option<&mut SessionReplay>,
    ) -> (Reports, PassTrace) {
        let cx = PassContext { options };
        let verify = cfg!(debug_assertions) || options.verify;
        let want_snaps = options.snapshots;
        let jobs = options.effective_jobs();
        // every timeline interval is an offset from this instant
        let epoch = Instant::now();
        let mut reports = Reports::default();
        let mut trace = PassTrace::default();
        let mut cache = AnalysisCache::with_procs(program.procs.len());
        // generation already covered by snapshot/verification, per proc
        // (the "lower" snapshot + verify ran before the pipeline)
        let mut seen_gens: Vec<u64> = program.procs.iter().map(Procedure::generation).collect();
        let initial_gens = seen_gens.clone();
        // procedures that faulted: their remaining passes are skipped
        let mut degraded: Vec<bool> = vec![false; program.procs.len()];

        let mut i = 0;
        while i < self.stages.len() {
            match &self.stages[i] {
                Stage::Program(pass) => {
                    run_program_stage(
                        &**pass,
                        program,
                        &cx,
                        verify,
                        want_snaps,
                        epoch,
                        &mut cache,
                        &mut seen_gens,
                        &mut degraded,
                        &mut reports,
                        &mut trace,
                        snapshots,
                    );
                    i += 1;
                }
                Stage::Proc(_) => {
                    let mut j = i;
                    while j < self.stages.len() && matches!(self.stages[j], Stage::Proc(_)) {
                        j += 1;
                    }
                    let group: Vec<&dyn ProcPass> = self.stages[i..j]
                        .iter()
                        .map(|s| match s {
                            Stage::Proc(p) => &**p,
                            Stage::Program(_) => unreachable!("group holds only proc stages"),
                        })
                        .collect();
                    run_proc_group(
                        &group,
                        program,
                        &cx,
                        verify,
                        want_snaps,
                        jobs,
                        epoch,
                        &mut cache,
                        &mut seen_gens,
                        &mut degraded,
                        &mut reports,
                        &mut trace,
                        snapshots,
                        session.as_deref_mut(),
                    );
                    i = j;
                }
            }
        }

        // per-proc verification skips program-level invariants (call
        // targets, globals); close the run with one whole-program check
        // when anything moved
        let moved = seen_gens != initial_gens;
        if verify && moved {
            if let Err(detail) = verify_program_check(program) {
                trace.incidents.push(PassIncident {
                    pass: "pipeline",
                    proc: None,
                    kind: IncidentKind::VerifyFailed,
                    detail,
                });
            }
        }
        (reports, trace)
    }
}

/// Runs one whole-program stage, keeping the generation bookkeeping
/// honest: a pass that reports a change without moving any generation
/// gets every procedure bumped defensively, and snapshots/verification
/// cover exactly the procedures whose generation moved.
///
/// Whole-program passes are isolated at program granularity: on a panic
/// or a verifier rejection the *entire program* rolls back to its state
/// before the pass (there is no narrower verified unit — the pass may
/// have moved code between procedures), an incident is recorded, and the
/// pipeline continues with the remaining stages. No procedure is marked
/// degraded: the rolled-back program is exactly the verified pre-pass
/// state.
#[allow(clippy::too_many_arguments)]
fn run_program_stage(
    pass: &dyn Pass,
    program: &mut Program,
    cx: &PassContext<'_>,
    verify: bool,
    want_snaps: bool,
    epoch: Instant,
    cache: &mut AnalysisCache,
    seen_gens: &mut Vec<u64>,
    degraded: &mut Vec<bool>,
    reports: &mut Reports,
    trace: &mut PassTrace,
    snapshots: &mut Vec<Snapshot>,
) {
    let gens_before: Vec<u64> = program.procs.iter().map(Procedure::generation).collect();
    let backup = program.clone();
    let mut delta = Reports::default();
    let start = Instant::now();
    let start_offset = start.duration_since(epoch);
    let run = contain(|| pass.run(program, cx, &mut delta));
    let duration = start.elapsed();
    trace.timeline.push(WorkItem {
        pass: pass.name(),
        proc: String::new(),
        lane: 0,
        start: start_offset,
        duration,
    });
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(payload) => {
            let detail = panic_message(payload.as_ref());
            *program = backup;
            for slot in cache.slots_mut() {
                slot.invalidate();
            }
            trace.incidents.push(PassIncident {
                pass: pass.name(),
                proc: None,
                kind: IncidentKind::Panic,
                detail,
            });
            trace.records.push(PassRecord {
                name: pass.name(),
                duration,
                delta: Reports::default(),
                changed: false,
                cache: CacheStats::default(),
                skipped_procs: 0,
                faulted_procs: 0,
            });
            return;
        }
    };

    let len_changed = program.procs.len() != gens_before.len();
    let moved = len_changed
        || program
            .procs
            .iter()
            .zip(&gens_before)
            .any(|(p, g)| p.generation() != *g);
    if outcome.changed && !moved {
        // defensive: the pass mutated something without stamping it
        for p in &mut program.procs {
            p.bump_generation();
        }
    }
    let moved = moved || outcome.changed;

    if verify && moved {
        if let Err(detail) = verify_program_check(program) {
            *program = backup;
            for slot in cache.slots_mut() {
                slot.invalidate();
            }
            trace.incidents.push(PassIncident {
                pass: pass.name(),
                proc: None,
                kind: IncidentKind::VerifyFailed,
                detail,
            });
            trace.records.push(PassRecord {
                name: pass.name(),
                duration,
                delta: Reports::default(),
                changed: false,
                cache: CacheStats::default(),
                skipped_procs: 0,
                faulted_procs: 0,
            });
            return;
        }
    }
    cache.ensure(program.procs.len());
    // procedures the pass introduced count as never-seen (and healthy)
    if seen_gens.len() < program.procs.len() {
        seen_gens.resize(program.procs.len(), u64::MAX);
    }
    seen_gens.truncate(program.procs.len());
    if degraded.len() < program.procs.len() {
        degraded.resize(program.procs.len(), false);
    }
    degraded.truncate(program.procs.len());
    if want_snaps {
        for (idx, p) in program.procs.iter().enumerate() {
            if p.generation() != seen_gens[idx] {
                snapshots.push(Snapshot {
                    phase: pass.name().to_string(),
                    proc: p.name.clone(),
                    il: titanc_il::pretty_proc(p),
                });
            }
        }
    }
    for (idx, p) in program.procs.iter().enumerate() {
        seen_gens[idx] = p.generation();
    }

    reports.merge(delta.clone());
    trace.records.push(PassRecord {
        name: pass.name(),
        duration,
        delta,
        changed: outcome.changed,
        cache: CacheStats::default(),
        skipped_procs: 0,
        faulted_procs: 0,
    });
}

/// Fans the procedures across worker threads, each running the whole
/// group of per-procedure passes, then merges the results in procedure
/// order so the output is independent of scheduling.
#[allow(clippy::too_many_arguments)]
fn run_proc_group(
    group: &[&dyn ProcPass],
    program: &mut Program,
    cx: &PassContext<'_>,
    verify: bool,
    want_snaps: bool,
    jobs: usize,
    epoch: Instant,
    cache: &mut AnalysisCache,
    seen_gens: &mut Vec<u64>,
    degraded: &mut Vec<bool>,
    reports: &mut Reports,
    trace: &mut PassTrace,
    snapshots: &mut Vec<Snapshot>,
    mut session: Option<&mut SessionReplay>,
) {
    let n = program.procs.len();
    cache.ensure(n);
    if seen_gens.len() < n {
        seen_gens.resize(n, u64::MAX);
    }
    if degraded.len() < n {
        degraded.resize(n, false);
    }

    let mut results: Vec<Option<ProcResult>> = Vec::new();
    results.resize_with(n, || None);

    // session replay: a procedure with a cache hit skips its chain — the
    // cached post-pipeline IL replaces it and the recorded cells feed the
    // pass-major merge below exactly as live cells would, so a warm run
    // merges to byte-identical reports and traces (durations excepted:
    // replayed cells charge zero time)
    let mut replayed_now = vec![false; n];
    if let Some(sess) = session.as_deref_mut() {
        let slots = cache.slots_mut();
        for (idx, (proc, out)) in program.procs.iter_mut().zip(results.iter_mut()).enumerate() {
            if degraded[idx] {
                continue;
            }
            let Some(hit) = sess.hits.get_mut(&proc.name) else {
                continue;
            };
            let end = hit.cursor + group.len();
            let names_match = end <= hit.cells.len()
                && group
                    .iter()
                    .enumerate()
                    .all(|(k, p)| hit.cells[hit.cursor + k].pass == p.name());
            if !names_match {
                // stale or truncated entry — run the chain for real
                continue;
            }
            let cells = hit.cells[hit.cursor..end]
                .iter()
                .map(|c| PassCell {
                    duration: Duration::ZERO,
                    delta: c.delta.clone(),
                    changed: c.changed,
                    cache: c.cache,
                    status: CellStatus::Ran,
                })
                .collect();
            hit.cursor = end;
            let mut il = hit.il.clone();
            // land strictly past the generation already covered so the
            // closing whole-program verify re-checks the substituted IL
            while il.generation() <= seen_gens[idx] {
                il.bump_generation();
            }
            let final_gen = il.generation();
            *proc = il;
            // artifacts built against the pre-substitution IL are stale
            slots[idx].invalidate();
            *out = Some(ProcResult {
                cells,
                snaps: Vec::new(),
                items: Vec::new(),
                final_gen,
                incident: None,
            });
            replayed_now[idx] = true;
            sess.replayed.insert(proc.name.clone());
        }
    }

    type Task<'t> = (
        u64,
        bool,
        &'t mut Procedure,
        &'t mut ProcAnalyses,
        &'t mut Option<ProcResult>,
    );
    let tasks: Vec<Task<'_>> = program
        .procs
        .iter_mut()
        .zip(cache.slots_mut().iter_mut())
        .zip(results.iter_mut())
        .enumerate()
        .filter(|(_, ((_, _), out))| out.is_none())
        .map(|(idx, ((proc, slot), out))| (seen_gens[idx], degraded[idx], proc, slot, out))
        .collect();

    // more worker threads than hardware threads only adds scheduler churn
    // to a CPU-bound pipeline, so the request is capped at the machine's
    // available parallelism (and at the task count — spare workers would
    // find an empty queue and exit immediately anyway)
    let avail = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = jobs.min(avail).clamp(1, tasks.len().max(1));
    if workers <= 1 {
        for (seen, skip, proc, slot, out) in tasks {
            *out = Some(run_proc_chain(
                group, proc, slot, cx, verify, want_snaps, seen, skip, epoch, 0,
            ));
        }
    } else {
        let queue = Mutex::new(tasks.into_iter());
        thread::scope(|s| {
            for lane in 1..=workers {
                let queue = &queue;
                s.spawn(move || loop {
                    // take the lock only to pop; run outside it
                    let task = queue.lock().unwrap().next();
                    match task {
                        Some((seen, skip, proc, slot, out)) => {
                            // run the chain on a worker-local clone: the
                            // passes' allocation churn then stays in this
                            // thread's malloc arena instead of contending
                            // for the main thread's (the procedure itself
                            // was built there), and the original is freed
                            // in one sweep at write-back. Faults inside
                            // the chain are caught there, so a panicking
                            // pass cannot poison this scope.
                            let mut local = proc.clone();
                            *out = Some(run_proc_chain(
                                group, &mut local, slot, cx, verify, want_snaps, seen, skip, epoch,
                                lane,
                            ));
                            *proc = local;
                        }
                        None => break,
                    }
                });
            }
        });
    }

    let results: Vec<ProcResult> = results
        .into_iter()
        .map(|r| r.expect("every procedure ran its pass chain"))
        .collect();

    // merge pass-major, procedure order: identical for any worker count
    for (k, pass) in group.iter().enumerate() {
        let mut delta = Reports::default();
        let mut duration = Duration::ZERO;
        let mut changed = false;
        let mut cache_stats = CacheStats::default();
        let mut skipped_procs = 0usize;
        let mut faulted_procs = 0usize;
        for r in &results {
            let cell = &r.cells[k];
            delta.merge(cell.delta.clone());
            duration += cell.duration;
            changed |= cell.changed;
            cache_stats.merge(&cell.cache);
            match cell.status {
                CellStatus::Ran => {}
                CellStatus::Faulted => faulted_procs += 1,
                CellStatus::Skipped => skipped_procs += 1,
            }
        }
        if want_snaps {
            for r in &results {
                for (ki, snap) in &r.snaps {
                    if *ki == k {
                        snapshots.push(snap.clone());
                    }
                }
            }
        }
        reports.merge(delta.clone());
        trace.records.push(PassRecord {
            name: ProcPass::name(*pass),
            duration,
            delta,
            changed,
            cache: cache_stats,
            skipped_procs,
            faulted_procs,
        });
        // incidents surface pass-major, procedure order — the same
        // deterministic merge as everything else, so `-j 1` and `-j N`
        // report identical traces
        for r in &results {
            if let Some((ki, inc)) = &r.incident {
                if *ki == k {
                    trace.incidents.push(inc.clone());
                }
            }
        }
    }
    for (idx, r) in results.iter().enumerate() {
        seen_gens[idx] = r.final_gen;
        if r.incident.is_some() {
            degraded[idx] = true;
        }
    }
    // record cleanly executed chains for the session cache; anything
    // faulted, skipped, or only partially replayed must not be persisted
    if let Some(sess) = session {
        for (idx, r) in results.iter().enumerate() {
            if replayed_now[idx] {
                continue;
            }
            let name = &program.procs[idx].name;
            let clean = r.incident.is_none()
                && !degraded[idx]
                && r.cells.iter().all(|c| c.status == CellStatus::Ran)
                && !sess.replayed.contains(name);
            if clean {
                let rec = sess.recorded.entry(name.clone()).or_default();
                for (k, cell) in r.cells.iter().enumerate() {
                    rec.push(RecordedCell {
                        pass: group[k].name().to_string(),
                        delta: cell.delta.clone(),
                        changed: cell.changed,
                        cache: cell.cache,
                    });
                }
            } else {
                sess.recorded.remove(name);
                sess.uncacheable.insert(name.clone());
            }
        }
    }
    // the timeline is appended in procedure order too; the timestamps
    // inside are wall-clock data and carry the real worker interleaving
    for r in &results {
        trace.timeline.extend(r.items.iter().cloned());
    }
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::new()
    }
}

/// §7 inline expansion (runs before scalar optimization). Whole-program:
/// it moves code between procedures, so it cannot be a [`ProcPass`].
pub struct InlinePass;

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, program: &mut Program, cx: &PassContext<'_>, delta: &mut Reports) -> PassOutcome {
        let r = titanc_inline::inline_program(program, &cx.options.inline_opts);
        let changed = r.inlined > 0 || r.statics_externalized > 0;
        delta.inline.merge(r);
        PassOutcome { changed }
    }
}

/// §5.2 while→DO conversion.
pub struct WhileDoPass;

impl ProcPass for WhileDoPass {
    fn name(&self) -> &'static str {
        "whiledo"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        analyses: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::convert_while_loops_cached(proc, analyses);
        let changed = r.converted > 0;
        delta.whiledo.merge(r);
        PassOutcome { changed }
    }
}

/// §5.2 induction-variable substitution with backtracking.
pub struct IvSubPass;

impl ProcPass for IvSubPass {
    fn name(&self) -> &'static str {
        "ivsub"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::induction_substitution(proc);
        let changed = r.substituted > 0;
        delta.ivsub.merge(r);
        PassOutcome { changed }
    }
}

/// Forward substitution of single-use scalar definitions.
pub struct ForwardPass;

impl ProcPass for ForwardPass {
    fn name(&self) -> &'static str {
        "forward"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::forward_substitute(proc);
        let changed = r.substituted > 0;
        delta.forward.merge(r);
        PassOutcome { changed }
    }
}

/// §8 constant propagation with the unreachable-code heuristic.
pub struct ConstPropPass;

impl ProcPass for ConstPropPass {
    fn name(&self) -> &'static str {
        "constprop"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        analyses: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::constant_propagation_cached(proc, analyses);
        let changed = r.replaced > 0 || r.removed > 0;
        delta.constprop.merge(r);
        PassOutcome { changed }
    }
}

/// Dead-code elimination.
pub struct DcePass;

impl ProcPass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        analyses: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::eliminate_dead_code_cached(proc, analyses);
        let changed = r.removed > 0;
        delta.dce.merge(r);
        PassOutcome { changed }
    }
}

/// Local common-subexpression elimination.
pub struct CsePass;

impl ProcPass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_opt::local_cse(proc);
        let changed = r.commoned > 0;
        delta.cse.merge(r);
        PassOutcome { changed }
    }
}

/// §10 linked-list loop spreading (opt-in future work).
pub struct SpreadListsPass;

impl ProcPass for SpreadListsPass {
    fn name(&self) -> &'static str {
        "spread_lists"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        _: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_vector::spread_list_loops(proc);
        let changed = r.spread > 0;
        delta.spread.merge(r);
        PassOutcome { changed }
    }
}

/// The §9 Allen–Kennedy vectorizer (with strip mining and `do parallel`).
pub struct VectorizePass;

impl ProcPass for VectorizePass {
    fn name(&self) -> &'static str {
        "vectorize"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        cx: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let vopts = VectorOptions {
            aliasing: cx.options.aliasing,
            parallelize: cx.options.parallelize,
            strip: cx.options.strip,
            max_vl: cx.options.max_vl,
        };
        let r = titanc_vector::vectorize(proc, &vopts);
        let changed = r.vectorized > 0 || r.spread > 0;
        delta.vector.merge(r);
        PassOutcome { changed }
    }
}

/// The §6 dependence-driven scalar optimizations.
pub struct StrengthPass;

impl ProcPass for StrengthPass {
    fn name(&self) -> &'static str {
        "strength"
    }

    fn run_on(
        &self,
        proc: &mut Procedure,
        cx: &PassContext<'_>,
        _: &mut ProcAnalyses,
        delta: &mut Reports,
    ) -> PassOutcome {
        let r = titanc_vector::strength_reduce(proc, cx.options.aliasing);
        let changed = r.promoted > 0 || r.reduced > 0 || r.hoisted > 0;
        delta.strength.merge(r);
        PassOutcome { changed }
    }
}
