//! # titanc — a reproduction of the Titan C vectorizing compiler
//!
//! This crate is the driver for a full reimplementation of the compiler
//! described in R. Allen & S. Johnson, *Compiling C for Vectorization,
//! Parallelization, and Inline Expansion* (PLDI 1988): a C front end that
//! recasts expressions into side-effect-free (statement-list, expression)
//! pairs, scalar optimization built on use–def chains (while→DO
//! conversion, induction-variable substitution with backtracking, constant
//! propagation with unreachable-code elimination, dead-code elimination),
//! data-dependence analysis, an Allen–Kennedy-style vectorizer with strip
//! mining and `do parallel` loop spreading, cross-file inlining from
//! procedure catalogs, and the §6 dependence-driven scalar optimizations.
//! Compiled programs execute on a cycle-cost simulator of the Ardent Titan
//! (`titanc-titan`).
//!
//! ## Quickstart
//!
//! ```
//! use titanc::{compile, Options};
//! use titanc_titan::{MachineConfig, Simulator};
//!
//! let src = r#"
//! float a[100], b[100], c[100];
//! int main(void)
//! {
//!     int i;
//!     for (i = 0; i < 100; i++) a[i] = b[i] + c[i];
//!     return 0;
//! }
//! "#;
//! let result = compile(src, &Options::o2())?;
//! assert!(result.reports.vector.vectorized >= 1);
//! let mut sim = Simulator::new(&result.program, MachineConfig::optimized(2));
//! sim.run("main", &[]).unwrap();
//! # Ok::<(), titanc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pass;
pub mod server;
pub mod session;
pub mod store;
pub mod trace;

use std::error::Error;
use std::fmt;

pub use pass::{
    CachedProc, IncidentKind, Pass, PassContext, PassIncident, PassOutcome, PassRecord, PassTrace,
    Pipeline, ProcPass, RecordedCell, SessionReplay, Snapshot, WorkItem,
};
pub use session::{
    compile_session, compile_session_resident, compile_session_with, SessionCompilation,
    SessionStats, SourceFile,
};
pub use store::{install_io_faults, FaultMode, IoFaultSpec, IoOp, ResidentCache, StoreStats};
pub use titanc_analysis::{AnalysisCache, CacheStats, ProcAnalyses};
pub use titanc_cfront::{Diagnostic, DiagnosticSink, Severity, Span};
pub use titanc_deps::Aliasing;
pub use titanc_il::{Catalog, Program};
pub use titanc_inline::InlineOptions;
pub use titanc_vector::VectorOptions;
pub use trace::{chrome_trace, Counters, LoopReport, OptReport};

/// Optimization level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// Front end only: parse and lower, no optimization.
    O0,
    /// Scalar optimization: while→DO, induction-variable substitution,
    /// forward substitution, constant propagation, DCE.
    O1,
    /// O1 + vectorization + the §6 dependence-driven scalar optimizations.
    O2,
}

/// Compiler options (§2's strategy knobs).
#[derive(Clone, Debug)]
pub struct Options {
    /// Optimization level.
    pub opt: OptLevel,
    /// Inline procedure calls (§7).
    pub inline: bool,
    /// Inlining policy.
    pub inline_opts: InlineOptions,
    /// Spread loops across processors (`do parallel`).
    pub parallelize: bool,
    /// Spread linked-list `while` loops with a serialized pointer chase
    /// (§10 future work). Requires the paper's assumption that "each
    /// motion down a pointer goes to independent storage", so it is a
    /// separate opt-in even when `parallelize` is set.
    pub spread_lists: bool,
    /// Aliasing regime (§9's Fortran-parameter-semantics option).
    pub aliasing: Aliasing,
    /// Strip length for parallel vector loops.
    pub strip: i64,
    /// Maximum single vector length.
    pub max_vl: i64,
    /// Catalogs to link for cross-file inlining (§7).
    pub catalogs: Vec<Catalog>,
    /// Capture a pretty-printed snapshot of every procedure after each
    /// phase (the §9 walkthrough).
    pub snapshots: bool,
    /// Run the IL verifier between passes even in release builds (debug
    /// builds always verify). A violation is an internal compiler error.
    pub verify: bool,
    /// Worker threads for the per-procedure pass groups (`-j`/`--jobs`).
    /// `0` means "use the machine's available parallelism"; requests
    /// beyond the available parallelism are capped there, since extra
    /// threads only add scheduler churn to a CPU-bound pipeline. The
    /// output is byte-identical for every value.
    pub jobs: usize,
    /// Stop collecting front-end errors after this many (`--max-errors`;
    /// `0` means no cap). One mangled declaration can cascade — past the
    /// cap the rest of the file is abandoned.
    pub max_errors: usize,
    /// Keep a clone of the parsed (pre-pipeline, post-catalog-link)
    /// program on [`Compilation::parsed`]. `--emit-catalog` needs it: §7
    /// catalogs store *parsed* IL so the consumer compilation optimizes
    /// inlined bodies in context.
    pub keep_parsed: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            opt: OptLevel::O2,
            inline: true,
            inline_opts: InlineOptions::default(),
            parallelize: false,
            spread_lists: false,
            aliasing: Aliasing::C,
            strip: 32,
            max_vl: 2048,
            catalogs: Vec::new(),
            snapshots: false,
            verify: false,
            jobs: 0,
            max_errors: titanc_cfront::DEFAULT_MAX_ERRORS,
            keep_parsed: false,
        }
    }
}

impl Options {
    /// Front end only.
    pub fn o0() -> Options {
        Options {
            opt: OptLevel::O0,
            inline: false,
            ..Options::default()
        }
    }

    /// Scalar optimization only (the paper's baseline configuration: "when
    /// the original loop is compiled with only scalar optimization").
    pub fn o1() -> Options {
        Options {
            opt: OptLevel::O1,
            inline: false,
            ..Options::default()
        }
    }

    /// Full single-processor optimization.
    pub fn o2() -> Options {
        Options::default()
    }

    /// Full optimization with multiprocessor spreading.
    pub fn parallel() -> Options {
        Options {
            parallelize: true,
            ..Options::default()
        }
    }

    /// The worker-thread count the pipeline will actually use: `jobs`,
    /// with `0` resolved to the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Aggregated pass statistics.
#[derive(Clone, Debug, Default)]
pub struct Reports {
    /// while→DO conversions across all procedures.
    pub whiledo: titanc_opt::WhileDoReport,
    /// Induction-variable substitution.
    pub ivsub: titanc_opt::IvSubReport,
    /// Forward substitution.
    pub forward: titanc_opt::ForwardReport,
    /// Constant propagation.
    pub constprop: titanc_opt::ConstPropReport,
    /// Dead-code elimination.
    pub dce: titanc_opt::DceReport,
    /// Vectorizer outcomes.
    pub vector: titanc_vector::VectorReport,
    /// §6 scalar optimizations.
    pub strength: titanc_vector::StrengthReport,
    /// Local common-subexpression elimination.
    pub cse: titanc_opt::CseReport,
    /// §10 linked-list loop spreading.
    pub spread: titanc_vector::SpreadReport,
    /// Inliner outcomes.
    pub inline: titanc_inline::InlineReport,
}

impl Reports {
    /// Folds another aggregate into this one, field by field. The pass
    /// manager uses this to combine per-pass deltas into the compilation
    /// total.
    pub fn merge(&mut self, other: Reports) {
        self.whiledo.merge(other.whiledo);
        self.ivsub.merge(other.ivsub);
        self.forward.merge(other.forward);
        self.constprop.merge(other.constprop);
        self.dce.merge(other.dce);
        self.vector.merge(other.vector);
        self.strength.merge(other.strength);
        self.cse.merge(other.cse);
        self.spread.merge(other.spread);
        self.inline.merge(other.inline);
    }
}

// serialized into the incremental session cache (per-pass deltas ride
// each cached cell so a warm run replays to byte-identical reports)
titanc_il::struct_json!(
    Reports,
    [whiledo, ivsub, forward, constprop, dce, vector, strength, cse, spread, inline]
);

/// The result of a compilation.
#[derive(Clone, Debug)]
pub struct Compilation {
    /// The optimized program, ready for the Titan simulator.
    pub program: Program,
    /// Pass statistics, aggregated across the whole pipeline.
    pub reports: Reports,
    /// Per-pass execution records: wall-clock time, the statistics
    /// delta each pass contributed, and any contained [`PassIncident`]s.
    pub trace: PassTrace,
    /// Typed per-phase snapshots when [`Options::snapshots`] was set.
    pub snapshots: Vec<Snapshot>,
    /// Non-fatal diagnostics: warnings plus the optimizer's remarks
    /// (loops left scalar and why, budgets that ran out).
    pub diagnostics: Vec<Diagnostic>,
    /// The parsed (pre-pipeline) program, kept only when
    /// [`Options::keep_parsed`] is set — the `--emit-catalog` source.
    pub parsed: Option<Program>,
}

impl Compilation {
    /// True when any pass faulted (and was contained) during the run.
    pub fn has_incidents(&self) -> bool {
        self.trace.has_incidents()
    }
}

/// A front-end failure (lex/parse/lowering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Rendered summary with the first error's source position.
    pub message: String,
    /// Every collected diagnostic, in source order — the recovering
    /// parser reports all independent mistakes, not just the first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> CompileError {
        let message = diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .unwrap_or_else(|| "compilation failed".to_string());
        CompileError {
            message,
            diagnostics,
        }
    }

    fn internal(message: impl Into<String>) -> CompileError {
        let message = message.into();
        CompileError {
            diagnostics: vec![Diagnostic::new(message.clone(), Span::none())],
            message,
        }
    }

    /// The collected error diagnostics (excluding warnings/remarks).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "titanc: {}", self.message)
    }
}

impl Error for CompileError {}

/// Compiles C source with the given options.
///
/// The front end is fail-soft: parsing continues past errors (up to
/// [`Options::max_errors`]), so the returned [`CompileError`] carries
/// *every* independent mistake. Optimization never fails — a pass that
/// faults is contained and recorded on [`Compilation::trace`] as a
/// [`PassIncident`], with the affected procedure rolled back to its
/// last-verified IL.
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic or semantic errors.
pub fn compile(src: &str, options: &Options) -> Result<Compilation, CompileError> {
    compile_with(src, options, Pipeline::for_options(options))
}

/// [`compile`] with a caller-built [`Pipeline`] — the hook for custom
/// pass stacks and for fault-injection tests that exercise the fail-soft
/// containment path.
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic or semantic errors.
pub fn compile_with(
    src: &str,
    options: &Options,
    pipeline: Pipeline,
) -> Result<Compilation, CompileError> {
    let mut sink = DiagnosticSink::new(options.max_errors);
    let tu = titanc_cfront::parse_recovering(src, &mut sink);
    if sink.has_errors() {
        // make the cap visible: the reported list is shorter than the
        // real error count when --max-errors stopped the front end early
        if sink.suppressed() > 0 {
            sink.warning(
                format!(
                    "{} further error(s) suppressed by --max-errors (total {})",
                    sink.suppressed(),
                    sink.error_count()
                ),
                Span::none(),
            );
        }
        return Err(CompileError::from_diagnostics(sink.into_diagnostics()));
    }
    let mut program = match titanc_lower::lower(&tu) {
        Ok(p) => p,
        Err(e) => {
            sink.error(e.message.clone(), e.span);
            return Err(CompileError::from_diagnostics(sink.into_diagnostics()));
        }
    };

    let mut snapshots = Vec::new();
    if options.snapshots {
        pass::snapshot_all("lower", &program, &mut snapshots);
    }
    if cfg!(debug_assertions) || options.verify {
        // broken IL straight out of lowering has no last-good state to
        // roll back to: report it as an (internal) error, don't panic
        if let Err(detail) = pass::verify_program_check(&program) {
            return Err(CompileError::internal(format!(
                "internal error: IL verification failed after lowering: {detail}"
            )));
        }
    }

    // §7: link catalogs before the pipeline runs, so the inline pass can
    // expand cross-file calls.
    let origin = program
        .procs
        .iter()
        .map(|p| (p.name.clone(), "the translation unit".to_string()))
        .collect();
    link_catalogs(&mut program, &options.catalogs, origin, &mut sink);

    let parsed = options.keep_parsed.then(|| program.clone());

    let (reports, trace) = pipeline.run(&mut program, options, &mut snapshots);

    optimization_remarks(&reports, &mut sink);

    Ok(Compilation {
        program,
        reports,
        trace,
        snapshots,
        diagnostics: sink.into_diagnostics(),
        parsed,
    })
}

/// Links catalogs in CLI order, warning about every shadowed procedure
/// with both origins named. Earlier definitions win: the translation
/// unit(s) first, then catalogs in the order given. `origin` seeds the
/// name → origin map with where each already-present procedure came from.
fn link_catalogs(
    program: &mut Program,
    catalogs: &[Catalog],
    mut origin: Vec<(String, String)>,
    sink: &mut DiagnosticSink,
) {
    for catalog in catalogs {
        let report = catalog.link_into(program);
        for name in &report.shadowed {
            let earlier = origin
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, o)| o.as_str())
                .unwrap_or("an earlier definition");
            sink.warning(
                format!(
                    "procedure `{name}` from catalog `{}` is shadowed by {earlier}",
                    catalog.name
                ),
                Span::none(),
            );
        }
        for name in report.added {
            origin.push((name, format!("catalog `{}`", catalog.name)));
        }
    }
}

/// Turns the aggregate pass reports into user-facing remarks: which loops
/// defeated the vectorizer and why, and which fixpoint budgets ran out.
fn optimization_remarks(reports: &Reports, sink: &mut DiagnosticSink) {
    for note in &reports.vector.notes {
        sink.remark(note.clone(), Span::none());
    }
    if reports.constprop.budget_exhausted {
        sink.remark(
            format!(
                "constant propagation stopped at its {}-round budget; remaining \
                 opportunities were left to later passes",
                titanc_opt::constprop::MAX_ROUNDS
            ),
            Span::none(),
        );
    }
    if reports.dce.budget_exhausted {
        sink.remark(
            format!(
                "dead-code elimination stopped at its {}-round budget",
                titanc_opt::dce::MAX_ROUNDS
            ),
            Span::none(),
        );
    }
    if reports.ivsub.budget_exhausted {
        sink.remark(
            format!(
                "induction-variable substitution stopped at its {}-pass budget",
                titanc_opt::ivsub::MAX_PASSES
            ),
            Span::none(),
        );
    }
    if reports.inline.skipped_growth > 0 {
        sink.remark(
            format!(
                "{} call site(s) left unexpanded by the per-caller inline IL-growth budget",
                reports.inline.skipped_growth
            ),
            Span::none(),
        );
    }
}

/// Compiles and immediately runs `entry` on a Titan with the given
/// configuration — the one-call path used by examples and benchmarks.
///
/// # Errors
///
/// Returns the compile error or the simulator fault as a string.
pub fn compile_and_run(
    src: &str,
    options: &Options,
    machine: titanc_titan::MachineConfig,
    entry: &str,
) -> Result<titanc_titan::RunResult, String> {
    let c = compile(src, options).map_err(|e| e.to_string())?;
    let mut sim = titanc_titan::Simulator::new(&c.program, machine);
    sim.run(entry, &[]).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests;
