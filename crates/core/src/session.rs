//! Multi-file compilation sessions and the persistent incremental cache.
//!
//! The paper's compiler was a whole-program system: §7 inlining works
//! best when "the entire program" is visible, and catalogs exist exactly
//! so separate files can feed one optimization. A *session* compiles
//! several translation units in one invocation (`titanc a.c b.c c.c`),
//! merges them through the same machinery catalogs use (struct tables
//! deduplicated by tag with ids remapped, globals merged by name,
//! duplicate procedures diagnosed with both origins named, earlier files
//! winning), and then runs the normal pass pipeline over the combined
//! program.
//!
//! ## The content-addressed cache
//!
//! With `--cache-dir DIR`, each procedure's fully optimized IL is keyed
//! by a stable 128-bit content hash ([`titanc_il::StableHash`]) of:
//!
//! * the parsed procedure's catalog encoding (names, types, statement
//!   tree, spans — everything the optimizer sees),
//! * the shared program environment (globals, struct table, file
//!   table), hashed once and folded into **every** key,
//! * an [`Options`] fingerprint (every knob that can change generated
//!   code: opt level, inlining policy, aliasing regime, strip length…),
//! * the pipeline fingerprint (the exact pass sequence), and
//! * with inlining enabled, the procedure's *inline dependency cone*:
//!   the arena encodings of every transitive callee
//!   ([`titanc_analysis::CallGraph::inline_cones`]). The inliner's
//!   growth budget is per-caller, so a procedure's post-inline IL is a
//!   function of its cone and the environment alone — an edit
//!   invalidates exactly the edited procedure and the procedures whose
//!   cones contain it, never the whole program. `--no-inline` sessions
//!   key each procedure on its own encoding alone.
//!
//! A cache entry stores the post-pipeline IL *plus* the per-pass
//! [`RecordedCell`]s — the statistics deltas, changed flags, and
//! analysis-cache counters of the original execution. On a warm run the
//! pass manager substitutes the cached IL and replays the cells through
//! its normal pass-major merge ([`Pipeline::run_session`]), so reports,
//! counters, and `--opt-report` output are **byte-identical between cold
//! and warm runs and across every `-j` value**. Only wall-clock data
//! (durations, the timeline) and `--snapshots` differ: replayed work is
//! charged zero time and produces no snapshots.
//!
//! When every procedure hits *and* a session manifest matches, the
//! pipeline is skipped entirely — zero passes execute; the program,
//! aggregate reports and trace records are reconstructed from the cache.
//!
//! All on-disk interaction goes through the hardened
//! [`CacheStore`](crate::store): entries are published atomically
//! (temp-file, fsync, rename) inside a checksummed envelope, anything
//! that fails the checksum or decode is quarantined and treated as a
//! miss, replayed IL must pass the IL verifier before it is trusted,
//! and concurrent sessions sharing one directory serialize their
//! index/manifest updates through an advisory lock. Every degradation
//! is counted ([`SessionStats`]) and surfaced on the `titanc: cache:`
//! accounting line — a cache failure is never a compilation failure.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use titanc_analysis::CallGraph;
use titanc_cfront::{Diagnostic, DiagnosticSink, Span};
use titanc_il::json::{FromJson, Json, ToJson};
use titanc_il::{Procedure, Program, StableHash, StableHasher, StructDef, StructId, Type, VarInfo};

use crate::pass::{
    snapshot_all, verify_proc_check, verify_program_check, CachedProc, PassRecord, PassTrace,
    RecordedCell, SessionReplay,
};
use crate::store::{CacheStore, ResidentCache, CACHE_FORMAT};
use crate::{
    link_catalogs, optimization_remarks, Compilation, CompileError, Options, Pipeline, Reports,
};

/// Bumped when the entry or manifest encoding changes shape; entries
/// written by other versions are treated as misses.
const ENTRY_VERSION: i64 = 1;

/// One input translation unit: a display name (normally the path) and
/// its source text.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Display name, used for diagnostics and span file tags.
    pub name: String,
    /// The C source text.
    pub src: String,
}

impl SourceFile {
    /// Bundles a name and source text.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> SourceFile {
        SourceFile {
            name: name.into(),
            src: src.into(),
        }
    }
}

titanc_il::struct_json!(SourceFile, [name, src]);

/// What the cache did during one session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Procedures served from the cache.
    pub hits: usize,
    /// Procedures compiled for real.
    pub misses: usize,
    /// Misses whose name was cached under a different key — an edited
    /// procedure (or changed options/pipeline), not a cold one.
    pub invalidated: usize,
    /// Optimization-pass executions this run actually performed
    /// (whole-program stages plus per-procedure chains for misses). A
    /// fully warm run reports zero.
    pub passes_executed: usize,
    /// True when the whole pipeline was skipped and the result was
    /// reconstructed from the session manifest.
    pub full_warm: bool,
    /// Cache files whose checksum, decode, or IL verification failed;
    /// each was demoted to a cold recompile.
    pub corrupt: usize,
    /// Corrupt files successfully moved into `quarantine/` (or
    /// deleted) so they are never re-read.
    pub quarantined: usize,
    /// Times the advisory writer lock could not be acquired and the
    /// index/manifest update was skipped (entries still published).
    pub lock_contended: usize,
    /// Cache files that could not be published (write/rename failure);
    /// surfaced as a warning, never a compilation failure.
    pub write_failed: usize,
}

/// A [`Compilation`] plus the session's cache accounting. The stats stay
/// *outside* [`Compilation`] deliberately: everything inside (reports,
/// counters, the opt report) is byte-identical cold vs warm, and hit
/// counts obviously are not.
#[derive(Debug)]
pub struct SessionCompilation {
    /// The merged, optimized compilation.
    pub compilation: Compilation,
    /// Cache hit/miss/invalidation accounting.
    pub stats: SessionStats,
}

/// Compiles a multi-file session with [`Pipeline::for_options`].
///
/// # Errors
///
/// Returns a [`CompileError`] carrying every front-end diagnostic from
/// every file (each file is parsed even when an earlier one failed).
pub fn compile_session(
    files: &[SourceFile],
    options: &Options,
    cache_dir: Option<&Path>,
) -> Result<SessionCompilation, CompileError> {
    compile_session_with(files, options, Pipeline::for_options(options), cache_dir)
}

/// [`compile_session`] with a caller-built [`Pipeline`].
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic or semantic errors
/// in any input file.
pub fn compile_session_with(
    files: &[SourceFile],
    options: &Options,
    pipeline: Pipeline,
    cache_dir: Option<&Path>,
) -> Result<SessionCompilation, CompileError> {
    compile_session_impl(files, options, pipeline, cache_dir.map(CacheStore::open))
}

/// [`compile_session_with`] against a shared [`ResidentCache`]: cache
/// reads are served from the resident in-memory map (falling back to,
/// and adopting from, the map's backing directory when it has one), and
/// publishes write through to both. This is the compile server's entry
/// point — many concurrent sessions in one process share a single
/// resident cache, and a `--cache-dir` backing directory keeps one-shot
/// `titanc` invocations interoperable with the daemon.
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic or semantic errors
/// in any input file.
pub fn compile_session_resident(
    files: &[SourceFile],
    options: &Options,
    pipeline: Pipeline,
    resident: &ResidentCache,
) -> Result<SessionCompilation, CompileError> {
    compile_session_impl(
        files,
        options,
        pipeline,
        Some(CacheStore::open_resident(resident)),
    )
}

fn compile_session_impl(
    files: &[SourceFile],
    options: &Options,
    pipeline: Pipeline,
    store: Option<CacheStore>,
) -> Result<SessionCompilation, CompileError> {
    if files.is_empty() {
        return Err(CompileError::internal("no input files"));
    }
    let multi = files.len() > 1;

    // front end, one TU at a time; every file is processed even after a
    // failure so one broken file cannot hide another's diagnostics
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut tus: Vec<(String, Program)> = Vec::new();
    let mut failed = false;
    for f in files {
        let mut sink = DiagnosticSink::new(options.max_errors);
        let tu = titanc_cfront::parse_recovering(&f.src, &mut sink);
        if sink.has_errors() {
            if sink.suppressed() > 0 {
                sink.warning(
                    format!(
                        "{} further error(s) suppressed by --max-errors (total {})",
                        sink.suppressed(),
                        sink.error_count()
                    ),
                    Span::none(),
                );
            }
            failed = true;
            extend_tagged(&mut diagnostics, &f.name, sink.into_diagnostics(), multi);
            continue;
        }
        match titanc_lower::lower(&tu) {
            Ok(p) => {
                extend_tagged(&mut diagnostics, &f.name, sink.into_diagnostics(), multi);
                tus.push((f.name.clone(), p));
            }
            Err(e) => {
                sink.error(e.message.clone(), e.span);
                failed = true;
                extend_tagged(&mut diagnostics, &f.name, sink.into_diagnostics(), multi);
            }
        }
    }
    if failed {
        return Err(CompileError::from_diagnostics(diagnostics));
    }

    // merge the TUs (earlier files win), then link catalogs as usual
    let mut sink = DiagnosticSink::new(0);
    let mut program = Program::new();
    let mut origin: Vec<(String, String)> = Vec::new();
    for (name, tu) in tus {
        merge_tu(&mut program, tu, &name, multi, &mut origin, &mut sink);
    }
    link_catalogs(&mut program, &options.catalogs, origin, &mut sink);

    let mut snapshots = Vec::new();
    if options.snapshots {
        snapshot_all("lower", &program, &mut snapshots);
    }
    if cfg!(debug_assertions) || options.verify {
        if let Err(detail) = verify_program_check(&program) {
            return Err(CompileError::internal(format!(
                "internal error: IL verification failed after lowering: {detail}"
            )));
        }
    }

    let parsed = options.keep_parsed.then(|| program.clone());

    let pipeline_fp = pipeline.pass_names().join(",");
    let hashes = proc_hashes(&program, options, &pipeline_fp);
    let (program_stages, proc_stages) = pipeline.stage_counts();
    let mut stats = SessionStats::default();

    let mut store = store;
    let index = store.as_mut().map(load_index).unwrap_or_default();
    // the session key is computed on the *parsed* program — exactly what
    // the next invocation computes before any pass runs, so the manifest
    // a run persists is the manifest its successor looks up
    let session_key = store
        .as_ref()
        .map(|_| session_hash(&program, options, &pipeline_fp, &hashes));

    // fully warm? the manifest carries the aggregate records and the
    // post-pipeline program environment, the entries carry the IL — no
    // pass executes at all. Every entry is checksummed on read and its
    // IL re-verified before being trusted; any rejection quarantines the
    // file and falls through to a real compile.
    if let (Some(st), Some(key)) = (store.as_mut(), &session_key) {
        if let Some((warm, reports, trace)) = load_full_warm(st, key, &program, &hashes, &pipeline)
        {
            let verified =
                !(cfg!(debug_assertions) || options.verify) || verify_program_check(&warm).is_ok();
            if verified {
                optimization_remarks(&reports, &mut sink);
                store_diagnostics(st, &mut sink);
                fold_store_stats(st, &mut stats);
                diagnostics.extend(sink.into_diagnostics());
                stats.hits = warm.procs.len();
                stats.full_warm = true;
                return Ok(SessionCompilation {
                    compilation: Compilation {
                        program: warm,
                        reports,
                        trace,
                        snapshots,
                        diagnostics,
                        parsed,
                    },
                    stats,
                });
            }
            // a manifest that decodes but fails verification is corrupt:
            // fall through and compile for real
        }
    }

    // cold or partially warm: seed per-procedure hits and run the
    // pipeline; hits replay, misses execute
    let mut replay = SessionReplay::default();
    if let Some(st) = store.as_mut() {
        for (p, h) in program.procs.iter().zip(&hashes) {
            if let Some((il, cells)) = load_entry(st, h, &p.name) {
                replay
                    .hits
                    .insert(p.name.clone(), CachedProc::new(il, cells));
            } else if index.get(&p.name).is_some_and(|old| *old != h.hex()) {
                stats.invalidated += 1;
            }
        }
    }
    let (reports, trace) = pipeline.run_session(&mut program, options, &mut snapshots, &mut replay);

    stats.hits = replay.replayed.len();
    stats.misses = program.procs.len().saturating_sub(stats.hits);
    stats.passes_executed = program_stages + proc_stages * stats.misses;

    if let (Some(st), Some(key)) = (store.as_mut(), &session_key) {
        persist(st, key, &program, &hashes, &trace, &replay, proc_stages);
    }
    optimization_remarks(&reports, &mut sink);
    if let Some(st) = &store {
        store_diagnostics(st, &mut sink);
        fold_store_stats(st, &mut stats);
    }
    diagnostics.extend(sink.into_diagnostics());

    Ok(SessionCompilation {
        compilation: Compilation {
            program,
            reports,
            trace,
            snapshots,
            diagnostics,
            parsed,
        },
        stats,
    })
}

/// Appends `diags`, folding the file name (and the position, when
/// known) into each message in multi-file sessions, so renderings read
/// `file:line:col: message` with the file first. Single-file sessions
/// keep the exact single-TU rendering, so artifacts stay byte-identical
/// with [`crate::compile`].
fn extend_tagged(out: &mut Vec<Diagnostic>, file: &str, diags: Vec<Diagnostic>, multi: bool) {
    for mut d in diags {
        if multi {
            d.message = if d.span.is_known() {
                format!("{file}:{}: {}", d.span, d.message)
            } else {
                format!("{file}: {}", d.message)
            };
            d.span = Span::none();
        }
        out.push(d);
    }
}

/// Rewrites struct ids appearing in `ty` through `smap` (old TU-local
/// index → merged session index).
fn remap_type(ty: &mut Type, smap: &[usize]) {
    match ty {
        Type::Ptr(inner) => remap_type(inner, smap),
        Type::Array(inner, _) => remap_type(inner, smap),
        Type::Struct(sid) => {
            if let Some(&j) = smap.get(sid.index()) {
                *sid = StructId::from_index(j);
            }
        }
        Type::Void | Type::Char | Type::Int | Type::Float | Type::Double => {}
    }
}

/// Merges one lowered TU into the session program: struct layouts dedup
/// by tag (ids remapped), globals merge by name, duplicate procedures
/// are diagnosed and dropped (earlier files win), and in multi-file
/// sessions every span is tagged with its origin file so `--opt-report`
/// attributes loops to the right file.
fn merge_tu(
    program: &mut Program,
    tu: Program,
    file: &str,
    multi: bool,
    origin: &mut Vec<(String, String)>,
    sink: &mut DiagnosticSink,
) {
    let mut smap: Vec<usize> = Vec::with_capacity(tu.structs.len());
    let mut appended: Vec<usize> = Vec::new();
    for sd in &tu.structs {
        match program.structs.iter().position(|s| s.name == sd.name) {
            Some(j) => {
                if program.structs[j].size != sd.size
                    || program.structs[j].fields.len() != sd.fields.len()
                {
                    sink.warning(
                        format!(
                            "struct `{}` in `{file}` differs from an earlier definition; \
                             using the first",
                            sd.name
                        ),
                        Span::none(),
                    );
                }
                smap.push(j);
            }
            None => {
                smap.push(program.structs.len());
                appended.push(program.structs.len());
                program.structs.push(sd.clone());
            }
        }
    }
    // newly appended layouts may reference other structs; remap their
    // field types once the whole map is known
    for &j in &appended {
        let mut fields = std::mem::take(&mut program.structs[j].fields);
        for f in &mut fields {
            remap_type(&mut f.ty, &smap);
        }
        program.structs[j].fields = fields;
    }

    // span retag map: the TU's own spans (tag 0) plus any tags it already
    // carries (a TU fresh from the front end has none, but be thorough)
    let mut tag_map: Vec<u32> = Vec::new();
    if multi {
        tag_map.push(program.intern_file(file));
        for f in &tu.files {
            tag_map.push(program.intern_file(f));
        }
    }

    for g in &tu.globals {
        let mut g = g.clone();
        remap_type(&mut g.ty, &smap);
        if let Some(existing) = program.global_by_name(&g.name) {
            if existing.ty != g.ty || existing.init != g.init {
                sink.warning(
                    format!(
                        "global `{}` in `{file}` differs from an earlier definition; \
                         using the first",
                        g.name
                    ),
                    Span::none(),
                );
            }
        } else {
            program.ensure_global(g);
        }
    }

    for mut p in tu.procs {
        if let Some((_, earlier)) = origin.iter().find(|(n, _)| *n == p.name) {
            sink.warning(
                format!(
                    "procedure `{}` in `{file}` is shadowed by the definition in {earlier}",
                    p.name
                ),
                Span::none(),
            );
            continue;
        }
        remap_type(&mut p.ret, &smap);
        for v in &mut p.vars {
            remap_type(&mut v.ty, &smap);
        }
        if multi {
            p.retag_spans(&tag_map);
        }
        origin.push((p.name.clone(), format!("`{file}`")));
        program.add_proc(p);
    }
}

/// Every option that can change generated code, flattened to a string
/// the hasher folds in. `jobs`, `snapshots`, `verify` and `max_errors`
/// are deliberately absent — they never change the output program.
fn options_fingerprint(options: &Options) -> String {
    format!(
        "opt={:?} inline={} depth={} callee={} growth={} parallel={} spread={} \
         aliasing={:?} strip={} maxvl={}",
        options.opt,
        options.inline,
        options.inline_opts.max_depth,
        options.inline_opts.max_callee_size,
        options.inline_opts.max_growth,
        options.parallelize,
        options.spread_lists,
        options.aliasing,
        options.strip,
        options.max_vl
    )
}

/// The shared program environment, hashed once: globals (an initializer
/// edit changes generated data without touching any body), the struct
/// table (layouts reach bodies through lowering and the passes), and
/// the file table (span origin tags feed `--opt-report`). This is the
/// **single** place the environment enters the cache — every per-proc
/// key folds it in, and the session key covers it through those keys —
/// so the manifest and per-procedure paths can never disagree about
/// what the environment is.
fn environment_hash(program: &Program) -> String {
    let mut h = StableHasher::new();
    h.write_str(&program.globals.to_json().to_string_compact());
    h.write_str(&program.structs.to_json().to_string_compact());
    h.write_str(&program.files.to_json().to_string_compact());
    h.finish().hex()
}

/// One stable content hash per procedure of the parsed program.
///
/// With inlining on, each key covers the procedure's *inline dependency
/// cone* ([`CallGraph::inline_cones`]): the arena encodings of itself
/// plus every transitive callee, in program order. The per-caller
/// `max_growth` budget keeps inline decisions local to each caller, so
/// nothing outside the cone (and the shared environment) can change the
/// procedure's post-inline IL — an edit invalidates exactly the edited
/// procedure and its cone consumers, not the whole program. `--no-inline`
/// sessions key each procedure on its own encoding alone.
fn proc_hashes(program: &Program, options: &Options, pipeline_fp: &str) -> Vec<StableHash> {
    let opts_fp = options_fingerprint(options);
    let env = environment_hash(program);
    let cones = options
        .inline
        .then(|| CallGraph::build(program).inline_cones(program));
    program
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut h = StableHasher::new();
            h.write_str(CACHE_FORMAT);
            h.write_str(&opts_fp);
            h.write_str(pipeline_fp);
            h.write_str(&env);
            h.write_str(&p.name);
            match &cones {
                // hash the arena columns directly — a linear byte sweep
                // instead of a JSON re-encode of each body. Cone members
                // are hashed in program order: the inliner's round loop
                // visits callers in that order, so relative position is
                // part of what determines the spliced code.
                Some(cones) => {
                    for &j in &cones[i] {
                        let m = &program.procs[j];
                        h.write_str(&m.name);
                        titanc_il::write_proc(&mut h, m);
                    }
                }
                None => titanc_il::write_proc(&mut h, p),
            }
            h.finish()
        })
        .collect()
}

/// The whole session's key: the per-procedure keys in program order.
/// Each of those keys already folds in [`environment_hash`], so the
/// manifest invalidates whenever any body, cone member, or environment
/// detail changes — without hashing the environment a second time that
/// could drift out of sync with the per-procedure keys.
fn session_hash(
    program: &Program,
    options: &Options,
    pipeline_fp: &str,
    hashes: &[StableHash],
) -> StableHash {
    let mut h = StableHasher::new();
    h.write_str(CACHE_FORMAT);
    h.write_str(&options_fingerprint(options));
    h.write_str(pipeline_fp);
    for (p, ph) in program.procs.iter().zip(hashes) {
        h.write_str(&p.name);
        h.write_str(&ph.hex());
    }
    h.finish()
}

/// One per-procedure cache entry on disk.
struct CacheEntry {
    version: i64,
    proc: Procedure,
    cells: Vec<RecordedCell>,
}

titanc_il::struct_json!(CacheEntry, [version, proc, cells]);

/// One aggregate pass record in the session manifest (a serializable
/// [`PassRecord`] minus the wall-clock duration).
struct ManifestRecord {
    name: String,
    delta: Reports,
    changed: bool,
    cache: crate::CacheStats,
    skipped: u64,
    faulted: u64,
}

titanc_il::struct_json!(
    ManifestRecord,
    [name, delta, changed, cache, skipped, faulted]
);

/// The session manifest: everything a fully warm run needs beyond the
/// per-procedure entries.
struct Manifest {
    version: i64,
    records: Vec<ManifestRecord>,
    globals: Vec<VarInfo>,
    structs: Vec<StructDef>,
    files: Vec<String>,
}

titanc_il::struct_json!(Manifest, [version, records, globals, structs, files]);

fn entry_name(hash: &StableHash) -> String {
    format!("{}.json", hash.hex())
}

fn manifest_name(key: &StableHash) -> String {
    format!("session-{}.json", key.hex())
}

/// The name → key index file (invalidation accounting only).
const INDEX_FILE: &str = "index.json";

/// Surfaces the store's degradations as warnings — a format-skewed
/// directory compiling cold, quarantined corruption, write failures.
/// One line per kind, however many files were involved; a cache problem
/// is loud but never fatal.
fn store_diagnostics(store: &CacheStore, sink: &mut DiagnosticSink) {
    if let Some(msg) = store.format_warning() {
        sink.warning(msg.to_string(), Span::none());
    }
    if store.stats.corrupt > 0 {
        sink.warning(
            format!(
                "{} corrupt cache file(s) detected ({} quarantined); the affected \
                 procedures were recompiled cold",
                store.stats.corrupt, store.stats.quarantined
            ),
            Span::none(),
        );
    }
    if store.stats.write_failed > 0 {
        sink.warning(
            format!(
                "{} cache write(s) failed ({}); compilation output is unaffected",
                store.stats.write_failed,
                store.first_write_error().unwrap_or("unknown error")
            ),
            Span::none(),
        );
    }
}

/// Copies the store's durability counters onto the session accounting.
fn fold_store_stats(store: &CacheStore, stats: &mut SessionStats) {
    stats.corrupt = store.stats.corrupt;
    stats.quarantined = store.stats.quarantined;
    stats.lock_contended = store.stats.lock_contended;
    stats.write_failed = store.stats.write_failed;
}

/// Loads and validates one entry; any failure is a miss. A missing file
/// is a plain (cold) miss; a file that read but failed its checksum,
/// decode, version, name, or — crucially — the IL verifier is
/// quarantined so the bad bytes are never trusted or re-read.
fn load_entry(
    store: &mut CacheStore,
    hash: &StableHash,
    name: &str,
) -> Option<(Procedure, Vec<RecordedCell>)> {
    let file = entry_name(hash);
    let payload = store.read(&file)?;
    let decoded = titanc_il::json::parse(&payload)
        .ok()
        .and_then(|doc| CacheEntry::from_json(&doc).ok())
        .filter(|e| e.version == ENTRY_VERSION && e.proc.name == name)
        .filter(|e| verify_proc_check(&e.proc).is_ok());
    match decoded {
        Some(entry) => Some((entry.proc, entry.cells)),
        None => {
            store.quarantine(&file);
            None
        }
    }
}

/// Reconstructs a fully warm compilation: the program from the manifest
/// environment plus per-procedure entries, the trace records with zero
/// durations, and the aggregate reports re-merged from the per-pass
/// deltas. `None` on any mismatch — the caller compiles for real.
fn load_full_warm(
    store: &mut CacheStore,
    key: &StableHash,
    program: &Program,
    hashes: &[StableHash],
    pipeline: &Pipeline,
) -> Option<(Program, Reports, PassTrace)> {
    let file = manifest_name(key);
    let payload = store.read(&file)?;
    let manifest = titanc_il::json::parse(&payload)
        .ok()
        .and_then(|doc| Manifest::from_json(&doc).ok())
        .filter(|m| m.version == ENTRY_VERSION);
    let Some(manifest) = manifest else {
        // checksum passed but the payload does not decode: quarantine
        store.quarantine(&file);
        return None;
    };
    let names = pipeline.pass_names();
    if manifest.records.len() != names.len() {
        return None;
    }
    let mut reports = Reports::default();
    let mut trace = PassTrace::default();
    for (i, rec) in manifest.records.into_iter().enumerate() {
        // the replayed record borrows the pipeline's static pass name;
        // the fingerprint in the key guarantees the sequences agree
        if rec.name != names[i] {
            return None;
        }
        reports.merge(rec.delta.clone());
        trace.records.push(PassRecord {
            name: names[i],
            duration: Duration::ZERO,
            delta: rec.delta,
            changed: rec.changed,
            cache: rec.cache,
            skipped_procs: rec.skipped as usize,
            faulted_procs: rec.faulted as usize,
        });
    }
    let mut procs = Vec::with_capacity(program.procs.len());
    for (p, h) in program.procs.iter().zip(hashes) {
        let (il, _) = load_entry(store, h, &p.name)?;
        procs.push(il);
    }
    Some((
        Program {
            procs,
            globals: manifest.globals,
            structs: manifest.structs,
            files: manifest.files,
        },
        reports,
        trace,
    ))
}

/// Persists the run through the hardened store: per-procedure entries
/// for cleanly compiled misses, the session manifest when every
/// procedure is covered, and the name → key index that powers
/// invalidation accounting.
///
/// Entries are published first, *without* the lock — they are
/// content-addressed and atomically renamed into place, so concurrent
/// sessions writing the same key produce identical bytes and the last
/// rename wins harmlessly. The manifest and index are derived files
/// with read-modify-write semantics, so they update under the advisory
/// writer lock; on contention they are skipped (counted, never torn).
/// The session key was computed on the parsed program, which is exactly
/// what the next invocation hashes before running any pass.
fn persist(
    store: &mut CacheStore,
    session_key: &StableHash,
    program: &Program,
    hashes: &[StableHash],
    trace: &PassTrace,
    replay: &SessionReplay,
    proc_stages: usize,
) {
    if !store.enabled() || trace.has_incidents() || program.procs.len() != hashes.len() {
        // a degraded program must never be served from the cache, and a
        // pass that changed the procedure count leaves the keys stale
        return;
    }
    let mut updates: BTreeMap<String, String> = BTreeMap::new();
    let mut all_cached = true;
    for (p, h) in program.procs.iter().zip(hashes) {
        if replay.replayed.contains(&p.name) {
            updates.insert(p.name.clone(), h.hex());
            continue;
        }
        match replay.recorded.get(&p.name) {
            Some(cells) if cells.len() == proc_stages && !replay.uncacheable.contains(&p.name) => {
                let entry = CacheEntry {
                    version: ENTRY_VERSION,
                    proc: p.clone(),
                    cells: cells.clone(),
                };
                if store.publish(&entry_name(h), &entry.to_json().to_string_compact()) {
                    updates.insert(p.name.clone(), h.hex());
                } else {
                    all_cached = false;
                }
            }
            _ => all_cached = false,
        }
    }
    let Some(_lock) = store.lock() else {
        // contended: skip the derived files rather than interleave a
        // read-modify-write with another session (counted in stats)
        return;
    };
    let healthy = trace
        .records
        .iter()
        .all(|r| r.skipped_procs == 0 && r.faulted_procs == 0);
    if all_cached && healthy {
        let records = trace
            .records
            .iter()
            .map(|r| ManifestRecord {
                name: r.name.to_string(),
                delta: r.delta.clone(),
                changed: r.changed,
                cache: r.cache,
                skipped: r.skipped_procs as u64,
                faulted: r.faulted_procs as u64,
            })
            .collect();
        let manifest = Manifest {
            version: ENTRY_VERSION,
            records,
            globals: program.globals.clone(),
            structs: program.structs.clone(),
            files: program.files.clone(),
        };
        store.publish(
            &manifest_name(session_key),
            &manifest.to_json().to_string_compact(),
        );
    }
    // reload-merge under the lock: another session may have extended the
    // index since this one loaded it, and its entries must survive
    let mut merged = load_index(store);
    merged.extend(updates);
    save_index(store, &merged);
}

/// The name → key index (invalidation accounting only; lookups never
/// depend on it). Corruption quarantines the file and yields an empty
/// map — hit/miss behavior is unaffected.
fn load_index(store: &mut CacheStore) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let Some(payload) = store.read(INDEX_FILE) else {
        return map;
    };
    let Ok(doc) = titanc_il::json::parse(&payload) else {
        store.quarantine(INDEX_FILE);
        return map;
    };
    if let Some(Json::Obj(pairs)) = doc.get("procs") {
        for (k, v) in pairs {
            if let Ok(s) = v.as_str() {
                map.insert(k.clone(), s.to_string());
            }
        }
    }
    map
}

fn save_index(store: &mut CacheStore, map: &BTreeMap<String, String>) {
    let obj = Json::obj(vec![(
        "procs",
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        ),
    )]);
    store.publish(INDEX_FILE, &obj.to_string_compact());
}
