//! Compiler-wide observability: named counters, the per-source-loop
//! optimization report, and the Chrome trace-event export.
//!
//! The paper sells the compiler by *what happened to each loop* — EXP5's
//! coverage table, §9's walkthrough of one loop through every phase. This
//! module rebuilds those artifacts from the decision events the optimizing
//! crates attach to their reports ([`titanc_il::LoopEvent`],
//! [`titanc_il::InlineEvent`]):
//!
//! * [`Counters`] — a flat, sorted name → value map of the compilation
//!   (loops vectorized, call sites expanded, cache hits…), merged into the
//!   benchmark harness so vectorization *rates* are tracked like timings;
//! * [`OptReport`] — the `--opt-report` surface: every source loop with
//!   its final classification and the decision history that led there.
//!   Events ride per-pass report deltas, which the pass manager merges
//!   pass-major in procedure order, so the report is **byte-identical
//!   between `-j 1` and `-j N`**;
//! * [`chrome_trace`] — the `--trace-json` surface: [`PassTrace`] records
//!   and the per-(pass × procedure) timeline with worker-lane assignments
//!   in Chrome trace-event format (load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>). Unlike the opt report, the timeline is
//!   real timing data and varies run to run.

use std::collections::BTreeMap;
use std::fmt;

use titanc_il::{InlineEvent, Json, LoopDecision, LoopEvent, SrcSpan};

use crate::pass::PassTrace;
use crate::Reports;

/// Named compilation counters, sorted by name.
///
/// The names are stable — the bench harness records them in
/// `BENCH_compile.json` and guards the vectorization rate, so renaming a
/// counter is a breaking change to the performance baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Counter name → value, sorted by name.
    pub values: BTreeMap<String, u64>,
}

impl Counters {
    /// Builds the counter set from one compilation's aggregate reports
    /// and pass trace.
    pub fn from_run(reports: &Reports, trace: &PassTrace) -> Counters {
        let mut c = Counters::default();
        let mut set = |k: &str, v: usize| {
            c.values.insert(k.to_string(), v as u64);
        };
        set("loops.do_converted", reports.whiledo.converted);
        set("loops.do_rejected", reports.whiledo.rejects.len());
        set("loops.iv_substituted", reports.ivsub.substituted);
        set("loops.vectorized", reports.vector.vectorized);
        set("loops.parallelized", reports.vector.spread);
        set("loops.scalar", reports.vector.scalar);
        set("loops.list_spread", reports.spread.spread);
        set("inline.expanded", reports.inline.inlined);
        set("inline.skipped_recursive", reports.inline.skipped_recursive);
        set("inline.skipped_size", reports.inline.skipped_size);
        set("inline.skipped_growth", reports.inline.skipped_growth);
        let cache = trace.cache_totals();
        set("cache.hits", cache.hits());
        set("cache.builds", cache.builds());
        set("cache.invalidations", cache.invalidations);
        set("cache.repairs", cache.repairs);
        set(
            "pipeline.cells_skipped",
            trace.records.iter().map(|r| r.skipped_procs).sum(),
        );
        set(
            "pipeline.cells_faulted",
            trace.records.iter().map(|r| r.faulted_procs).sum(),
        );
        set("pipeline.incidents", trace.incidents.len());
        c
    }

    /// Folds the compiled program's arena statistics into the counters:
    /// lifetime node allocations (every `Expr`/`StmtKind` ever stamped,
    /// including arena garbage later compacted away) and the resident
    /// arena footprint in bytes. Arena layout is deterministic across
    /// `-j` values, but NOT across cold-vs-warm cache runs (a warm run
    /// decodes compacted procedures from disk and re-runs no passes), so
    /// these counters feed `BENCH_compile.json` rather than the
    /// byte-identical `--opt-report` surface.
    pub fn record_program(&mut self, program: &titanc_il::Program) {
        let mut exprs = 0u64;
        let mut stmts = 0u64;
        let mut bytes = 0u64;
        for p in &program.procs {
            exprs += p.exprs.total_allocated();
            stmts += p.stmts.total_allocated();
            bytes += (p.exprs.bytes() + p.stmts.bytes()) as u64;
        }
        self.values.insert("il.exprs_allocated".to_string(), exprs);
        self.values.insert("il.stmts_allocated".to_string(), stmts);
        self.values.insert("il.arena_bytes".to_string(), bytes);
    }

    /// A counter's value (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// The counters as a JSON object, keys sorted.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect(),
        )
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "  {k:<26} {v}")?;
        }
        Ok(())
    }
}

/// One source loop's aggregated story: the decision events every pass
/// recorded at the same (procedure, span), and the classification they
/// add up to.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopReport {
    /// The procedure holding the loop (after inlining, the caller the
    /// loop was expanded into).
    pub proc: String,
    /// The loop's controlling variable, when any pass identified one.
    pub var: String,
    /// Source position of the loop head.
    pub span: SrcSpan,
    /// Final classification: `"vectorized"`, `"parallelized"`,
    /// `"spread"`, or `"scalar"`.
    pub classification: &'static str,
    /// For scalar loops, the defeating dependence or construct.
    pub reason: Option<String>,
    /// The full decision history, in pass order.
    pub events: Vec<LoopEvent>,
}

/// The `--opt-report` artifact: every loop accounted for, plus inlining
/// decisions and the compilation counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptReport {
    /// One entry per (procedure, source span) that any pass made a loop
    /// decision about, in first-decision order.
    pub loops: Vec<LoopReport>,
    /// Call-site decisions, one per physical site — deduplicated by
    /// `(caller, callee, span, site)` since the inliner revisits skipped
    /// sites every round, while distinct sites sharing a source span
    /// stay distinct through the per-caller site ordinal.
    pub inline: Vec<InlineEvent>,
    /// The compilation counters.
    pub counters: Counters,
    /// The program's file table, for resolving span origin tags: a span
    /// tagged `f > 0` originated in `files[f - 1]` (a linked catalog or
    /// another session TU), not the current translation unit.
    pub files: Vec<String>,
}

impl OptReport {
    /// [`OptReport::build_for`] without a file table; origin-tagged
    /// spans render with their bare `@fN` tag.
    pub fn build(reports: &Reports, trace: &PassTrace) -> OptReport {
        OptReport::build_for(reports, trace, &[])
    }

    /// Correlates the decision events of one compilation into the
    /// per-loop report, resolving span origin tags against `files` (the
    /// program's file table) so loops and call sites that arrived via a
    /// catalog or another session TU are attributed to the file they
    /// were written in. Deterministic: events arrive in the pass
    /// manager's pass-major, procedure-order merge, and grouping
    /// preserves first-seen order.
    pub fn build_for(reports: &Reports, trace: &PassTrace, files: &[String]) -> OptReport {
        let mut loops: Vec<LoopReport> = Vec::new();
        // (proc, span) -> index in `loops`; linear scan keeps first-seen
        // order without hashing a float-free key type
        let find = |loops: &[LoopReport], e: &LoopEvent| {
            loops
                .iter()
                .position(|l| l.proc == e.proc && l.span == e.span)
        };
        let all_events = reports
            .whiledo
            .events
            .iter()
            .chain(&reports.ivsub.events)
            .chain(&reports.spread.events)
            .chain(&reports.vector.events);
        for e in all_events {
            match find(&loops, e) {
                Some(i) => {
                    if loops[i].var.is_empty() && !e.var.is_empty() {
                        loops[i].var = e.var.clone();
                    }
                    if !loops[i].events.contains(e) {
                        loops[i].events.push(e.clone());
                    }
                }
                None => loops.push(LoopReport {
                    proc: e.proc.clone(),
                    var: e.var.clone(),
                    span: e.span,
                    classification: "scalar",
                    reason: None,
                    events: vec![e.clone()],
                }),
            }
        }
        for l in &mut loops {
            let (class, reason) = classify(&l.events);
            l.classification = class;
            l.reason = reason;
        }
        // dedupe by site identity, not event equality: the inliner
        // revisits skipped sites every round (and a growth-skip's payload
        // drifts as the caller grows), while two distinct sites can share
        // a span (two calls in one expression statement). The first
        // decision per physical site wins.
        let mut inline: Vec<InlineEvent> = Vec::new();
        for e in &reports.inline.events {
            let seen = inline.iter().any(|x| {
                x.caller == e.caller && x.callee == e.callee && x.span == e.span && x.site == e.site
            });
            if !seen {
                inline.push(e.clone());
            }
        }
        OptReport {
            loops,
            inline,
            counters: Counters::from_run(reports, trace),
            files: files.to_vec(),
        }
    }

    /// The origin file a span's tag resolves to, when it has one.
    fn origin(&self, span: &SrcSpan) -> Option<&str> {
        (span.file != 0)
            .then(|| self.files.get(span.file as usize - 1))
            .flatten()
            .map(String::as_str)
    }

    /// A span rendered for the report: `file:line:col` when the origin
    /// tag resolves, the span's own `Display` (`line:col`, or
    /// `line:col@fN` for an unresolvable tag) otherwise.
    fn span_label(&self, span: &SrcSpan) -> String {
        match self.origin(span) {
            Some(file) => format!("{file}:{}:{}", span.line, span.col),
            None => span.to_string(),
        }
    }

    /// Renders the report as text, grouped by procedure in
    /// first-decision order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("== optimization report ==\n");
        if self.loops.is_empty() {
            out.push_str("no loops\n");
        }
        let mut seen_procs: Vec<&str> = Vec::new();
        for l in &self.loops {
            if !seen_procs.contains(&l.proc.as_str()) {
                seen_procs.push(&l.proc);
            }
        }
        for proc in seen_procs {
            let _ = writeln!(out, "{proc}:");
            for l in self.loops.iter().filter(|l| l.proc == proc) {
                let at = self.span_label(&l.span);
                let head = if l.var.is_empty() {
                    format!("loop at {at}")
                } else {
                    format!("loop on `{}` at {at}", l.var)
                };
                match &l.reason {
                    Some(r) => {
                        let _ = writeln!(out, "  {head}: {} — {r}", l.classification);
                    }
                    None => {
                        let _ = writeln!(out, "  {head}: {}", l.classification);
                    }
                }
                for e in &l.events {
                    let _ = writeln!(out, "      - {}", e.decision);
                }
            }
        }
        if !self.inline.is_empty() {
            out.push_str("inline decisions:\n");
            for e in &self.inline {
                let _ = writeln!(
                    out,
                    "  call {}→{} at {}: {}",
                    e.caller,
                    e.callee,
                    self.span_label(&e.span),
                    e.outcome
                );
            }
        }
        out.push_str("counters:\n");
        let _ = write!(out, "{}", self.counters);
        out
    }

    /// The report as JSON (the `--opt-report=json` surface).
    pub fn to_json(&self) -> Json {
        let loops = self
            .loops
            .iter()
            .map(|l| {
                let mut fields = vec![
                    ("proc", Json::Str(l.proc.clone())),
                    ("var", Json::Str(l.var.clone())),
                    ("line", Json::Int(i64::from(l.span.line))),
                    ("col", Json::Int(i64::from(l.span.col))),
                    ("classification", Json::Str(l.classification.to_string())),
                ];
                if let Some(file) = self.origin(&l.span) {
                    fields.push(("file", Json::Str(file.to_string())));
                }
                if let Some(r) = &l.reason {
                    fields.push(("reason", Json::Str(r.clone())));
                }
                fields.push((
                    "events",
                    Json::Arr(
                        l.events
                            .iter()
                            .map(|e| {
                                Json::obj(vec![
                                    ("tag", Json::Str(e.decision.tag().to_string())),
                                    ("detail", Json::Str(e.decision.to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ));
                Json::obj(fields)
            })
            .collect();
        let inline = self
            .inline
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("caller", Json::Str(e.caller.clone())),
                    ("callee", Json::Str(e.callee.clone())),
                    ("line", Json::Int(i64::from(e.span.line))),
                    ("col", Json::Int(i64::from(e.span.col))),
                    ("site", Json::Int(i64::from(e.site))),
                ];
                if let Some(file) = self.origin(&e.span) {
                    fields.push(("file", Json::Str(file.to_string())));
                }
                fields.push(("outcome", Json::Str(e.outcome.tag().to_string())));
                fields.push(("detail", Json::Str(e.outcome.to_string())));
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("loops", Json::Arr(loops)),
            ("inline", Json::Arr(inline)),
            ("counters", self.counters.to_json()),
        ])
    }
}

/// Reduces a loop's event history to its final classification. The
/// strongest outcome wins: vectorized, then list-spread, then
/// parallelized; otherwise the loop is scalar and the first defeating
/// reason (a vectorizer defeat or a DO-conversion rejection) is kept.
fn classify(events: &[LoopEvent]) -> (&'static str, Option<String>) {
    let mut scalar_reason: Option<String> = None;
    let mut rejected_reason: Option<String> = None;
    for e in events {
        match &e.decision {
            LoopDecision::Vectorized { .. } => return ("vectorized", None),
            LoopDecision::ListSpread => return ("spread", None),
            _ => {}
        }
    }
    for e in events {
        match &e.decision {
            LoopDecision::Parallelized => return ("parallelized", None),
            LoopDecision::Scalar(why) if scalar_reason.is_none() => {
                scalar_reason = Some(why.clone());
            }
            LoopDecision::DoRejected(why) if rejected_reason.is_none() => {
                rejected_reason = Some(why.clone());
            }
            _ => {}
        }
    }
    ("scalar", scalar_reason.or(rejected_reason))
}

/// Exports the pass trace in Chrome trace-event format: one complete
/// (`"ph": "X"`) event per (pass × procedure) execution, with worker
/// lanes as thread ids, plus thread-name metadata. Load the file at
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(trace: &PassTrace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut lanes: Vec<usize> = trace.timeline.iter().map(|w| w.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let name = if lane == 0 {
            "main".to_string()
        } else {
            format!("worker-{lane}")
        };
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(lane as i64)),
            ("args", Json::obj(vec![("name", Json::Str(name))])),
        ]));
    }
    for w in &trace.timeline {
        events.push(Json::obj(vec![
            ("name", Json::Str(w.pass.to_string())),
            ("cat", Json::Str("pass".to_string())),
            ("ph", Json::Str("X".to_string())),
            ("ts", Json::Int(w.start.as_micros() as i64)),
            ("dur", Json::Int(w.duration.as_micros() as i64)),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(w.lane as i64)),
            ("args", Json::obj(vec![("proc", Json::Str(w.proc.clone()))])),
        ]));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::LoopDecision;

    fn ev(proc: &str, var: &str, line: u32, decision: LoopDecision) -> LoopEvent {
        LoopEvent {
            proc: proc.to_string(),
            var: var.to_string(),
            span: SrcSpan::new(line, 1),
            decision,
        }
    }

    #[test]
    fn classification_precedence() {
        let events = vec![
            ev("f", "i", 3, LoopDecision::DoConverted),
            ev("f", "i", 3, LoopDecision::IvSubstituted { substituted: 1 }),
            ev(
                "f",
                "i",
                3,
                LoopDecision::Vectorized {
                    stripped: true,
                    parallel: false,
                    residual: true,
                },
            ),
            ev("f", "i", 3, LoopDecision::Scalar("residual".into())),
        ];
        let (class, reason) = classify(&events);
        assert_eq!(class, "vectorized");
        assert!(reason.is_none());
    }

    #[test]
    fn scalar_keeps_the_defeat() {
        let events = vec![
            ev(
                "f",
                "",
                9,
                LoopDecision::DoRejected("volatile condition".into()),
            ),
            ev(
                "f",
                "",
                9,
                LoopDecision::Scalar("`while` loop was not converted to DO form".into()),
            ),
        ];
        let (class, reason) = classify(&events);
        assert_eq!(class, "scalar");
        // the sweep's generic note loses to nothing, but the first
        // Scalar payload wins over the rejection detail
        assert_eq!(
            reason.as_deref(),
            Some("`while` loop was not converted to DO form")
        );
    }

    #[test]
    fn opt_report_groups_by_proc_and_span() {
        let mut reports = Reports::default();
        reports
            .whiledo
            .events
            .push(ev("f", "i", 3, LoopDecision::DoConverted));
        reports.vector.events.push(ev(
            "f",
            "dummy_3",
            3,
            LoopDecision::Vectorized {
                stripped: false,
                parallel: false,
                residual: false,
            },
        ));
        reports.vector.events.push(ev(
            "f",
            "j",
            7,
            LoopDecision::Scalar("dependence cycle".into()),
        ));
        let trace = PassTrace::default();
        let report = OptReport::build(&reports, &trace);
        assert_eq!(report.loops.len(), 2);
        assert_eq!(report.loops[0].classification, "vectorized");
        assert_eq!(report.loops[0].var, "i");
        assert_eq!(report.loops[0].events.len(), 2);
        assert_eq!(report.loops[1].classification, "scalar");
        assert_eq!(report.loops[1].reason.as_deref(), Some("dependence cycle"));
        let text = report.render();
        assert!(text.contains("loop on `i` at 3:1: vectorized"), "{text}");
        let json = report.to_json().to_string_compact();
        titanc_il::json::parse(&json).expect("opt report json parses");
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let mut trace = PassTrace::default();
        trace.timeline.push(crate::pass::WorkItem {
            pass: "vectorize",
            proc: "main".to_string(),
            lane: 2,
            start: std::time::Duration::from_micros(15),
            duration: std::time::Duration::from_micros(120),
        });
        let json = chrome_trace(&trace).to_string_compact();
        let parsed = titanc_il::json::parse(&json).expect("chrome trace parses");
        let evs = parsed.field("traceEvents").unwrap().as_arr().unwrap();
        // one thread_name metadata record + one complete event
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(evs[1].field("ts").unwrap().as_i64().unwrap(), 15);
        assert_eq!(evs[1].field("dur").unwrap().as_i64().unwrap(), 120);
        assert_eq!(evs[1].field("tid").unwrap().as_i64().unwrap(), 2);
    }
}
