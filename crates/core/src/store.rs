//! Hardened on-disk storage for the persistent compilation cache.
//!
//! The cache in [`crate::session`] is an accelerator, never a
//! correctness risk — but that contract only holds if every on-disk
//! interaction degrades to a cold compile instead of a crash, a torn
//! file, or (worst of all) silently replaying wrong IL. [`CacheStore`]
//! is the single point through which all cache bytes flow, and it
//! enforces four properties:
//!
//! * **Atomic publish.** Every file is written to a temporary name in
//!   the cache directory, fsynced, and renamed into place. Readers
//!   never observe a half-written entry; a crash mid-write leaves at
//!   worst an orphaned `.tmp-*` file.
//! * **Checksummed envelopes.** Every file starts with a one-line
//!   header — the format name and a 128-bit FNV-1a digest of the
//!   payload — so a bit flip, truncation, or encoding skew is detected
//!   before the payload is parsed, not after it has been trusted.
//! * **Quarantine-and-miss.** A file that fails the checksum (or
//!   decodes to something the IL verifier rejects) is moved into a
//!   `quarantine/` subdirectory and treated as a miss. The bad bytes
//!   are preserved for post-mortem instead of being re-read forever or
//!   silently deleted.
//! * **Advisory single-writer locking.** Concurrent `titanc` processes
//!   sharing one `--cache-dir` serialize their index/manifest updates
//!   through a lock file (atomically created with `create_new`, carrying
//!   a pid+cookie identity token). A holder that died is detected by age
//!   and the lock is broken by *renaming* it to a contender-unique name —
//!   exactly one breaker wins, and release verifies the token so no
//!   holder ever deletes a successor's lock. A contender that cannot
//!   acquire the lock in time skips the derived files (they are
//!   advisory) rather than torn-writing them.
//!
//! The [`ResidentCache`] layer on top keeps all payloads in one shared
//! in-memory map for the `titand` compile server: every request's store
//! reads through it and writes through to the backing directory, so the
//! daemon and one-shot processes interoperate on the same `--cache-dir`.
//!
//! The store also hosts the `TITANC_INJECT_IO` fault hook (a sibling of
//! `TITANC_INJECT_PANIC`): reads, writes, and renames can be made to
//! fail, truncate, or delay with a configured probability, either from
//! the environment or programmatically via [`install_io_faults`] — the
//! lever the `stress --cache-faults` differential harness uses to prove
//! the degradation paths.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use titanc_il::{StableHash, StableHasher};

/// On-disk cache format name. Written to the directory's `FORMAT`
/// marker and prefixed to every envelope header; folded into every
/// content hash so a format change invalidates wholesale. Bumped to v3
/// when entries gained checksummed envelopes (a v2-era directory has
/// no marker and is refused cleanly — one remark, cold compile), and to
/// v4 when per-procedure keys switched from the whole-program hash to
/// inline dependency cones and `InlineEvent` gained its site ordinal —
/// a v3-era directory's marker names another version and is refused
/// the same way.
pub(crate) const CACHE_FORMAT: &str = "titanc-cache-v4";

/// The directory-level format marker file.
const MARKER_FILE: &str = "FORMAT";
/// The advisory writer lock file.
const LOCK_FILE: &str = ".lock";
/// Where corrupt files are preserved for post-mortem.
const QUARANTINE_DIR: &str = "quarantine";
/// Lock acquisition budget: retries × sleep ≈ 250 ms, far longer than
/// an index/manifest update takes, so a healthy contender always wins.
const LOCK_RETRIES: u32 = 50;
/// Sleep between lock attempts.
const LOCK_RETRY_SLEEP: Duration = Duration::from_millis(5);
/// A lock file older than this belongs to a dead process; break it.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(10);

/// Process-global uniquifier for temp, quarantine, and lock-break file
/// names. A per-store counter is not enough once several `CacheStore`s
/// share one process — the compile server opens one per request, and two
/// concurrent requests publishing the same entry would collide on
/// `.tmp-<name>-<pid>-0` and tear each other's writes.
fn next_unique() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// A fresh lock-identity cookie: splitmix64 over (wall clock, pid, the
/// process-global counter), so two acquisitions — in this process or any
/// other — never share a token even when they race on the same file.
fn lock_cookie() -> u64 {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs() ^ u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let mut z = now
        .wrapping_add(u64::from(std::process::id()) << 20)
        .wrapping_add(next_unique().wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// IO fault injection (`TITANC_INJECT_IO`)
// ---------------------------------------------------------------------

/// Which file operation a fault rule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoOp {
    /// Reading a cache file.
    Read,
    /// Writing a temporary file (the first half of a publish).
    Write,
    /// Renaming a temporary file into place (the second half).
    Rename,
}

/// What an injected fault does to the operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// The operation fails with an I/O error.
    Fail,
    /// Reads return half the bytes; writes persist half the bytes but
    /// *report success* — a torn write, the nastiest real-world case.
    /// On a rename, truncation degrades to [`FaultMode::Fail`].
    Truncate,
    /// The operation sleeps briefly first (widens race windows).
    Delay,
}

/// A fault-injection profile: rules matched per operation, each firing
/// with its own probability from a deterministic per-decision PRNG.
///
/// Parsed from `TITANC_INJECT_IO` (see [`IoFaultSpec::parse`]) or built
/// programmatically and installed with [`install_io_faults`].
#[derive(Clone, Debug, Default)]
pub struct IoFaultSpec {
    rules: Vec<(IoOp, FaultMode, f64)>,
    seed: u64,
}

impl IoFaultSpec {
    /// An empty spec (no faults) with the given PRNG seed.
    pub fn new(seed: u64) -> IoFaultSpec {
        IoFaultSpec {
            rules: Vec::new(),
            seed,
        }
    }

    /// Adds a rule: `op` suffers `mode` with probability `prob` (0–1).
    /// Rules are tried in insertion order; the first that fires wins.
    pub fn rule(mut self, op: IoOp, mode: FaultMode, prob: f64) -> IoFaultSpec {
        self.rules.push((op, mode, prob.clamp(0.0, 1.0)));
        self
    }

    /// Parses the `TITANC_INJECT_IO` syntax: comma-separated
    /// `op:mode:prob` rules plus an optional `seed:N`, e.g.
    ///
    /// ```text
    /// TITANC_INJECT_IO="read:fail:0.05,write:truncate:0.1,rename:fail:0.2,seed:42"
    /// ```
    ///
    /// Operations are `read`, `write`, `rename`; modes are `fail`,
    /// `truncate`, `delay`; probabilities are decimal in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(s: &str) -> Result<IoFaultSpec, String> {
        let mut spec = IoFaultSpec::new(0x10_FA_17);
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed:") {
                spec.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed in `{clause}`"))?;
                continue;
            }
            let mut parts = clause.split(':');
            let (op, mode, prob) = (parts.next(), parts.next(), parts.next());
            if parts.next().is_some() {
                return Err(format!("too many `:` in `{clause}`"));
            }
            let op = match op {
                Some("read") => IoOp::Read,
                Some("write") => IoOp::Write,
                Some("rename") => IoOp::Rename,
                _ => return Err(format!("unknown operation in `{clause}`")),
            };
            let mode = match mode {
                Some("fail") => FaultMode::Fail,
                Some("truncate") => FaultMode::Truncate,
                Some("delay") => FaultMode::Delay,
                _ => return Err(format!("unknown mode in `{clause}`")),
            };
            let prob: f64 = prob
                .and_then(|p| p.parse().ok())
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("bad probability in `{clause}`"))?;
            spec.rules.push((op, mode, prob));
        }
        Ok(spec)
    }

    fn from_env() -> Option<IoFaultSpec> {
        let raw = std::env::var("TITANC_INJECT_IO").ok()?;
        match IoFaultSpec::parse(&raw) {
            Ok(spec) if !spec.rules.is_empty() => Some(spec),
            Ok(_) => None,
            Err(why) => {
                eprintln!("titanc: ignoring malformed TITANC_INJECT_IO: {why}");
                None
            }
        }
    }
}

/// Installed spec plus the decision counter that drives its PRNG.
struct FaultState {
    spec: IoFaultSpec,
    counter: u64,
}

fn fault_state() -> &'static Mutex<Option<FaultState>> {
    static STATE: OnceLock<Mutex<Option<FaultState>>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(IoFaultSpec::from_env().map(|spec| FaultState { spec, counter: 0 }))
    })
}

/// Installs (or, with `None`, clears) the process-wide IO fault profile.
///
/// Overrides anything parsed from `TITANC_INJECT_IO`. The state is
/// **process-global**: tests that install faults must serialize against
/// other cache-touching tests in the same binary.
pub fn install_io_faults(spec: Option<IoFaultSpec>) {
    let mut guard = fault_state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = spec.map(|spec| FaultState { spec, counter: 0 });
}

/// One fault decision for `op`: `None` means "perform it for real".
fn decide(op: IoOp) -> Option<FaultMode> {
    let mut guard = fault_state().lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.as_mut()?;
    for &(rule_op, mode, prob) in &state.spec.rules {
        if rule_op != op {
            continue;
        }
        state.counter += 1;
        // splitmix64 finalizer over (seed, decision index): deterministic
        // for a single-threaded run, well-spread, dependency-free
        let mut z = state
            .spec
            .seed
            .wrapping_add(state.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if unit < prob {
            return Some(mode);
        }
    }
    None
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected {what} fault (TITANC_INJECT_IO)"))
}

/// Reads a whole file through the fault layer. Truncation cuts the byte
/// stream in half — exactly what a torn write leaves behind.
fn faulty_read(path: &Path) -> io::Result<Vec<u8>> {
    match decide(IoOp::Read) {
        Some(FaultMode::Fail) => return Err(injected("read")),
        Some(FaultMode::Truncate) => {
            let mut bytes = fs::read(path)?;
            bytes.truncate(bytes.len() / 2);
            return Ok(bytes);
        }
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    fs::read(path)
}

/// Writes and fsyncs through the fault layer. A truncation fault writes
/// half the bytes and **reports success** — the caller's rename then
/// publishes a torn file, which the checksum must catch on read.
fn faulty_write_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    match decide(IoOp::Write) {
        Some(FaultMode::Fail) => return Err(injected("write")),
        Some(FaultMode::Truncate) => {
            file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = file.sync_all();
            return Ok(());
        }
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    file.write_all(bytes)?;
    file.sync_all()
}

/// Renames through the fault layer (truncation degrades to failure —
/// there is no half-rename).
fn faulty_rename(from: &Path, to: &Path) -> io::Result<()> {
    match decide(IoOp::Rename) {
        Some(FaultMode::Fail | FaultMode::Truncate) => return Err(injected("rename")),
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    fs::rename(from, to)
}

// ---------------------------------------------------------------------
// Checksummed envelopes
// ---------------------------------------------------------------------

/// Wraps a payload in the v3 envelope: a `FORMAT <fnv128-hex>` header
/// line, then the payload bytes the digest covers.
fn seal(payload: &str) -> String {
    let mut h = StableHasher::new();
    h.write(payload.as_bytes());
    format!("{CACHE_FORMAT} {}\n{payload}", h.finish().hex())
}

/// Opens an envelope: checks the format name and the payload digest.
/// `None` on any mismatch — wrong format, bad header shape, checksum
/// failure, or non-UTF-8 bytes.
fn unseal(bytes: &[u8]) -> Option<String> {
    let text = String::from_utf8(bytes.to_vec()).ok()?;
    let (header, payload) = text.split_once('\n')?;
    let (format, digest) = header.split_once(' ')?;
    if format != CACHE_FORMAT {
        return None;
    }
    let expected = StableHash::from_hex(digest)?;
    let mut h = StableHasher::new();
    h.write(payload.as_bytes());
    (h.finish() == expected).then(|| payload.to_string())
}

// ---------------------------------------------------------------------
// The resident (in-memory) cache layer
// ---------------------------------------------------------------------

/// The compile server's process-shared, in-memory cache layer.
///
/// A `ResidentCache` holds every cache payload (per-procedure entries,
/// session manifests, the index) in one map shared by all the
/// [`CacheStore`]s opened against it — one per request in the daemon.
/// Reads hit the map before touching disk; published payloads write
/// through to the backing `--cache-dir` (when there is one) so one-shot
/// `titanc` processes and the daemon interoperate on the same directory.
/// Payloads enter the map only after passing the envelope checksum (disk
/// reads) or straight from the compiler (publishes), so map hits skip
/// the checksum, not the IL verifier.
///
/// The layer also carries the **in-process writer gate**: daemon workers
/// serialize their index/manifest read-modify-write sections here,
/// blocking instead of burning the on-disk lock's retry budget against
/// their own process. The disk lock file then only ever mediates
/// *cross-process* contention (a one-shot `titanc` sharing the
/// directory), which keeps the accounting line of a lone daemon request
/// identical to a one-shot compile.
#[derive(Clone, Default)]
pub struct ResidentCache {
    inner: Arc<ResidentInner>,
}

#[derive(Default)]
struct ResidentInner {
    dir: Option<PathBuf>,
    map: Mutex<BTreeMap<String, String>>,
    /// The writer gate: `true` while some store in this process holds
    /// the advisory lock. A `Condvar` semaphore rather than a plain
    /// `Mutex<()>` so the guard can live inside a [`StoreLock`] without
    /// borrowing the cache.
    gate: Mutex<bool>,
    gate_cv: Condvar,
}

impl ResidentCache {
    /// A resident cache over `dir` (write-through), or fully in-memory
    /// with `None` — the daemon still caches, it just shares nothing
    /// with one-shot processes and forgets everything on exit.
    pub fn new(dir: Option<&Path>) -> ResidentCache {
        ResidentCache {
            inner: Arc::new(ResidentInner {
                dir: dir.map(Path::to_path_buf),
                ..ResidentInner::default()
            }),
        }
    }

    /// The backing directory, if the cache writes through to disk.
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// How many payloads are resident right now (the daemon's summary
    /// line reports this).
    pub fn entries(&self) -> usize {
        self.lock_map().len()
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, String>> {
        self.inner.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, name: &str) -> Option<String> {
        self.lock_map().get(name).cloned()
    }

    fn put(&self, name: &str, payload: &str) {
        self.lock_map()
            .insert(name.to_string(), payload.to_string());
    }

    fn remove(&self, name: &str) {
        self.lock_map().remove(name);
    }

    /// Blocks until this process's writer gate is free, then takes it.
    /// Bounded wait: holders only ever run an index/manifest update.
    fn acquire_gate(&self) {
        let mut held = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
        while *held {
            held = self
                .inner
                .gate_cv
                .wait(held)
                .unwrap_or_else(|e| e.into_inner());
        }
        *held = true;
    }

    fn release_gate(&self) {
        *self.inner.gate.lock().unwrap_or_else(|e| e.into_inner()) = false;
        self.inner.gate_cv.notify_one();
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// What the storage layer observed during one session — the durability
/// counters surfaced on the `titanc: cache:` accounting line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Files whose checksum, decode, or IL verification failed.
    pub corrupt: usize,
    /// Corrupt files successfully moved aside (or deleted) so they are
    /// never re-read.
    pub quarantined: usize,
    /// Times the advisory writer lock could not be acquired in time and
    /// derived files (index, manifest) were skipped.
    pub lock_contended: usize,
    /// Files that could not be published (write or rename failure).
    pub write_failed: usize,
}

/// A hardened handle on one cache directory. All session cache IO goes
/// through here; see the module docs for the guarantees.
pub(crate) struct CacheStore {
    dir: PathBuf,
    /// False for a pure in-memory resident store — every disk
    /// interaction (reads, publishes, the lock file) is skipped.
    disk: bool,
    /// False when the directory belongs to another format version —
    /// every read misses and every write is skipped.
    enabled: bool,
    /// The shared in-memory layer, when this store belongs to a compile
    /// server. Reads hit it first; publishes write through it.
    resident: Option<ResidentCache>,
    /// The one-shot remark explaining a disabled store.
    format_warning: Option<String>,
    /// Durability counters for the session accounting line.
    pub(crate) stats: StoreStats,
    /// First write failure, for the surfaced warning (the counter has
    /// the total; repeating the message per entry would be noise).
    first_write_error: Option<String>,
}

impl CacheStore {
    /// Opens (creating if needed) a cache directory, validating its
    /// format marker. A directory written by another format — or a
    /// pre-v3 directory with no marker but existing entries — disables
    /// the store for the whole session: the compile proceeds cold and
    /// one remark explains why. Never an error.
    pub(crate) fn open(dir: &Path) -> CacheStore {
        let mut store = CacheStore {
            dir: dir.to_path_buf(),
            disk: true,
            enabled: false,
            resident: None,
            format_warning: None,
            stats: StoreStats::default(),
            first_write_error: None,
        };
        if let Err(e) = fs::create_dir_all(dir) {
            store.note_write_failure(&format!("cannot create cache directory: {e}"));
            return store;
        }
        match faulty_read(&dir.join(MARKER_FILE)) {
            Ok(bytes) => match String::from_utf8(bytes) {
                Ok(text) if text.trim() == CACHE_FORMAT => store.enabled = true,
                Ok(text) => {
                    store.format_warning = Some(format!(
                        "cache directory `{}` has format `{}` but this compiler writes \
                         `{CACHE_FORMAT}`; compiling cold (clear the directory to re-enable)",
                        dir.display(),
                        text.trim().escape_default(),
                    ));
                }
                Err(_) => {
                    store.format_warning = Some(format!(
                        "cache directory `{}` has an unreadable format marker; compiling cold \
                         (clear the directory to re-enable)",
                        dir.display(),
                    ));
                }
            },
            Err(_) => {
                // no readable marker: adopt an empty directory, refuse a
                // populated one (it predates the marker — a v2-era cache)
                if store.has_entries() {
                    store.format_warning = Some(format!(
                        "cache directory `{}` predates {CACHE_FORMAT} (no format marker); \
                         compiling cold (clear the directory to re-enable)",
                        dir.display(),
                    ));
                } else if store.publish_raw(MARKER_FILE, format!("{CACHE_FORMAT}\n").as_bytes()) {
                    store.enabled = true;
                }
                // publish failure already counted write_failed; the
                // store stays disabled for this run
            }
        }
        store
    }

    /// Opens a store against the compile server's resident layer: disk
    /// semantics (format marker, write-through, the advisory lock) come
    /// from the layer's backing directory when it has one; without a
    /// directory the store is purely in-memory and always enabled.
    pub(crate) fn open_resident(resident: &ResidentCache) -> CacheStore {
        match resident.dir() {
            Some(dir) => {
                let mut store = CacheStore::open(dir);
                store.resident = Some(resident.clone());
                store
            }
            None => CacheStore {
                dir: PathBuf::new(),
                disk: false,
                enabled: true,
                resident: Some(resident.clone()),
                format_warning: None,
                stats: StoreStats::default(),
                first_write_error: None,
            },
        }
    }

    /// True when reads and writes are live (format marker matched).
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The remark explaining a disabled store, if any.
    pub(crate) fn format_warning(&self) -> Option<&str> {
        self.format_warning.as_deref()
    }

    /// The first write failure's rendering, for the surfaced warning.
    pub(crate) fn first_write_error(&self) -> Option<&str> {
        self.first_write_error.as_deref()
    }

    /// Any top-level `*.json` file means the directory holds (pre-v3)
    /// cache state we must not misread or clobber.
    fn has_entries(&self) -> bool {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return true; // unreadable: assume occupied, stay disabled
        };
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|name| name.ends_with(".json"))
        })
    }

    /// Reads and unseals `name`. The resident map is consulted first —
    /// its payloads already passed the checksum on the way in. On disk,
    /// a missing file (or an I/O error — the bytes may be fine, the
    /// read wasn't) is a plain miss; an envelope that fails the format
    /// or checksum is quarantined and counted. Disk hits populate the
    /// resident map so the next request never touches the file.
    pub(crate) fn read(&mut self, name: &str) -> Option<String> {
        if !self.enabled {
            return None;
        }
        if let Some(resident) = &self.resident {
            if let Some(payload) = resident.get(name) {
                return Some(payload);
            }
        }
        if !self.disk {
            return None;
        }
        let bytes = faulty_read(&self.dir.join(name)).ok()?;
        match unseal(&bytes) {
            Some(payload) => {
                if let Some(resident) = &self.resident {
                    resident.put(name, &payload);
                }
                Some(payload)
            }
            None => {
                self.quarantine(name);
                None
            }
        }
    }

    /// Seals `payload` and publishes it atomically under `name`:
    /// temp-file in the cache directory, fsync, rename into place, then
    /// a best-effort directory fsync so the rename itself is durable.
    /// Failures are counted (and the first is kept for the warning);
    /// the temp file is removed on any failure path. With a resident
    /// layer the payload also lands in the shared map — but only after
    /// the disk accepted it, so memory and disk never disagree about
    /// what was published.
    pub(crate) fn publish(&mut self, name: &str, payload: &str) -> bool {
        if !self.enabled {
            return false;
        }
        let ok = !self.disk || self.publish_raw(name, seal(payload).as_bytes());
        if ok {
            if let Some(resident) = &self.resident {
                resident.put(name, payload);
            }
        }
        ok
    }

    /// The atomic write-fsync-rename sequence, used both for sealed
    /// payloads and the raw format marker.
    fn publish_raw(&mut self, name: &str, bytes: &[u8]) -> bool {
        let tmp = self.dir.join(format!(
            ".tmp-{name}-{}-{}",
            std::process::id(),
            next_unique()
        ));
        if let Err(e) = faulty_write_sync(&tmp, bytes) {
            let _ = fs::remove_file(&tmp);
            self.note_write_failure(&format!("cannot write `{name}`: {e}"));
            return false;
        }
        if let Err(e) = faulty_rename(&tmp, &self.dir.join(name)) {
            let _ = fs::remove_file(&tmp);
            self.note_write_failure(&format!("cannot publish `{name}`: {e}"));
            return false;
        }
        // make the rename durable, not just atomic
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        true
    }

    fn note_write_failure(&mut self, why: &str) {
        self.stats.write_failed += 1;
        if self.first_write_error.is_none() {
            self.first_write_error = Some(why.to_string());
        }
    }

    /// Moves `name` into `quarantine/` (counting it corrupt) so the bad
    /// bytes are preserved but never re-read. Falls back to deletion if
    /// the move fails; if even that fails, the file stays and will be
    /// re-detected next run.
    pub(crate) fn quarantine(&mut self, name: &str) {
        self.stats.corrupt += 1;
        if let Some(resident) = &self.resident {
            resident.remove(name);
        }
        if !self.disk {
            // eviction from the map *is* the quarantine: the bad bytes
            // are gone and can never be re-read
            self.stats.quarantined += 1;
            return;
        }
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let dest = qdir.join(format!("{name}.{}.{}", std::process::id(), next_unique()));
        let src = self.dir.join(name);
        if fs::rename(&src, &dest).is_ok() || fs::remove_file(&src).is_ok() {
            self.stats.quarantined += 1;
        }
    }

    /// Acquires the advisory writer lock, waiting up to the retry
    /// budget and breaking locks older than [`LOCK_STALE_AFTER`].
    /// `None` (counted as contention) means the caller must skip
    /// derived-file updates rather than risk interleaving them.
    ///
    /// Two races in the original scheme are closed here:
    ///
    /// * **Double stale-break.** Two contenders could both observe a
    ///   stale lock and both `remove_file` it — the second removal
    ///   landing *after* the first contender re-acquired via
    ///   `create_new`, deleting the new holder's lock and letting a
    ///   third contender in. Stale locks are now broken by **renaming**
    ///   the file to a contender-unique grave name: the rename succeeds
    ///   for exactly one contender, and nothing on the break path ever
    ///   deletes the live `.lock` path.
    /// * **Cross-holder release.** Every acquisition writes an identity
    ///   token (pid + random cookie) into the lock file, and
    ///   [`StoreLock::drop`] verifies the file still carries *its* token
    ///   before removing it — a holder that was displaced by a stale
    ///   break cannot delete its successor's lock.
    ///
    /// Stores attached to a [`ResidentCache`] first serialize on the
    /// in-process writer gate (blocking, no budget — the critical
    /// section is a bounded index/manifest update), so the on-disk
    /// retry budget is spent only on genuine cross-process contention.
    pub(crate) fn lock(&mut self) -> Option<StoreLock> {
        if !self.enabled {
            return None;
        }
        let gate = self.resident.clone();
        if let Some(g) = &gate {
            g.acquire_gate();
        }
        if !self.disk {
            return Some(StoreLock {
                path: None,
                token: String::new(),
                gate,
            });
        }
        let path = self.dir.join(LOCK_FILE);
        let token = format!("{}:{:016x}", std::process::id(), lock_cookie());
        for _ in 0..LOCK_RETRIES {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    // the token lands (and syncs) before this holder does
                    // any work: a contender that later verifies content
                    // can only match if the file really is still ours
                    let _ = file.write_all(token.as_bytes());
                    let _ = file.sync_all();
                    return Some(StoreLock {
                        path: Some(path),
                        token,
                        gate,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        break_stale_lock(&self.dir, &path);
                    } else {
                        std::thread::sleep(LOCK_RETRY_SLEEP);
                    }
                }
                Err(_) => break, // directory vanished or is unwritable
            }
        }
        if let Some(g) = &gate {
            g.release_gate();
        }
        self.stats.lock_contended += 1;
        None
    }
}

/// True when the lock file's age says its holder died.
fn lock_is_stale(path: &Path) -> bool {
    fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > LOCK_STALE_AFTER)
}

/// Breaks a stale lock by renaming it to a contender-unique grave name.
/// Exactly one contender's rename succeeds (the rest fail with
/// `NotFound` and simply retry `create_new`), and the live `.lock` path
/// is never deleted — so a break winner that re-acquires can no longer
/// lose its fresh lock to a slower second breaker.
fn break_stale_lock(dir: &Path, path: &Path) {
    let grave = dir.join(format!(
        ".lock-break-{}-{}",
        std::process::id(),
        next_unique()
    ));
    if fs::rename(path, &grave).is_err() {
        return; // another contender won the break; just retry
    }
    // paranoia: re-check the age of what the rename actually grabbed.
    // If the stale holder released and a live contender re-created the
    // lock between the staleness check and the rename, this grabbed a
    // *live* lock — put it back (best-effort: if the path was re-taken
    // in the meantime, the displaced holder's token-guarded drop keeps
    // the damage to one extra contention round).
    if lock_is_stale(&grave) || fs::rename(&grave, path).is_err() {
        let _ = fs::remove_file(&grave);
    }
}

/// Holds the advisory writer lock; dropping it releases the in-process
/// gate and removes the lock file — but only after verifying the file
/// still contains this acquisition's identity token. After a stale
/// break the path may belong to a new holder; deleting it blindly would
/// hand a third contender a second "exclusive" acquisition. (The
/// verify-then-remove pair is not atomic, but the remaining window
/// requires this holder to *also* be declared stale inside those few
/// microseconds — the token check shrinks the exposure from the whole
/// holder lifetime to that one syscall gap.)
pub(crate) struct StoreLock {
    /// `None` for a pure in-memory store (gate only, no lock file).
    path: Option<PathBuf>,
    /// `pid:cookie`, written at acquisition.
    token: String,
    /// The resident layer whose writer gate this lock holds, if any.
    gate: Option<ResidentCache>,
}

impl StoreLock {
    /// The identity token written into the lock file at acquisition
    /// (empty for a pure in-memory store).
    #[cfg(test)]
    pub(crate) fn token(&self) -> &str {
        &self.token
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            if fs::read_to_string(path).is_ok_and(|content| content == self.token) {
                let _ = fs::remove_file(path);
            }
        }
        if let Some(gate) = &self.gate {
            gate.release_gate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("titanc-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seal_round_trips_and_detects_damage() {
        let payload = r#"{"version":1,"data":[1,2,3]}"#;
        let sealed = seal(payload);
        assert_eq!(unseal(sealed.as_bytes()).as_deref(), Some(payload));

        // flip one payload byte
        let mut bytes = sealed.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        assert_eq!(unseal(&bytes), None);

        // truncate mid-payload
        assert_eq!(unseal(&sealed.as_bytes()[..sealed.len() / 2]), None);

        // wrong format name
        let skewed = sealed.replace(CACHE_FORMAT, "titanc-cache-v2");
        assert_eq!(unseal(skewed.as_bytes()), None);

        // not UTF-8 at all
        assert_eq!(unseal(&[0xFF, 0xFE, b'\n', b'x']), None);
        // empty and header-only
        assert_eq!(unseal(b""), None);
        assert_eq!(unseal(format!("{CACHE_FORMAT} zz\n").as_bytes()), None);
    }

    #[test]
    fn fault_spec_parses_the_env_syntax() {
        let spec =
            IoFaultSpec::parse("read:fail:0.5, write:truncate:0.25,rename:delay:1.0,seed:99")
                .expect("valid spec");
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.rules[0], (IoOp::Read, FaultMode::Fail, 0.5));
        assert_eq!(spec.rules[1], (IoOp::Write, FaultMode::Truncate, 0.25));
        assert_eq!(spec.rules[2], (IoOp::Rename, FaultMode::Delay, 1.0));

        assert!(IoFaultSpec::parse("read:fail:2.0").is_err());
        assert!(IoFaultSpec::parse("chmod:fail:0.5").is_err());
        assert!(IoFaultSpec::parse("read:explode:0.5").is_err());
        assert!(IoFaultSpec::parse("read:fail:0.5:extra").is_err());
        assert!(IoFaultSpec::parse("seed:notanumber").is_err());
        assert!(IoFaultSpec::parse("").expect("empty ok").rules.is_empty());
    }

    #[test]
    fn publish_then_read_round_trips() {
        let dir = scratch("roundtrip");
        let mut store = CacheStore::open(&dir);
        assert!(store.enabled(), "fresh directory must adopt the format");
        assert!(store.publish("entry.json", "{\"k\":1}"));
        assert_eq!(store.read("entry.json").as_deref(), Some("{\"k\":1}"));
        assert_eq!(store.stats, StoreStats::default());
        // no temp litter after a clean publish
        let litter = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(litter, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_and_miss() {
        let dir = scratch("quarantine");
        let mut store = CacheStore::open(&dir);
        assert!(store.publish("entry.json", "payload"));
        // flip a byte on disk
        let path = dir.join("entry.json");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(store.read("entry.json"), None);
        assert_eq!(store.stats.corrupt, 1);
        assert_eq!(store.stats.quarantined, 1);
        assert!(!path.exists(), "the corrupt file must be moved aside");
        assert!(
            fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().count() == 1,
            "the bad bytes are preserved in quarantine/"
        );
        // a second read is a plain miss, not a second quarantine
        assert_eq!(store.read("entry.json"), None);
        assert_eq!(store.stats.corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skewed_directories_are_refused_cleanly() {
        let dir = scratch("skew");
        fs::create_dir_all(&dir).unwrap();
        // a v2-era directory: entries, no marker
        fs::write(dir.join("index.json"), "{\"procs\":{}}").unwrap();
        let mut store = CacheStore::open(&dir);
        assert!(!store.enabled());
        assert!(store.format_warning().is_some());
        assert_eq!(store.read("index.json"), None, "disabled stores miss");
        assert!(!store.publish("x.json", "y"), "disabled stores skip writes");
        assert_eq!(store.stats, StoreStats::default());
        assert!(
            dir.join("index.json").exists(),
            "foreign files are left untouched"
        );

        // an explicit future-format marker is refused the same way
        let dir2 = scratch("skew2");
        fs::create_dir_all(&dir2).unwrap();
        fs::write(dir2.join(MARKER_FILE), "titanc-cache-v9\n").unwrap();
        let store2 = CacheStore::open(&dir2);
        assert!(!store2.enabled());
        assert!(store2.format_warning().unwrap().contains("titanc-cache-v9"));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn lock_is_exclusive_and_contention_is_counted() {
        let dir = scratch("lock");
        let mut store = CacheStore::open(&dir);
        let held = store.lock().expect("first lock acquires");
        // a second store on the same directory cannot acquire while held
        let mut contender = CacheStore::open(&dir);
        assert!(contender.lock().is_none());
        assert_eq!(contender.stats.lock_contended, 1);
        drop(held);
        assert!(store.lock().is_some(), "release makes it acquirable again");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The lock-race stress: every round plants a pre-aged stale lock
    /// file, then N threads hammer `lock()` against it. A shared atomic
    /// asserts at most one holder exists at any instant (the old
    /// double-`remove_file` stale break let two contenders both
    /// "exclusively" acquire), and each holder re-reads the lock file
    /// while holding to assert its identity token is still there (the
    /// old unconditional `Drop` could delete a successor's lock).
    #[test]
    fn lock_stress_single_holder_and_no_foreign_release() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        const THREADS: usize = 8;
        const ROUNDS: usize = 12;

        let dir = scratch("lock-stress");
        fs::create_dir_all(&dir).unwrap();
        let lock_path = dir.join(LOCK_FILE);

        // plant one pre-aged stale lock; false if mtimes can't be set
        let plant_stale = |path: &Path| -> bool {
            fs::write(path, "0:000000000000dead").unwrap();
            let old = std::time::SystemTime::now() - (LOCK_STALE_AFTER + Duration::from_secs(5));
            File::options()
                .write(true)
                .open(path)
                .and_then(|f| f.set_modified(old))
                .is_ok()
        };
        if !plant_stale(&lock_path) {
            // the filesystem refuses backdated mtimes; the stale-break
            // path cannot be exercised here
            let _ = fs::remove_dir_all(&dir);
            return;
        }

        let holders = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        let acquired = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS + 1);

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        barrier.wait(); // the stale lock is planted
                        let mut store = CacheStore::open(&dir);
                        if let Some(held) = store.lock() {
                            acquired.fetch_add(1, Ordering::SeqCst);
                            // exclusivity: nobody else may hold right now
                            if holders.fetch_add(1, Ordering::SeqCst) != 0 {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                            // identity: the on-disk lock is still ours…
                            let read = fs::read_to_string(&lock_path).unwrap_or_default();
                            if read != held.token {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                            std::thread::sleep(Duration::from_millis(1));
                            // …and stayed ours for the whole hold
                            let read = fs::read_to_string(&lock_path).unwrap_or_default();
                            if read != held.token {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                            holders.fetch_sub(1, Ordering::SeqCst);
                            drop(held);
                        }
                        barrier.wait(); // round complete
                    }
                });
            }
            for round in 0..ROUNDS {
                if round > 0 {
                    plant_stale(&lock_path);
                }
                barrier.wait(); // release the contenders
                barrier.wait(); // wait for every contender to finish
            }
        });

        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "lock exclusivity or identity violated under stale-break races"
        );
        assert!(
            acquired.load(Ordering::SeqCst) > 0,
            "the stress must exercise real acquisitions"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_spares_a_lock_file_it_no_longer_owns() {
        let dir = scratch("lock-foreign-drop");
        fs::create_dir_all(&dir).unwrap();
        let lock_path = dir.join(LOCK_FILE);

        let mut store = CacheStore::open(&dir);
        let held = store.lock().expect("uncontended lock must acquire");

        // simulate a stale break + re-acquire by another process: the
        // path now belongs to a different holder's token
        let foreign = "999999:00000000c0ffee00";
        fs::write(&lock_path, foreign).unwrap();

        drop(held); // must verify the token and leave the file alone

        assert_eq!(
            fs::read_to_string(&lock_path).as_deref().ok(),
            Some(foreign),
            "drop removed a lock file owned by another acquisition"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_layer_serves_hits_without_disk_and_writes_through() {
        let dir = scratch("resident");
        let resident = ResidentCache::new(Some(&dir));
        let mut store = CacheStore::open_resident(&resident);
        assert!(store.enabled());
        assert!(store.publish("entry.json", "payload"));
        assert_eq!(resident.entries(), 1);

        // write-through: a plain (non-resident) store sees the entry…
        let mut oneshot = CacheStore::open(&dir);
        assert_eq!(oneshot.read("entry.json").as_deref(), Some("payload"));

        // …and the resident map survives disk loss (hits come from memory)
        fs::remove_file(dir.join("entry.json")).unwrap();
        let mut second = CacheStore::open_resident(&resident);
        assert_eq!(second.read("entry.json").as_deref(), Some("payload"));

        // a disk entry published by a one-shot process is adopted into
        // the map on first read
        assert!(oneshot.publish("other.json", "from-oneshot"));
        assert_eq!(second.read("other.json").as_deref(), Some("from-oneshot"));
        assert_eq!(resident.entries(), 2);

        // a pure in-memory cache needs no directory at all
        let mem = ResidentCache::new(None);
        let mut memstore = CacheStore::open_resident(&mem);
        assert!(memstore.enabled());
        assert!(memstore.publish("x.json", "y"));
        assert_eq!(memstore.read("x.json").as_deref(), Some("y"));
        assert!(memstore.lock().is_some(), "memory stores lock on the gate");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_broken() {
        let dir = scratch("stale-lock");
        let mut store = CacheStore::open(&dir);
        // simulate a dead holder: a lock file older than the stale bound
        let lock_path = dir.join(LOCK_FILE);
        fs::write(&lock_path, "0").unwrap();
        let old = std::time::SystemTime::now() - (LOCK_STALE_AFTER + Duration::from_secs(5));
        let file = File::options().write(true).open(&lock_path).unwrap();
        if file.set_modified(old).is_ok() {
            assert!(store.lock().is_some(), "a stale lock must be broken");
            assert_eq!(store.stats.lock_contended, 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
