//! Hardened on-disk storage for the persistent compilation cache.
//!
//! The cache in [`crate::session`] is an accelerator, never a
//! correctness risk — but that contract only holds if every on-disk
//! interaction degrades to a cold compile instead of a crash, a torn
//! file, or (worst of all) silently replaying wrong IL. [`CacheStore`]
//! is the single point through which all cache bytes flow, and it
//! enforces four properties:
//!
//! * **Atomic publish.** Every file is written to a temporary name in
//!   the cache directory, fsynced, and renamed into place. Readers
//!   never observe a half-written entry; a crash mid-write leaves at
//!   worst an orphaned `.tmp-*` file.
//! * **Checksummed envelopes.** Every file starts with a one-line
//!   header — the format name and a 128-bit FNV-1a digest of the
//!   payload — so a bit flip, truncation, or encoding skew is detected
//!   before the payload is parsed, not after it has been trusted.
//! * **Quarantine-and-miss.** A file that fails the checksum (or
//!   decodes to something the IL verifier rejects) is moved into a
//!   `quarantine/` subdirectory and treated as a miss. The bad bytes
//!   are preserved for post-mortem instead of being re-read forever or
//!   silently deleted.
//! * **Advisory single-writer locking.** Concurrent `titanc` processes
//!   sharing one `--cache-dir` serialize their index/manifest updates
//!   through a lock file (atomically created with `create_new`). A
//!   holder that died is detected by age and the lock is broken;
//!   a contender that cannot acquire the lock in time skips the
//!   derived files (they are advisory) rather than torn-writing them.
//!
//! The store also hosts the `TITANC_INJECT_IO` fault hook (a sibling of
//! `TITANC_INJECT_PANIC`): reads, writes, and renames can be made to
//! fail, truncate, or delay with a configured probability, either from
//! the environment or programmatically via [`install_io_faults`] — the
//! lever the `stress --cache-faults` differential harness uses to prove
//! the degradation paths.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use titanc_il::{StableHash, StableHasher};

/// On-disk cache format name. Written to the directory's `FORMAT`
/// marker and prefixed to every envelope header; folded into every
/// content hash so a format change invalidates wholesale. Bumped to v3
/// when entries gained checksummed envelopes (a v2-era directory has
/// no marker and is refused cleanly — one remark, cold compile), and to
/// v4 when per-procedure keys switched from the whole-program hash to
/// inline dependency cones and `InlineEvent` gained its site ordinal —
/// a v3-era directory's marker names another version and is refused
/// the same way.
pub(crate) const CACHE_FORMAT: &str = "titanc-cache-v4";

/// The directory-level format marker file.
const MARKER_FILE: &str = "FORMAT";
/// The advisory writer lock file.
const LOCK_FILE: &str = ".lock";
/// Where corrupt files are preserved for post-mortem.
const QUARANTINE_DIR: &str = "quarantine";
/// Lock acquisition budget: retries × sleep ≈ 250 ms, far longer than
/// an index/manifest update takes, so a healthy contender always wins.
const LOCK_RETRIES: u32 = 50;
/// Sleep between lock attempts.
const LOCK_RETRY_SLEEP: Duration = Duration::from_millis(5);
/// A lock file older than this belongs to a dead process; break it.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------
// IO fault injection (`TITANC_INJECT_IO`)
// ---------------------------------------------------------------------

/// Which file operation a fault rule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoOp {
    /// Reading a cache file.
    Read,
    /// Writing a temporary file (the first half of a publish).
    Write,
    /// Renaming a temporary file into place (the second half).
    Rename,
}

/// What an injected fault does to the operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// The operation fails with an I/O error.
    Fail,
    /// Reads return half the bytes; writes persist half the bytes but
    /// *report success* — a torn write, the nastiest real-world case.
    /// On a rename, truncation degrades to [`FaultMode::Fail`].
    Truncate,
    /// The operation sleeps briefly first (widens race windows).
    Delay,
}

/// A fault-injection profile: rules matched per operation, each firing
/// with its own probability from a deterministic per-decision PRNG.
///
/// Parsed from `TITANC_INJECT_IO` (see [`IoFaultSpec::parse`]) or built
/// programmatically and installed with [`install_io_faults`].
#[derive(Clone, Debug, Default)]
pub struct IoFaultSpec {
    rules: Vec<(IoOp, FaultMode, f64)>,
    seed: u64,
}

impl IoFaultSpec {
    /// An empty spec (no faults) with the given PRNG seed.
    pub fn new(seed: u64) -> IoFaultSpec {
        IoFaultSpec {
            rules: Vec::new(),
            seed,
        }
    }

    /// Adds a rule: `op` suffers `mode` with probability `prob` (0–1).
    /// Rules are tried in insertion order; the first that fires wins.
    pub fn rule(mut self, op: IoOp, mode: FaultMode, prob: f64) -> IoFaultSpec {
        self.rules.push((op, mode, prob.clamp(0.0, 1.0)));
        self
    }

    /// Parses the `TITANC_INJECT_IO` syntax: comma-separated
    /// `op:mode:prob` rules plus an optional `seed:N`, e.g.
    ///
    /// ```text
    /// TITANC_INJECT_IO="read:fail:0.05,write:truncate:0.1,rename:fail:0.2,seed:42"
    /// ```
    ///
    /// Operations are `read`, `write`, `rename`; modes are `fail`,
    /// `truncate`, `delay`; probabilities are decimal in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(s: &str) -> Result<IoFaultSpec, String> {
        let mut spec = IoFaultSpec::new(0x10_FA_17);
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed:") {
                spec.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed in `{clause}`"))?;
                continue;
            }
            let mut parts = clause.split(':');
            let (op, mode, prob) = (parts.next(), parts.next(), parts.next());
            if parts.next().is_some() {
                return Err(format!("too many `:` in `{clause}`"));
            }
            let op = match op {
                Some("read") => IoOp::Read,
                Some("write") => IoOp::Write,
                Some("rename") => IoOp::Rename,
                _ => return Err(format!("unknown operation in `{clause}`")),
            };
            let mode = match mode {
                Some("fail") => FaultMode::Fail,
                Some("truncate") => FaultMode::Truncate,
                Some("delay") => FaultMode::Delay,
                _ => return Err(format!("unknown mode in `{clause}`")),
            };
            let prob: f64 = prob
                .and_then(|p| p.parse().ok())
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("bad probability in `{clause}`"))?;
            spec.rules.push((op, mode, prob));
        }
        Ok(spec)
    }

    fn from_env() -> Option<IoFaultSpec> {
        let raw = std::env::var("TITANC_INJECT_IO").ok()?;
        match IoFaultSpec::parse(&raw) {
            Ok(spec) if !spec.rules.is_empty() => Some(spec),
            Ok(_) => None,
            Err(why) => {
                eprintln!("titanc: ignoring malformed TITANC_INJECT_IO: {why}");
                None
            }
        }
    }
}

/// Installed spec plus the decision counter that drives its PRNG.
struct FaultState {
    spec: IoFaultSpec,
    counter: u64,
}

fn fault_state() -> &'static Mutex<Option<FaultState>> {
    static STATE: OnceLock<Mutex<Option<FaultState>>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(IoFaultSpec::from_env().map(|spec| FaultState { spec, counter: 0 }))
    })
}

/// Installs (or, with `None`, clears) the process-wide IO fault profile.
///
/// Overrides anything parsed from `TITANC_INJECT_IO`. The state is
/// **process-global**: tests that install faults must serialize against
/// other cache-touching tests in the same binary.
pub fn install_io_faults(spec: Option<IoFaultSpec>) {
    let mut guard = fault_state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = spec.map(|spec| FaultState { spec, counter: 0 });
}

/// One fault decision for `op`: `None` means "perform it for real".
fn decide(op: IoOp) -> Option<FaultMode> {
    let mut guard = fault_state().lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.as_mut()?;
    for &(rule_op, mode, prob) in &state.spec.rules {
        if rule_op != op {
            continue;
        }
        state.counter += 1;
        // splitmix64 finalizer over (seed, decision index): deterministic
        // for a single-threaded run, well-spread, dependency-free
        let mut z = state
            .spec
            .seed
            .wrapping_add(state.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if unit < prob {
            return Some(mode);
        }
    }
    None
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected {what} fault (TITANC_INJECT_IO)"))
}

/// Reads a whole file through the fault layer. Truncation cuts the byte
/// stream in half — exactly what a torn write leaves behind.
fn faulty_read(path: &Path) -> io::Result<Vec<u8>> {
    match decide(IoOp::Read) {
        Some(FaultMode::Fail) => return Err(injected("read")),
        Some(FaultMode::Truncate) => {
            let mut bytes = fs::read(path)?;
            bytes.truncate(bytes.len() / 2);
            return Ok(bytes);
        }
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    fs::read(path)
}

/// Writes and fsyncs through the fault layer. A truncation fault writes
/// half the bytes and **reports success** — the caller's rename then
/// publishes a torn file, which the checksum must catch on read.
fn faulty_write_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    match decide(IoOp::Write) {
        Some(FaultMode::Fail) => return Err(injected("write")),
        Some(FaultMode::Truncate) => {
            file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = file.sync_all();
            return Ok(());
        }
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    file.write_all(bytes)?;
    file.sync_all()
}

/// Renames through the fault layer (truncation degrades to failure —
/// there is no half-rename).
fn faulty_rename(from: &Path, to: &Path) -> io::Result<()> {
    match decide(IoOp::Rename) {
        Some(FaultMode::Fail | FaultMode::Truncate) => return Err(injected("rename")),
        Some(FaultMode::Delay) => std::thread::sleep(Duration::from_millis(1)),
        None => {}
    }
    fs::rename(from, to)
}

// ---------------------------------------------------------------------
// Checksummed envelopes
// ---------------------------------------------------------------------

/// Wraps a payload in the v3 envelope: a `FORMAT <fnv128-hex>` header
/// line, then the payload bytes the digest covers.
fn seal(payload: &str) -> String {
    let mut h = StableHasher::new();
    h.write(payload.as_bytes());
    format!("{CACHE_FORMAT} {}\n{payload}", h.finish().hex())
}

/// Opens an envelope: checks the format name and the payload digest.
/// `None` on any mismatch — wrong format, bad header shape, checksum
/// failure, or non-UTF-8 bytes.
fn unseal(bytes: &[u8]) -> Option<String> {
    let text = String::from_utf8(bytes.to_vec()).ok()?;
    let (header, payload) = text.split_once('\n')?;
    let (format, digest) = header.split_once(' ')?;
    if format != CACHE_FORMAT {
        return None;
    }
    let expected = StableHash::from_hex(digest)?;
    let mut h = StableHasher::new();
    h.write(payload.as_bytes());
    (h.finish() == expected).then(|| payload.to_string())
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// What the storage layer observed during one session — the durability
/// counters surfaced on the `titanc: cache:` accounting line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Files whose checksum, decode, or IL verification failed.
    pub corrupt: usize,
    /// Corrupt files successfully moved aside (or deleted) so they are
    /// never re-read.
    pub quarantined: usize,
    /// Times the advisory writer lock could not be acquired in time and
    /// derived files (index, manifest) were skipped.
    pub lock_contended: usize,
    /// Files that could not be published (write or rename failure).
    pub write_failed: usize,
}

/// A hardened handle on one cache directory. All session cache IO goes
/// through here; see the module docs for the guarantees.
pub(crate) struct CacheStore {
    dir: PathBuf,
    /// False when the directory belongs to another format version —
    /// every read misses and every write is skipped.
    enabled: bool,
    /// The one-shot remark explaining a disabled store.
    format_warning: Option<String>,
    /// Durability counters for the session accounting line.
    pub(crate) stats: StoreStats,
    /// First write failure, for the surfaced warning (the counter has
    /// the total; repeating the message per entry would be noise).
    first_write_error: Option<String>,
    /// Uniquifies quarantine names within one session.
    quarantine_seq: u32,
}

impl CacheStore {
    /// Opens (creating if needed) a cache directory, validating its
    /// format marker. A directory written by another format — or a
    /// pre-v3 directory with no marker but existing entries — disables
    /// the store for the whole session: the compile proceeds cold and
    /// one remark explains why. Never an error.
    pub(crate) fn open(dir: &Path) -> CacheStore {
        let mut store = CacheStore {
            dir: dir.to_path_buf(),
            enabled: false,
            format_warning: None,
            stats: StoreStats::default(),
            first_write_error: None,
            quarantine_seq: 0,
        };
        if let Err(e) = fs::create_dir_all(dir) {
            store.note_write_failure(&format!("cannot create cache directory: {e}"));
            return store;
        }
        match faulty_read(&dir.join(MARKER_FILE)) {
            Ok(bytes) => match String::from_utf8(bytes) {
                Ok(text) if text.trim() == CACHE_FORMAT => store.enabled = true,
                Ok(text) => {
                    store.format_warning = Some(format!(
                        "cache directory `{}` has format `{}` but this compiler writes \
                         `{CACHE_FORMAT}`; compiling cold (clear the directory to re-enable)",
                        dir.display(),
                        text.trim().escape_default(),
                    ));
                }
                Err(_) => {
                    store.format_warning = Some(format!(
                        "cache directory `{}` has an unreadable format marker; compiling cold \
                         (clear the directory to re-enable)",
                        dir.display(),
                    ));
                }
            },
            Err(_) => {
                // no readable marker: adopt an empty directory, refuse a
                // populated one (it predates the marker — a v2-era cache)
                if store.has_entries() {
                    store.format_warning = Some(format!(
                        "cache directory `{}` predates {CACHE_FORMAT} (no format marker); \
                         compiling cold (clear the directory to re-enable)",
                        dir.display(),
                    ));
                } else if store.publish_raw(MARKER_FILE, format!("{CACHE_FORMAT}\n").as_bytes()) {
                    store.enabled = true;
                }
                // publish failure already counted write_failed; the
                // store stays disabled for this run
            }
        }
        store
    }

    /// True when reads and writes are live (format marker matched).
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The remark explaining a disabled store, if any.
    pub(crate) fn format_warning(&self) -> Option<&str> {
        self.format_warning.as_deref()
    }

    /// The first write failure's rendering, for the surfaced warning.
    pub(crate) fn first_write_error(&self) -> Option<&str> {
        self.first_write_error.as_deref()
    }

    /// Any top-level `*.json` file means the directory holds (pre-v3)
    /// cache state we must not misread or clobber.
    fn has_entries(&self) -> bool {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return true; // unreadable: assume occupied, stay disabled
        };
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|name| name.ends_with(".json"))
        })
    }

    /// Reads and unseals `name`. A missing file (or an I/O error — the
    /// bytes may be fine, the read wasn't) is a plain miss; an envelope
    /// that fails the format or checksum is quarantined and counted.
    pub(crate) fn read(&mut self, name: &str) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let bytes = faulty_read(&self.dir.join(name)).ok()?;
        match unseal(&bytes) {
            Some(payload) => Some(payload),
            None => {
                self.quarantine(name);
                None
            }
        }
    }

    /// Seals `payload` and publishes it atomically under `name`:
    /// temp-file in the cache directory, fsync, rename into place, then
    /// a best-effort directory fsync so the rename itself is durable.
    /// Failures are counted (and the first is kept for the warning);
    /// the temp file is removed on any failure path.
    pub(crate) fn publish(&mut self, name: &str, payload: &str) -> bool {
        if !self.enabled {
            return false;
        }
        self.publish_raw(name, seal(payload).as_bytes())
    }

    /// The atomic write-fsync-rename sequence, used both for sealed
    /// payloads and the raw format marker.
    fn publish_raw(&mut self, name: &str, bytes: &[u8]) -> bool {
        let tmp = self.dir.join(format!(
            ".tmp-{name}-{}-{}",
            std::process::id(),
            self.quarantine_seq
        ));
        self.quarantine_seq += 1;
        if let Err(e) = faulty_write_sync(&tmp, bytes) {
            let _ = fs::remove_file(&tmp);
            self.note_write_failure(&format!("cannot write `{name}`: {e}"));
            return false;
        }
        if let Err(e) = faulty_rename(&tmp, &self.dir.join(name)) {
            let _ = fs::remove_file(&tmp);
            self.note_write_failure(&format!("cannot publish `{name}`: {e}"));
            return false;
        }
        // make the rename durable, not just atomic
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        true
    }

    fn note_write_failure(&mut self, why: &str) {
        self.stats.write_failed += 1;
        if self.first_write_error.is_none() {
            self.first_write_error = Some(why.to_string());
        }
    }

    /// Moves `name` into `quarantine/` (counting it corrupt) so the bad
    /// bytes are preserved but never re-read. Falls back to deletion if
    /// the move fails; if even that fails, the file stays and will be
    /// re-detected next run.
    pub(crate) fn quarantine(&mut self, name: &str) {
        self.stats.corrupt += 1;
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let dest = qdir.join(format!(
            "{name}.{}.{}",
            std::process::id(),
            self.quarantine_seq
        ));
        self.quarantine_seq += 1;
        let src = self.dir.join(name);
        if fs::rename(&src, &dest).is_ok() || fs::remove_file(&src).is_ok() {
            self.stats.quarantined += 1;
        }
    }

    /// Acquires the advisory writer lock, waiting up to the retry
    /// budget and breaking locks older than [`LOCK_STALE_AFTER`].
    /// `None` (counted as contention) means the caller must skip
    /// derived-file updates rather than risk interleaving them.
    pub(crate) fn lock(&mut self) -> Option<StoreLock> {
        if !self.enabled {
            return None;
        }
        let path = self.dir.join(LOCK_FILE);
        for _ in 0..LOCK_RETRIES {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Some(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        // the holder died; break the lock and retry now
                        let _ = fs::remove_file(&path);
                    } else {
                        std::thread::sleep(LOCK_RETRY_SLEEP);
                    }
                }
                Err(_) => break, // directory vanished or is unwritable
            }
        }
        self.stats.lock_contended += 1;
        None
    }
}

/// Holds the advisory writer lock; dropping it releases (removes) the
/// lock file.
pub(crate) struct StoreLock {
    path: PathBuf,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("titanc-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seal_round_trips_and_detects_damage() {
        let payload = r#"{"version":1,"data":[1,2,3]}"#;
        let sealed = seal(payload);
        assert_eq!(unseal(sealed.as_bytes()).as_deref(), Some(payload));

        // flip one payload byte
        let mut bytes = sealed.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        assert_eq!(unseal(&bytes), None);

        // truncate mid-payload
        assert_eq!(unseal(&sealed.as_bytes()[..sealed.len() / 2]), None);

        // wrong format name
        let skewed = sealed.replace(CACHE_FORMAT, "titanc-cache-v2");
        assert_eq!(unseal(skewed.as_bytes()), None);

        // not UTF-8 at all
        assert_eq!(unseal(&[0xFF, 0xFE, b'\n', b'x']), None);
        // empty and header-only
        assert_eq!(unseal(b""), None);
        assert_eq!(unseal(format!("{CACHE_FORMAT} zz\n").as_bytes()), None);
    }

    #[test]
    fn fault_spec_parses_the_env_syntax() {
        let spec =
            IoFaultSpec::parse("read:fail:0.5, write:truncate:0.25,rename:delay:1.0,seed:99")
                .expect("valid spec");
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.rules[0], (IoOp::Read, FaultMode::Fail, 0.5));
        assert_eq!(spec.rules[1], (IoOp::Write, FaultMode::Truncate, 0.25));
        assert_eq!(spec.rules[2], (IoOp::Rename, FaultMode::Delay, 1.0));

        assert!(IoFaultSpec::parse("read:fail:2.0").is_err());
        assert!(IoFaultSpec::parse("chmod:fail:0.5").is_err());
        assert!(IoFaultSpec::parse("read:explode:0.5").is_err());
        assert!(IoFaultSpec::parse("read:fail:0.5:extra").is_err());
        assert!(IoFaultSpec::parse("seed:notanumber").is_err());
        assert!(IoFaultSpec::parse("").expect("empty ok").rules.is_empty());
    }

    #[test]
    fn publish_then_read_round_trips() {
        let dir = scratch("roundtrip");
        let mut store = CacheStore::open(&dir);
        assert!(store.enabled(), "fresh directory must adopt the format");
        assert!(store.publish("entry.json", "{\"k\":1}"));
        assert_eq!(store.read("entry.json").as_deref(), Some("{\"k\":1}"));
        assert_eq!(store.stats, StoreStats::default());
        // no temp litter after a clean publish
        let litter = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(litter, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_and_miss() {
        let dir = scratch("quarantine");
        let mut store = CacheStore::open(&dir);
        assert!(store.publish("entry.json", "payload"));
        // flip a byte on disk
        let path = dir.join("entry.json");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(store.read("entry.json"), None);
        assert_eq!(store.stats.corrupt, 1);
        assert_eq!(store.stats.quarantined, 1);
        assert!(!path.exists(), "the corrupt file must be moved aside");
        assert!(
            fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().count() == 1,
            "the bad bytes are preserved in quarantine/"
        );
        // a second read is a plain miss, not a second quarantine
        assert_eq!(store.read("entry.json"), None);
        assert_eq!(store.stats.corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skewed_directories_are_refused_cleanly() {
        let dir = scratch("skew");
        fs::create_dir_all(&dir).unwrap();
        // a v2-era directory: entries, no marker
        fs::write(dir.join("index.json"), "{\"procs\":{}}").unwrap();
        let mut store = CacheStore::open(&dir);
        assert!(!store.enabled());
        assert!(store.format_warning().is_some());
        assert_eq!(store.read("index.json"), None, "disabled stores miss");
        assert!(!store.publish("x.json", "y"), "disabled stores skip writes");
        assert_eq!(store.stats, StoreStats::default());
        assert!(
            dir.join("index.json").exists(),
            "foreign files are left untouched"
        );

        // an explicit future-format marker is refused the same way
        let dir2 = scratch("skew2");
        fs::create_dir_all(&dir2).unwrap();
        fs::write(dir2.join(MARKER_FILE), "titanc-cache-v9\n").unwrap();
        let store2 = CacheStore::open(&dir2);
        assert!(!store2.enabled());
        assert!(store2.format_warning().unwrap().contains("titanc-cache-v9"));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn lock_is_exclusive_and_contention_is_counted() {
        let dir = scratch("lock");
        let mut store = CacheStore::open(&dir);
        let held = store.lock().expect("first lock acquires");
        // a second store on the same directory cannot acquire while held
        let mut contender = CacheStore::open(&dir);
        assert!(contender.lock().is_none());
        assert_eq!(contender.stats.lock_contended, 1);
        drop(held);
        assert!(store.lock().is_some(), "release makes it acquirable again");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_broken() {
        let dir = scratch("stale-lock");
        let mut store = CacheStore::open(&dir);
        // simulate a dead holder: a lock file older than the stale bound
        let lock_path = dir.join(LOCK_FILE);
        fs::write(&lock_path, "0").unwrap();
        let old = std::time::SystemTime::now() - (LOCK_STALE_AFTER + Duration::from_secs(5));
        let file = File::options().write(true).open(&lock_path).unwrap();
        if file.set_modified(old).is_ok() {
            assert!(store.lock().is_some(), "a stale lock must be broken");
            assert_eq!(store.stats.lock_contended, 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
