//! Shared helpers for the scalar passes: loop-invariance, copy-chain
//! resolution, and position-aware use replacement.

use titanc_il::{Expr, ExprId, ExprPool, Procedure, StmtId, StmtKind, StmtPool, VarId};

/// True when `v` is a register candidate: scalar, never addressed, not
/// volatile, not static/global. Only these participate in chain-driven
/// rewrites (§1 item 7 conservatism).
pub fn register_candidate(proc: &Procedure, v: VarId) -> bool {
    let info = proc.var(v);
    info.ty.scalar().is_some()
        && !info.addressed
        && !info.volatile
        && matches!(
            info.storage,
            titanc_il::Storage::Auto | titanc_il::Storage::Param | titanc_il::Storage::Temp
        )
}

/// True when some statement in `block` (recursively) defines `v`.
pub fn defined_in(pool: &StmtPool, block: &[StmtId], v: VarId) -> bool {
    block.iter().any(|&s| {
        pool[s].defined_var() == Some(v) || pool[s].blocks().iter().any(|b| defined_in(pool, b, v))
    })
}

/// True when `e` is invariant with respect to `body`: it reads no memory,
/// and every variable it reads is a register candidate with no definition
/// inside `body`.
pub fn invariant_in(proc: &Procedure, body: &[StmtId], e: ExprId) -> bool {
    if proc.exprs.has_load(e) || proc.exprs.has_section(e) {
        return false;
    }
    proc.exprs
        .vars_read(e)
        .iter()
        .all(|&v| register_candidate(proc, v) && !defined_in(&proc.stmts, body, v))
}

/// Resolves `w` backwards through top-level copies to an "origin" variable,
/// looking at statements `body[..pos]` in reverse: a copy `w = u` passes
/// the search to `u` provided neither `w` nor `u` is redefined in between.
/// Returns the origin (possibly `w` itself).
pub fn resolve_copy(proc: &Procedure, body: &[StmtId], pos: usize, w: VarId) -> VarId {
    if !register_candidate(proc, w) {
        return w;
    }
    let pool = &proc.stmts;
    let mut target = w;
    let mut limit = pos;
    // walk backwards looking for the most recent def of `target`
    'outer: loop {
        for i in (0..limit).rev() {
            let s = body[i];
            // a nested def anywhere kills resolution (conditional def)
            if pool[s].blocks().iter().any(|b| defined_in(pool, b, target)) {
                return target;
            }
            if pool[s].defined_var() == Some(target) {
                if let StmtKind::Assign { rhs, .. } = &pool[s] {
                    if let Expr::Var(u) = proc.exprs[*rhs] {
                        if u != target && register_candidate(proc, u) {
                            // ensure u not redefined between i+1..pos
                            let redefined = body[i + 1..pos].iter().any(|&t| {
                                pool[t].defined_var() == Some(u)
                                    || pool[t].blocks().iter().any(|b| defined_in(pool, b, u))
                            });
                            if !redefined {
                                target = u;
                                limit = i;
                                continue 'outer;
                            }
                        }
                    }
                }
                return target;
            }
        }
        return target;
    }
}

/// Replaces every read of `v` in the statement tree at `s` (including
/// nested blocks) with a deep copy of the subtree at `replacement`;
/// returns replacements made.
pub fn replace_reads(
    stmts: &StmtPool,
    exprs: &mut ExprPool,
    s: StmtId,
    v: VarId,
    replacement: ExprId,
) -> usize {
    let mut n = 0;
    for e in stmts[s].exprs() {
        n += exprs.substitute_var(e, v, replacement);
    }
    for b in stmts[s].blocks() {
        for &inner in b {
            n += replace_reads(stmts, exprs, inner, v, replacement);
        }
    }
    n
}

/// Counts reads of `v` in a statement tree.
pub fn count_reads(stmts: &StmtPool, exprs: &ExprPool, s: StmtId, v: VarId) -> usize {
    let mut n = 0;
    for e in stmts[s].exprs() {
        n += exprs.vars_read(e).iter().filter(|&&w| w == v).count();
    }
    for b in stmts[s].blocks() {
        for &inner in b {
            n += count_reads(stmts, exprs, inner, v);
        }
    }
    n
}

/// Counts reads of `v` across a block.
pub fn count_reads_block(stmts: &StmtPool, exprs: &ExprPool, block: &[StmtId], v: VarId) -> usize {
    block.iter().map(|&s| count_reads(stmts, exprs, s, v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{BinOp, LValue, ProcBuilder, Type};

    #[test]
    fn invariance_basic() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let y = b.local("y", Type::Int);
        let zero = b.int(0);
        b.assign_var(y, zero);
        let mut p = b.finish();
        // probe expressions allocated after the body exists
        let ex = p.exprs.var(x);
        let ey = p.exprs.var(y);
        let ax = p.exprs.var(x);
        let eload = p.exprs.load(ax, titanc_il::ScalarType::Int);
        let body = p.body.clone(); // contains def of y only
        assert!(invariant_in(&p, &body, ex));
        assert!(!invariant_in(&p, &body, ey));
        assert!(!invariant_in(&p, &body, eload));
    }

    #[test]
    fn resolve_through_single_copy() {
        // temp = i; i2 = temp - 1  — resolving temp at pos 1 yields i
        let mut b = ProcBuilder::new("t", Type::Void);
        let i = b.local("i", Type::Int);
        let temp = b.local("temp", Type::Int);
        let ei = b.var(i);
        b.assign_var(temp, ei);
        let et = b.var(temp);
        let one = b.int(1);
        let sub = b.ibinary(BinOp::Sub, et, one);
        b.assign_var(i, sub);
        let p = b.finish();
        assert_eq!(resolve_copy(&p, &p.body, 1, temp), i);
    }

    #[test]
    fn resolution_stops_at_interleaved_redefinition() {
        // temp = i; i = 0; use temp at pos 2 — the copy source i was
        // redefined between, so resolution must stop at temp.
        let mut b = ProcBuilder::new("t", Type::Void);
        let i = b.local("i", Type::Int);
        let temp = b.local("temp", Type::Int);
        let ei = b.var(i);
        b.assign_var(temp, ei);
        let zero = b.int(0);
        b.assign_var(i, zero);
        let et = b.var(temp);
        b.assign_var(i, et);
        let p = b.finish();
        assert_eq!(resolve_copy(&p, &p.body, 2, temp), temp);
    }

    #[test]
    fn replace_reads_descends_blocks() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let y = b.local("y", Type::Int);
        let body = {
            let mut lb = b.block();
            let ex = lb.var(x);
            lb.assign_var(y, ex);
            lb.stmts()
        };
        let cond = b.var(x);
        b.if_(cond, body, vec![]);
        let mut p = b.finish();
        let s = p.body[0];
        let three = p.exprs.int(3);
        let n = replace_reads(&p.stmts, &mut p.exprs, s, x, three);
        assert_eq!(n, 2, "cond + nested rhs");
    }

    #[test]
    fn count_reads_counts_duplicates() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let x1 = b.var(x);
        let x2 = b.var(x);
        let add = b.ibinary(BinOp::Add, x1, x2);
        b.assign_var(x, add);
        let p = b.finish();
        assert_eq!(count_reads_block(&p.stmts, &p.exprs, &p.body, x), 2);
    }

    #[test]
    fn addressed_is_not_candidate() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let a = b.local("arr", Type::array_of(Type::Int, 4));
        let v = b.volatile_local("vol", Type::Int);
        let p = {
            let mut p = b.finish();
            p.var_mut(x).addressed = true;
            p
        };
        assert!(!register_candidate(&p, x));
        assert!(!register_candidate(&p, a));
        assert!(!register_candidate(&p, v));
    }

    #[test]
    fn defined_in_sees_nested() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let inner = {
            let mut lb = b.block();
            let one = lb.int(1);
            lb.assign_var(x, one);
            lb.stmts()
        };
        let cond = b.int(1);
        b.while_(cond, inner);
        let p = b.finish();
        assert!(defined_in(&p.stmts, &p.body, x));
        let _ = LValue::Var(x);
    }
}
