//! Shared helpers for the scalar passes: loop-invariance, copy-chain
//! resolution, and position-aware use replacement.

use titanc_il::{Expr, Procedure, Stmt, StmtKind, VarId};

/// True when `v` is a register candidate: scalar, never addressed, not
/// volatile, not static/global. Only these participate in chain-driven
/// rewrites (§1 item 7 conservatism).
pub fn register_candidate(proc: &Procedure, v: VarId) -> bool {
    let info = proc.var(v);
    info.ty.scalar().is_some()
        && !info.addressed
        && !info.volatile
        && matches!(
            info.storage,
            titanc_il::Storage::Auto | titanc_il::Storage::Param | titanc_il::Storage::Temp
        )
}

/// True when some statement in `block` (recursively) defines `v`.
pub fn defined_in(block: &[Stmt], v: VarId) -> bool {
    block
        .iter()
        .any(|s| s.defined_var() == Some(v) || s.blocks().iter().any(|b| defined_in(b, v)))
}

/// True when `e` is invariant with respect to `body`: it reads no memory,
/// and every variable it reads is a register candidate with no definition
/// inside `body`.
pub fn invariant_in(proc: &Procedure, body: &[Stmt], e: &Expr) -> bool {
    if e.has_load() || e.has_section() {
        return false;
    }
    e.vars_read()
        .iter()
        .all(|&v| register_candidate(proc, v) && !defined_in(body, v))
}

/// Resolves `w` backwards through top-level copies to an "origin" variable,
/// looking at statements `body[..pos]` in reverse: a copy `w = u` passes
/// the search to `u` provided neither `w` nor `u` is redefined in between.
/// Returns the origin (possibly `w` itself).
pub fn resolve_copy(proc: &Procedure, body: &[Stmt], pos: usize, w: VarId) -> VarId {
    if !register_candidate(proc, w) {
        return w;
    }
    let mut target = w;
    let mut limit = pos;
    // walk backwards looking for the most recent def of `target`
    'outer: loop {
        for i in (0..limit).rev() {
            let s = &body[i];
            // a nested def anywhere kills resolution (conditional def)
            if s.blocks().iter().any(|b| defined_in(b, target)) {
                return target;
            }
            if s.defined_var() == Some(target) {
                if let StmtKind::Assign {
                    rhs: Expr::Var(u), ..
                } = &s.kind
                {
                    if *u != target && register_candidate(proc, *u) {
                        // ensure u not redefined between i+1..pos
                        let redefined = body[i + 1..pos].iter().any(|t| {
                            t.defined_var() == Some(*u)
                                || t.blocks().iter().any(|b| defined_in(b, *u))
                        });
                        if !redefined {
                            target = *u;
                            limit = i;
                            continue 'outer;
                        }
                    }
                }
                return target;
            }
        }
        return target;
    }
}

/// Replaces every read of `v` in the statement (including nested blocks)
/// with `replacement`; returns replacements made.
pub fn replace_reads(s: &mut Stmt, v: VarId, replacement: &Expr) -> usize {
    let mut n = 0;
    for e in s.exprs_mut() {
        n += e.substitute_var(v, replacement);
    }
    for b in s.blocks_mut() {
        for inner in b {
            n += replace_reads(inner, v, replacement);
        }
    }
    n
}

/// Counts reads of `v` in a statement tree.
pub fn count_reads(s: &Stmt, v: VarId) -> usize {
    let mut n = 0;
    for e in s.exprs() {
        n += e.vars_read().iter().filter(|&&w| w == v).count();
    }
    for b in s.blocks() {
        for inner in b {
            n += count_reads(inner, v);
        }
    }
    n
}

/// Counts reads of `v` across a block.
pub fn count_reads_block(block: &[Stmt], v: VarId) -> usize {
    block.iter().map(|s| count_reads(s, v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{BinOp, LValue, ProcBuilder, Type};

    fn proc_with(body_builder: impl FnOnce(&mut ProcBuilder)) -> Procedure {
        let mut b = ProcBuilder::new("t", Type::Void);
        body_builder(&mut b);
        b.finish()
    }

    #[test]
    fn invariance_basic() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let y = b.local("y", Type::Int);
        b.assign_var(y, Expr::int(0));
        let p = b.finish();
        let body = p.body.clone(); // contains def of y only
        assert!(invariant_in(&p, &body, &Expr::var(x)));
        assert!(!invariant_in(&p, &body, &Expr::var(y)));
        assert!(!invariant_in(
            &p,
            &body,
            &Expr::load(Expr::var(x), titanc_il::ScalarType::Int)
        ));
    }

    #[test]
    fn resolve_through_single_copy() {
        // temp = i; i2 = temp - 1  — resolving temp at pos 1 yields i
        let mut b = ProcBuilder::new("t", Type::Void);
        let i = b.local("i", Type::Int);
        let temp = b.local("temp", Type::Int);
        b.assign_var(temp, Expr::var(i));
        b.assign_var(i, Expr::ibinary(BinOp::Sub, Expr::var(temp), Expr::int(1)));
        let p = b.finish();
        assert_eq!(resolve_copy(&p, &p.body, 1, temp), i);
    }

    #[test]
    fn resolution_stops_at_interleaved_redefinition() {
        // temp = i; i = 0; use temp at pos 2 — temp still resolves to...
        // the copy source i was redefined between, so resolution must stop
        // at temp.
        let mut b = ProcBuilder::new("t", Type::Void);
        let i = b.local("i", Type::Int);
        let temp = b.local("temp", Type::Int);
        b.assign_var(temp, Expr::var(i));
        b.assign_var(i, Expr::int(0));
        b.assign_var(i, Expr::var(temp));
        let p = b.finish();
        assert_eq!(resolve_copy(&p, &p.body, 2, temp), temp);
    }

    #[test]
    fn replace_reads_descends_blocks() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let y = b.local("y", Type::Int);
        let body = {
            let mut lb = b.block();
            lb.assign_var(y, Expr::var(x));
            lb.stmts()
        };
        b.if_(Expr::var(x), body, vec![]);
        let mut p = b.finish();
        let mut s = p.body.remove(0);
        let n = replace_reads(&mut s, x, &Expr::int(3));
        assert_eq!(n, 2, "cond + nested rhs");
    }

    #[test]
    fn count_reads_counts_duplicates() {
        let p = proc_with(|b| {
            let x = b.local("x", Type::Int);
            b.assign_var(x, Expr::ibinary(BinOp::Add, Expr::var(x), Expr::var(x)));
        });
        let x = p.var_by_name("x").unwrap();
        assert_eq!(count_reads_block(&p.body, x), 2);
    }

    #[test]
    fn addressed_is_not_candidate() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let a = b.local("arr", Type::array_of(Type::Int, 4));
        let v = b.volatile_local("vol", Type::Int);
        let p = {
            let mut p = b.finish();
            p.var_mut(x).addressed = true;
            p
        };
        assert!(!register_candidate(&p, x));
        assert!(!register_candidate(&p, a));
        assert!(!register_candidate(&p, v));
    }

    #[test]
    fn defined_in_sees_nested() {
        let mut b = ProcBuilder::new("t", Type::Void);
        let x = b.local("x", Type::Int);
        let inner = {
            let mut lb = b.block();
            lb.assign_var(x, Expr::int(1));
            lb.stmts()
        };
        b.while_(Expr::int(1), inner);
        let p = b.finish();
        assert!(defined_in(&p.body, x));
        let _ = LValue::Var(x);
    }
}
