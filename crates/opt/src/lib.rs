//! # titanc-opt — scalar optimization
//!
//! The scalar optimization pipeline of §5–§8: while→DO conversion,
//! induction-variable substitution with the blocking/backtracking
//! heuristic, forward/copy substitution, constant propagation with the
//! unreachable-code re-seeding heuristic, and dead-code elimination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constprop;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod ivsub;
pub mod util;
pub mod whiledo;

pub use constprop::{
    constant_propagation, constant_propagation_cached, constant_propagation_no_unreachable,
    eliminate_unreachable_cfg, unreachable_postpass, ConstPropReport,
};
pub use cse::{local_cse, CseReport};
pub use dce::{eliminate_dead_code, eliminate_dead_code_cached, DceReport};
pub use forward::{forward_substitute, ForwardReport};
pub use ivsub::{induction_substitution, IvSubReport};
pub use whiledo::{convert_while_loops, convert_while_loops_cached, Reject, WhileDoReport};
