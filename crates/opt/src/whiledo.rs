//! Conversion of `while` loops into Fortran-style DO loops (§5.2).
//!
//! The C front end represents `for` loops as `while` loops, so this
//! conversion is what makes counted C loops eligible for vectorization. It
//! runs *immediately after use–def chains are constructed* and consults the
//! control-flow graph to reject loops that branches enter (§5.2's two
//! stated requirements).
//!
//! A loop converts when its condition compares a register-candidate
//! induction variable against a loop-invariant bound (or tests it against
//! zero, the paper's `i = n; while (i) { … i = temp - s; }` form), and the
//! body advances the variable by a loop-invariant step exactly once per
//! iteration — possibly through the copy temporaries the front end
//! introduces. The body is left untouched: a fresh *dummy* counter drives
//! the iteration, exactly as in the paper's example, and induction-variable
//! substitution plus dead-code elimination subsequently clean up the
//! original variable.
//!
//! Arena discipline: the bound and step expressions referenced by the plan
//! are subtrees of the surviving loop body, so the rewritten `DoLoop`
//! header takes *deep copies* — sharing the slots would let a later body
//! rewrite silently change the header.

use crate::util::{defined_in, invariant_in, register_candidate, resolve_copy};
use titanc_analysis::{loops, Cfg, ProcAnalyses};
use titanc_il::json::{FromJson, Json, JsonError, ToJson};
use titanc_il::{
    BinOp, Block, Expr, ExprId, LValue, LoopDecision, LoopEvent, Procedure, ScalarType, StmtId,
    StmtKind, Type, VarId,
};

/// Why a `while` loop was not converted (the EXP5 coverage table).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reject {
    /// A branch from outside enters the loop body (§5.2 requirement 1).
    BranchInto,
    /// A branch inside the loop leaves it (early exit).
    BranchOut,
    /// The body contains a `return`.
    HasReturn,
    /// The condition reads a volatile object — a true `while` loop (§1).
    VolatileCond,
    /// The condition is not a recognizable iteration test.
    CondForm,
    /// The tested variable is addressed/volatile/global.
    NotCandidate,
    /// No single once-per-iteration step of the tested variable was found.
    NoStep,
    /// The variable is stepped more than once (or conditionally).
    MultipleSteps,
    /// The bound varies inside the loop (§5.2 requirement 2).
    VaryingBound,
    /// The step varies inside the loop.
    VaryingStep,
    /// Step direction can never satisfy the exit test (or `!=` with |step|
    /// ≠ 1, which may step over the bound).
    Direction,
}

impl Reject {
    /// A short human-readable reason, used by loop-level opt reports.
    pub fn describe(self) -> &'static str {
        match self {
            Reject::BranchInto => "branch into loop body",
            Reject::BranchOut => "branch out of loop body",
            Reject::HasReturn => "return inside loop body",
            Reject::VolatileCond => "volatile condition",
            Reject::CondForm => "unrecognized iteration test",
            Reject::NotCandidate => "tested variable not a register candidate",
            Reject::NoStep => "no once-per-iteration step",
            Reject::MultipleSteps => "variable stepped more than once",
            Reject::VaryingBound => "bound varies inside loop",
            Reject::VaryingStep => "step varies inside loop",
            Reject::Direction => "step direction cannot reach bound",
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// Conversion statistics for one procedure.
#[derive(Clone, Debug, Default)]
pub struct WhileDoReport {
    /// Number of loops converted.
    pub converted: usize,
    /// Rejected loops with reasons.
    pub rejects: Vec<(StmtId, Reject)>,
    /// Per-loop decision events (converted / rejected) with source spans.
    pub events: Vec<LoopEvent>,
}

impl WhileDoReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: WhileDoReport) {
        self.converted += other.converted;
        self.rejects.extend(other.rejects);
        self.events.extend(other.events);
    }
}

impl ToJson for Reject {
    fn to_json(&self) -> Json {
        // unit enum: the Debug name doubles as the JSON discriminant
        Json::Str(format!("{self:?}"))
    }
}

impl FromJson for Reject {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        const ALL: [Reject; 11] = [
            Reject::BranchInto,
            Reject::BranchOut,
            Reject::HasReturn,
            Reject::VolatileCond,
            Reject::CondForm,
            Reject::NotCandidate,
            Reject::NoStep,
            Reject::MultipleSteps,
            Reject::VaryingBound,
            Reject::VaryingStep,
            Reject::Direction,
        ];
        let s = v.as_str()?;
        ALL.iter()
            .copied()
            .find(|r| format!("{r:?}") == s)
            .ok_or_else(|| JsonError {
                message: format!("unknown reject `{s}`"),
                offset: 0,
            })
    }
}

impl ToJson for WhileDoReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("converted", self.converted.to_json()),
            (
                "rejects",
                Json::Arr(
                    self.rejects
                        .iter()
                        .map(|(id, r)| Json::Arr(vec![id.to_json(), r.to_json()]))
                        .collect(),
                ),
            ),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for WhileDoReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut rejects = Vec::new();
        for pair in v.field("rejects")?.as_arr()? {
            match pair.as_arr()? {
                [id, r] => rejects.push((StmtId::from_json(id)?, Reject::from_json(r)?)),
                _ => {
                    return Err(JsonError {
                        message: "expected a [stmt, reject] pair".into(),
                        offset: 0,
                    })
                }
            }
        }
        Ok(WhileDoReport {
            converted: usize::from_json(v.field("converted")?)?,
            rejects,
            events: Vec::from_json(v.field("events")?)?,
        })
    }
}

/// Converts every eligible `while` loop of the procedure into a `DoLoop`.
pub fn convert_while_loops(proc: &mut Procedure) -> WhileDoReport {
    convert_while_loops_cached(proc, &mut ProcAnalyses::new())
}

/// Cache-aware while→DO conversion: the §5.2 *incremental repair*.
///
/// The CFG is built **once** (through the analysis cache) and reused
/// across every conversion of the procedure, exactly as the paper repairs
/// its one set of use–def chains instead of reanalyzing. The reuse is
/// sound because a conversion replaces the `While` header with two
/// loop-invariant assignments and a `DoLoop` (all with fresh statement
/// ids) and moves the body wholesale: surviving statement ids, labels,
/// and goto edges are untouched, and preorder processing guarantees no
/// later `While` has converted code in its subtree — so
/// [`Cfg::has_branch_into`] answers identically on the original graph.
/// Each conversion bumps the procedure's generation, so downstream passes
/// see the cache invalidate instead of a stale graph.
pub fn convert_while_loops_cached(
    proc: &mut Procedure,
    analyses: &mut ProcAnalyses,
) -> WhileDoReport {
    let mut report = WhileDoReport::default();
    let mut done: Vec<StmtId> = Vec::new();
    let cfg = analyses.cfg(proc);
    loop {
        // find the first unprocessed while loop (preorder)
        let mut target: Option<StmtId> = None;
        proc.for_each_stmt(&mut |s, kind| {
            if target.is_none() && matches!(kind, StmtKind::While { .. }) && !done.contains(&s) {
                target = Some(s);
            }
        });
        let w = match target {
            Some(w) => w,
            None => break,
        };
        done.push(w);
        let span = proc.stmts.span(w);
        if report.converted > 0 {
            // reusing the CFG past a mutation is the repaired-analysis path
            analyses.note_repair();
        }
        match analyze(proc, &cfg, w) {
            Ok(plan) => {
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var: proc.var(plan.iv).name.clone(),
                    span,
                    decision: LoopDecision::DoConverted,
                });
                apply(proc, w, span, plan);
                proc.bump_generation();
                report.converted += 1;
            }
            Err(r) => {
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var: String::new(),
                    span,
                    decision: LoopDecision::DoRejected(r.describe().to_string()),
                });
                report.rejects.push((w, r));
            }
        }
    }
    report
}

struct Plan {
    iv: VarId,
    hi_adjust: i64,
    /// The bound expression (a subtree of the surviving condition) —
    /// `None` encodes a zero bound (`while (v)` form).
    bound: Option<ExprId>,
    step: StepPlan,
    safe: bool,
}

/// How to materialize the DO step. Expression variants reference subtrees
/// of the surviving body; [`apply`] deep-copies them.
enum StepPlan {
    Const(i64),
    Expr(ExprId),
    NegExpr(ExprId),
}

/// The induction step found in the body: `iv = iv ± c`.
struct StepInfo {
    positive: bool,
    c: ExprId,
}

fn analyze(proc: &Procedure, cfg: &Cfg, w: StmtId) -> Result<Plan, Reject> {
    let (cond, body, safe) = match &proc.stmts[w] {
        StmtKind::While { cond, body, safe } => (*cond, body.clone(), *safe),
        _ => unreachable!("analyze called on non-while"),
    };
    if proc.exprs.has_volatile_load(cond) {
        return Err(Reject::VolatileCond);
    }
    if loops::has_return(&proc.stmts, w) {
        return Err(Reject::HasReturn);
    }
    if loops::has_branch_out(&proc.stmts, w) {
        return Err(Reject::BranchOut);
    }
    if cfg.has_branch_into(proc, w) {
        return Err(Reject::BranchInto);
    }

    // Parse the condition into (iv, relation, bound).
    let (iv, rel, bound) = parse_condition(proc, &body, cond)?;
    if !register_candidate(proc, iv) {
        return Err(Reject::NotCandidate);
    }
    if let Some(b) = bound {
        if !invariant_in(proc, &body, b) {
            return Err(Reject::VaryingBound);
        }
    }

    // Find the unique once-per-iteration step of iv.
    let step = find_step(proc, &body, iv)?;
    if !invariant_in(proc, &body, step.c) {
        return Err(Reject::VaryingStep);
    }

    // Direction analysis.
    let c_const = proc.exprs.as_int(step.c);
    let step_plan;
    let hi_adjust;
    match rel {
        BinOp::Lt | BinOp::Le => {
            // needs a positive step
            if !step.positive {
                return Err(Reject::Direction);
            }
            step_plan = StepPlan::Expr(step.c);
            hi_adjust = if rel == BinOp::Lt { -1 } else { 0 };
        }
        BinOp::Gt | BinOp::Ge => {
            if step.positive {
                return Err(Reject::Direction);
            }
            step_plan = StepPlan::NegExpr(step.c);
            hi_adjust = if rel == BinOp::Gt { 1 } else { 0 };
        }
        BinOp::Ne => {
            // `while (i != b)` (and `while (i)` as b = 0).
            if step.positive {
                // counting up: must step by exactly 1 to hit b
                if c_const != Some(1) {
                    return Err(Reject::Direction);
                }
                step_plan = StepPlan::Const(1);
                hi_adjust = -1;
            } else {
                // counting down. The paper's form: `DO dummy = n, 1, -s`
                // (termination of the original loop implies s divides the
                // distance, so the trip counts agree).
                let bound_is_zero = bound.is_none_or(|b| proc.exprs.as_int(b) == Some(0));
                if !bound_is_zero && c_const != Some(1) {
                    return Err(Reject::Direction);
                }
                step_plan = StepPlan::NegExpr(step.c);
                hi_adjust = 1;
            }
        }
        _ => return Err(Reject::CondForm),
    }

    Ok(Plan {
        iv,
        hi_adjust,
        bound,
        step: step_plan,
        safe,
    })
}

/// Parses the loop condition into `(iv, relation, bound)`, normalizing so
/// the variable is on the left. A `None` bound means zero.
fn parse_condition(
    proc: &Procedure,
    body: &[StmtId],
    cond: ExprId,
) -> Result<(VarId, BinOp, Option<ExprId>), Reject> {
    match proc.exprs[cond] {
        Expr::Var(v) => Ok((v, BinOp::Ne, None)),
        Expr::Binary { op, lhs, rhs, .. } if op.is_comparison() => {
            // prefer the side that is stepped in the body
            let lv = as_var(proc, lhs);
            let rv = as_var(proc, rhs);
            let l_step = lv.map(|v| find_step(proc, body, v));
            let r_step = rv.map(|v| find_step(proc, body, v));
            if let (Some(v), Some(Ok(_))) = (lv, &l_step) {
                return Ok((v, op, Some(rhs)));
            }
            if let (Some(v), Some(Ok(_))) = (rv, &r_step) {
                return Ok((v, flip(op), Some(lhs)));
            }
            // propagate the more specific failure when a side looked like
            // an induction variable but was stepped conditionally
            for st in [l_step, r_step].into_iter().flatten() {
                if let Err(Reject::MultipleSteps) = st {
                    return Err(Reject::MultipleSteps);
                }
            }
            Err(Reject::NoStep)
        }
        _ => Err(Reject::CondForm),
    }
}

fn as_var(proc: &Procedure, e: ExprId) -> Option<VarId> {
    match proc.exprs[e] {
        Expr::Var(v) => Some(v),
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Finds the unique top-level step `iv = iv ± c` (possibly via front-end
/// copy temporaries) in the body. The returned `c` is a subtree of the
/// body's step statement.
fn find_step(proc: &Procedure, body: &[StmtId], iv: VarId) -> Result<StepInfo, Reject> {
    // nested (conditional) definitions disqualify
    for &s in body {
        if proc.stmts[s]
            .blocks()
            .iter()
            .any(|b| defined_in(&proc.stmts, b, iv))
        {
            return Err(Reject::MultipleSteps);
        }
    }
    let defs: Vec<(usize, StmtId)> = body
        .iter()
        .enumerate()
        .filter(|(_, &s)| proc.stmts[s].defined_var() == Some(iv))
        .map(|(i, &s)| (i, s))
        .collect();
    match defs.as_slice() {
        [] => Err(Reject::NoStep),
        [(pos, s)] => {
            if let StmtKind::Assign {
                lhs: LValue::Var(_),
                rhs,
            } = &proc.stmts[*s]
            {
                if let Expr::Binary { op, lhs, rhs, .. } = proc.exprs[*rhs] {
                    let l_origin = as_var(proc, lhs).map(|v| resolve_copy(proc, body, *pos, v));
                    let r_origin = as_var(proc, rhs).map(|v| resolve_copy(proc, body, *pos, v));
                    return match op {
                        BinOp::Add if l_origin == Some(iv) => Ok(StepInfo {
                            positive: true,
                            c: rhs,
                        }),
                        BinOp::Add if r_origin == Some(iv) => Ok(StepInfo {
                            positive: true,
                            c: lhs,
                        }),
                        BinOp::Sub if l_origin == Some(iv) => Ok(StepInfo {
                            positive: false,
                            c: rhs,
                        }),
                        _ => Err(Reject::NoStep),
                    };
                }
            }
            Err(Reject::NoStep)
        }
        _ => Err(Reject::MultipleSteps),
    }
}

/// Replaces the while statement with `t_lo = iv; t_hi = bound±adj;
/// DO dummy = t_lo, t_hi, step { body }`.
fn apply(proc: &mut Procedure, while_id: StmtId, span: titanc_il::SrcSpan, plan: Plan) {
    let dummy = proc.fresh_temp(Type::Int);
    proc.var_mut(dummy).name = format!("dummy_{}", dummy.index());
    let t_lo = proc.fresh_temp(Type::Int);
    let t_hi = proc.fresh_temp(Type::Int);

    // materialize all header expressions up front; bound and step come
    // from surviving subtrees, so they are deep-copied out
    let iv_kind = proc.var_scalar(plan.iv);
    let iv_read = proc.exprs.var(plan.iv);
    let lo_rhs = proc.exprs.cast(ScalarType::Int, iv_kind, iv_read);
    let lo_assign = proc.stamp_at(
        StmtKind::Assign {
            lhs: LValue::Var(t_lo),
            rhs: lo_rhs,
        },
        span,
    );
    let mut hi_rhs = match plan.bound {
        Some(b) => proc.exprs.copy(b),
        None => proc.exprs.int(0),
    };
    if plan.hi_adjust != 0 {
        let adj = proc.exprs.int(plan.hi_adjust);
        hi_rhs = proc.exprs.ibinary(BinOp::Add, hi_rhs, adj);
    }
    titanc_il::fold::fold_expr(&mut proc.exprs, hi_rhs);
    let hi_assign = proc.stamp_at(
        StmtKind::Assign {
            lhs: LValue::Var(t_hi),
            rhs: hi_rhs,
        },
        span,
    );
    let step = match plan.step {
        StepPlan::Const(c) => proc.exprs.int(c),
        StepPlan::Expr(c) => proc.exprs.copy(c),
        StepPlan::NegExpr(c) => match proc.exprs.as_int(c) {
            Some(v) => proc.exprs.int(-v),
            None => {
                let cc = proc.exprs.copy(c);
                proc.exprs.unary(titanc_il::UnOp::Neg, ScalarType::Int, cc)
            }
        },
    };
    let lo_read = proc.exprs.var(t_lo);
    let hi_read = proc.exprs.var(t_hi);

    // splice: find the while statement and replace it in its block
    fn splice(
        proc: &mut Procedure,
        block: &mut Block,
        while_id: StmtId,
        mk: &mut dyn FnMut(&mut Procedure, Block, bool) -> Vec<StmtId>,
    ) -> bool {
        for i in 0..block.len() {
            let s = block[i];
            if s == while_id {
                if let StmtKind::While { body, safe, .. } =
                    std::mem::replace(&mut proc.stmts[s], StmtKind::Nop)
                {
                    let replacement = mk(proc, body, safe);
                    block.splice(i..=i, replacement);
                    return true;
                }
                return false;
            }
            let mut kind = std::mem::replace(&mut proc.stmts[s], StmtKind::Nop);
            let mut found = false;
            for b in kind.blocks_mut() {
                if splice(proc, b, while_id, mk) {
                    found = true;
                    break;
                }
            }
            proc.stmts[s] = kind;
            if found {
                return true;
            }
        }
        false
    }

    let safe_flag = plan.safe;
    let mut body_tmp = std::mem::take(&mut proc.body);
    let mut make = |proc: &mut Procedure, body: Block, safe: bool| {
        let do_stmt = proc.stamp_at(
            StmtKind::DoLoop {
                var: dummy,
                lo: lo_read,
                hi: hi_read,
                step,
                body,
                safe: safe || safe_flag,
            },
            span,
        );
        vec![lo_assign, hi_assign, do_stmt]
    };
    let ok = splice(proc, &mut body_tmp, while_id, &mut make);
    debug_assert!(ok, "while statement not found for splice");
    proc.body = body_tmp;
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_lower::compile_to_il;

    fn convert(src: &str) -> (Procedure, WhileDoReport) {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let report = convert_while_loops(&mut proc);
        (proc, report)
    }

    fn first_do(proc: &Procedure) -> Option<StmtKind> {
        let mut found = None;
        proc.for_each_stmt(&mut |_, k| {
            if found.is_none() && matches!(k, StmtKind::DoLoop { .. }) {
                found = Some(k.clone());
            }
        });
        found
    }

    #[test]
    fn converts_canonical_for_loop() {
        let (proc, rep) =
            convert("void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0; }");
        assert_eq!(rep.converted, 1, "{:?}", rep.rejects);
        let d = first_do(&proc).unwrap();
        if let StmtKind::DoLoop { step, .. } = &d {
            assert_eq!(proc.exprs.as_int(*step), Some(1));
        }
    }

    #[test]
    fn converts_paper_countdown_with_symbolic_stride() {
        // §5.2's example: i = n; while (i) { … temp = i; i = temp - s; }
        let src = r#"
void f(int n, int s)
{
    int i, temp;
    i = n;
    while (i) {
        temp = i;
        i = temp - s;
    }
}
"#;
        let (proc, rep) = convert(src);
        assert_eq!(rep.converted, 1, "{:?}", rep.rejects);
        let d = first_do(&proc).unwrap();
        if let StmtKind::DoLoop { step, .. } = &d {
            assert!(
                matches!(proc.exprs[*step], Expr::Unary { .. }),
                "negated symbolic stride"
            );
        }
    }

    #[test]
    fn converts_pointer_walk_countdown() {
        let (proc, rep) =
            convert("void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }");
        assert_eq!(rep.converted, 1, "{:?}", rep.rejects);
        let d = first_do(&proc).unwrap();
        if let StmtKind::DoLoop { step, .. } = &d {
            assert_eq!(proc.exprs.as_int(*step), Some(-1));
        }
    }

    #[test]
    fn rejects_branch_into_loop() {
        let src = r#"
void f(int n)
{
    if (n > 5) goto inside;
    while (n) {
inside:
        n = n - 1;
    }
}
"#;
        let (_proc, rep) = convert(src);
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::BranchInto);
    }

    #[test]
    fn rejects_break_out() {
        let (_p, rep) = convert("void f(int n) { while (n) { if (n == 3) break; n--; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::BranchOut);
    }

    #[test]
    fn rejects_varying_bound() {
        let (_p, rep) =
            convert("void f(int n, int b) { int i; for (i = 0; i < b; i++) { b = b - 1; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::VaryingBound);
    }

    #[test]
    fn rejects_varying_stride() {
        let (_p, rep) =
            convert("void f(int n, int s) { int i; for (i = 0; i < n; i += s) { s = s + 1; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::VaryingStep);
    }

    #[test]
    fn rejects_volatile_condition() {
        let (_p, rep) = convert("volatile int status; void f(void) { while (!status); }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::VolatileCond);
    }

    #[test]
    fn rejects_conditional_step() {
        let (_p, rep) =
            convert("void f(int n, int c) { int i; i = 0; while (i < n) { if (c) i = i + 1; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::MultipleSteps);
    }

    #[test]
    fn rejects_linked_list_walk() {
        // a true while loop: pointer chasing has no recognizable step
        let src = r#"
struct node { int v; struct node *next; };
void f(struct node *p) { while (p) { p = p->next; } }
"#;
        let (_p, rep) = convert(src);
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::NoStep);
    }

    #[test]
    fn rejects_return_inside() {
        let (_p, rep) =
            convert("int f(int n) { while (n) { if (n == 2) return 1; n--; } return 0; }");
        assert_eq!(rep.converted, 0);
        assert!(rep
            .rejects
            .iter()
            .any(|(_, r)| matches!(r, Reject::HasReturn | Reject::BranchOut)));
    }

    #[test]
    fn converts_ge_countdown() {
        let (proc, rep) =
            convert("void f(float *a, int n) { int i; for (i = n; i >= 0; i--) a[i] = 0; }");
        assert_eq!(rep.converted, 1, "{:?}", rep.rejects);
        let d = first_do(&proc).unwrap();
        if let StmtKind::DoLoop { step, .. } = &d {
            assert_eq!(proc.exprs.as_int(*step), Some(-1));
        }
    }

    #[test]
    fn rejects_wrong_direction() {
        let (_p, rep) = convert("void f(int n) { int i; for (i = 0; i < n; i--) { ; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::Direction);
    }

    #[test]
    fn ne_condition_requires_unit_step() {
        let (_p, rep) = convert("void f(int n) { int i; for (i = 0; i != n; i += 2) { ; } }");
        assert_eq!(rep.converted, 0);
        assert_eq!(rep.rejects[0].1, Reject::Direction);
        let (_p2, rep2) = convert("void f(int n) { int i; for (i = 0; i != n; i++) { ; } }");
        assert_eq!(rep2.converted, 1);
    }

    #[test]
    fn nested_loops_both_convert() {
        let src = r#"
void f(float *a, int n, int m)
{
    int i, j;
    for (i = 0; i < n; i++)
        for (j = 0; j < m; j++)
            a[i * m + j] = 0;
}
"#;
        let (_p, rep) = convert(src);
        assert_eq!(rep.converted, 2, "{:?}", rep.rejects);
    }

    #[test]
    fn safe_pragma_survives_conversion() {
        let src =
            "void f(float *a, float *b, int n) {\n#pragma safe\nwhile (n) { *a++ = *b++; n--; } }";
        let (proc, rep) = convert(src);
        assert_eq!(rep.converted, 1);
        let d = first_do(&proc).unwrap();
        assert!(matches!(d, StmtKind::DoLoop { safe: true, .. }));
    }

    #[test]
    fn conversion_preserves_semantics() {
        // executed on the simulator before and after
        let src = r#"
int out_g[1];
int main(void)
{
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++)
        s += i * i;
    out_g[0] = s;
    return s;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt_prog = prog.clone();
        let rep = convert_while_loops(&mut opt_prog.procs[0]);
        assert_eq!(rep.converted, 1);
        let cfg = titanc_titan::MachineConfig::default;
        let (before, _) =
            titanc_titan::observe(&prog, cfg(), "main", &[("out_g", ScalarType::Int, 1)]).unwrap();
        let (after, _) =
            titanc_titan::observe(&opt_prog, cfg(), "main", &[("out_g", ScalarType::Int, 1)])
                .unwrap();
        assert_eq!(before, after);
    }
}
