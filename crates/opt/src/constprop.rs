//! Constant propagation with unreachable-code elimination (§8).
//!
//! "Inlining tailors a procedure designed to handle many cases to a
//! specific invocation; as a result, large amounts of dead and unreachable
//! code result." The paper rejects IF-conversion, basic-block
//! reconstruction and Wegman–Zadeck in favour of a heuristic: propagate
//! constants off the use–def chains, simplify branches whose conditions
//! fold to constants, and — when a definition is eliminated as unreachable
//! — re-seed the propagation worklist from the statements that definition
//! reached. This module implements that heuristic as a round-based
//! fixpoint (each structural simplification re-seeds the next round), the
//! §8 *postpass* for code trapped behind always-taken branches, and the
//! rejected "rebuild basic blocks" strategy as a measurable baseline.

use titanc_analysis::{Cfg, ProcAnalyses};
use titanc_il::fold::{const_value, fold_expr, value_to_expr, Value};
use titanc_il::{Block, Procedure, ScalarType, StmtId, StmtKind, StmtPool};

/// Resource budget: maximum fixpoint rounds per procedure. Hitting the cap
/// is sound (each round leaves verified IL) but is reported so the driver
/// can emit a remark.
pub const MAX_ROUNDS: usize = 32;

/// Propagation statistics (EXP4 compares these across strategies).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConstPropReport {
    /// Variable reads replaced by constants.
    pub replaced: usize,
    /// Statements removed by branch simplification / unreachable
    /// elimination.
    pub removed: usize,
    /// Fixpoint rounds (the paper's re-seeding events + 1).
    pub rounds: usize,
    /// The fixpoint was cut off by [`MAX_ROUNDS`] while still changing.
    pub budget_exhausted: bool,
}

impl ConstPropReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: ConstPropReport) {
        self.replaced += other.replaced;
        self.removed += other.removed;
        self.rounds += other.rounds;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

titanc_il::struct_json!(
    ConstPropReport,
    [replaced, removed, rounds, budget_exhausted]
);

/// Constant propagation with the §8 unreachable-code heuristic.
pub fn constant_propagation(proc: &mut Procedure) -> ConstPropReport {
    run(proc, true, &mut ProcAnalyses::new())
}

/// Constant propagation alone (no branch simplification) — one half of the
/// "rebuild basic blocks" baseline.
pub fn constant_propagation_no_unreachable(proc: &mut Procedure) -> ConstPropReport {
    run(proc, false, &mut ProcAnalyses::new())
}

/// Cache-aware constant propagation.
///
/// Each propagation round asks the cache for use–def chains instead of
/// rebuilding them. Rounds that only *replace reads and fold expressions*
/// preserve the statement set, definition sites, and control-flow edges,
/// so the chains are repaired in place — the generation is bumped and the
/// cache rekeyed ([`ProcAnalyses::rekey`], the §5.2 discipline) — and the
/// next round's use–def request is a cache hit. Rounds that structurally
/// simplify branches invalidate instead.
pub fn constant_propagation_cached(
    proc: &mut Procedure,
    analyses: &mut ProcAnalyses,
) -> ConstPropReport {
    run(proc, true, analyses)
}

fn run(
    proc: &mut Procedure,
    simplify_branches: bool,
    analyses: &mut ProcAnalyses,
) -> ConstPropReport {
    let mut report = ConstPropReport::default();
    loop {
        report.rounds += 1;
        let mut changed = 0usize;

        // 1. propagate constants along use-def chains
        let replaced = propagate_once(proc, analyses, &mut report);
        changed += replaced;

        // 2. fold everything (slot rewrite: ids in statements stay valid)
        let mut roots = Vec::new();
        titanc_il::visit::walk_block(&proc.stmts, &proc.body, &mut |_, kind| {
            roots.extend(kind.exprs())
        });
        for r in roots {
            fold_expr(&mut proc.exprs, r);
        }

        if replaced > 0 {
            // pure expression rewrites: repair the chains instead of
            // invalidating them (§5.2) — the next round hits the cache
            proc.bump_generation();
            analyses.rekey(proc);
        }

        // 3. simplify constant branches (the unreachable-code elimination)
        if simplify_branches {
            let removed = simplify_constant_branches(proc);
            report.removed += removed;
            changed += removed;
            if removed > 0 {
                // structural edit: statements vanished, edges moved
                proc.bump_generation();
                analyses.invalidate();
            }
        }

        if changed == 0 {
            break;
        }
        if report.rounds >= MAX_ROUNDS {
            report.budget_exhausted = true;
            break;
        }
    }
    report
}

/// One propagation sweep: replaces reads whose reaching definitions all
/// assign the same literal.
fn propagate_once(
    proc: &mut Procedure,
    analyses: &mut ProcAnalyses,
    report: &mut ConstPropReport,
) -> usize {
    let ud = analyses.usedef(proc);

    // constant value per defining statement
    let mut const_defs: Vec<(StmtId, titanc_il::VarId, Value, ScalarType)> = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        if let StmtKind::Assign {
            lhs: titanc_il::LValue::Var(v),
            rhs,
        } = kind
        {
            if ud.tracked(*v) {
                if let Some(val) = const_value(&proc.exprs[*rhs]) {
                    let scalar = proc.var_scalar(*v);
                    const_defs.push((s, *v, val, scalar));
                }
            }
        }
    });
    let lookup = |def: StmtId, var: titanc_il::VarId| -> Option<(Value, ScalarType)> {
        const_defs
            .iter()
            .find(|(s, v, _, _)| *s == def && *v == var)
            .map(|(_, _, val, k)| (*val, *k))
    };

    // decide the replacement per (stmt, var)
    let mut plan: Vec<(StmtId, titanc_il::VarId, Value, ScalarType)> = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        let mut vars: Vec<titanc_il::VarId> = Vec::new();
        for e in kind.exprs() {
            for v in proc.exprs.vars_read(e) {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        for v in vars {
            if !ud.tracked(v) {
                continue;
            }
            let defs = ud.reaching_defs(s, v);
            if defs.is_empty() || defs.iter().any(Option::is_none) {
                continue; // entry def (param/uninitialized) reaches
            }
            let consts: Option<Vec<(Value, ScalarType)>> =
                defs.iter().map(|d| lookup(d.unwrap(), v)).collect();
            if let Some(cs) = consts {
                let (first, kind) = cs[0];
                if cs.iter().all(|(c, _)| *c == first) {
                    plan.push((s, v, first, kind));
                }
            }
        }
    });

    let count = plan.len();
    if count == 0 {
        return 0;
    }
    for (s, v, val, scalar) in plan {
        let rep = proc.exprs.alloc(value_to_expr(val, scalar));
        for e in proc.stmts[s].exprs() {
            report.replaced += proc.exprs.substitute_var(e, v, rep);
        }
    }
    count
}

/// Replaces branches with constant conditions by the taken path; removes
/// zero-trip loops. Returns statements eliminated.
fn simplify_constant_branches(proc: &mut Procedure) -> usize {
    let mut removed = 0usize;
    let mut body = std::mem::take(&mut proc.body);
    simplify_block(proc, &mut body, &mut removed);
    // the quick §8 postpass
    removed += postpass_block(&mut proc.stmts, &mut body);
    proc.body = body;
    removed
}

fn simplify_block(proc: &mut Procedure, block: &mut Block, removed: &mut usize) {
    let mut i = 0;
    while i < block.len() {
        let s = block[i];
        // recurse into nested blocks (take the kind out so the pool stays
        // borrowable during the recursion)
        let mut kind = std::mem::replace(&mut proc.stmts[s], StmtKind::Nop);
        for b in kind.blocks_mut() {
            simplify_block(proc, b, removed);
        }
        proc.stmts[s] = kind;

        let replace: Option<Block> = match &proc.stmts[s] {
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => match const_value(&proc.exprs[*cond]) {
                Some(v) if !proc.exprs.has_volatile_load(*cond) => {
                    let (taken, dead) = if v.is_truthy() {
                        (then_blk.clone(), else_blk)
                    } else {
                        (else_blk.clone(), then_blk)
                    };
                    *removed += 1 + titanc_il::block_len(&proc.stmts, dead);
                    Some(taken)
                }
                _ => None,
            },
            StmtKind::While { cond, body, .. } => match const_value(&proc.exprs[*cond]) {
                Some(v) if !v.is_truthy() && !proc.exprs.has_volatile_load(*cond) => {
                    *removed += 1 + titanc_il::block_len(&proc.stmts, body);
                    Some(Vec::new())
                }
                _ => None,
            },
            StmtKind::DoLoop {
                lo, hi, step, body, ..
            } => {
                let consts = (
                    const_value(&proc.exprs[*lo]),
                    const_value(&proc.exprs[*hi]),
                    const_value(&proc.exprs[*step]),
                );
                match consts {
                    (Some(l), Some(h), Some(st)) => {
                        let (l, h, st) = (l.as_int(), h.as_int(), st.as_int());
                        let zero_trip = st != 0 && ((st > 0 && l > h) || (st < 0 && l < h));
                        if zero_trip {
                            *removed += 1 + titanc_il::block_len(&proc.stmts, body);
                            Some(Vec::new())
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            StmtKind::IfGoto { cond, target } => match const_value(&proc.exprs[*cond]) {
                Some(v) if !proc.exprs.has_volatile_load(*cond) => {
                    if v.is_truthy() {
                        let t = *target;
                        proc.stmts[s] = StmtKind::Goto(t);
                        None
                    } else {
                        *removed += 1;
                        Some(Vec::new())
                    }
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(repl) = replace {
            let n = repl.len();
            block.splice(i..=i, repl);
            i += n;
        } else {
            i += 1;
        }
    }
}

/// The §8 postpass: statements that lexically follow an unconditional
/// `goto`/`return` up to the next label in the same block are unreachable.
/// "A quick heuristic … not as effective as reconstructing basic blocks",
/// but cheap. Returns statements removed.
pub fn unreachable_postpass(proc: &mut Procedure) -> usize {
    let mut body = std::mem::take(&mut proc.body);
    let removed = postpass_block(&mut proc.stmts, &mut body);
    proc.body = body;
    if removed > 0 {
        proc.bump_generation();
    }
    removed
}

fn postpass_block(stmts: &mut StmtPool, block: &mut Block) -> usize {
    let mut removed = 0;
    for &s in block.iter() {
        let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
        for b in kind.blocks_mut() {
            removed += postpass_block(stmts, b);
        }
        stmts[s] = kind;
    }
    let mut i = 0;
    while i < block.len() {
        let is_jump = matches!(stmts[block[i]], StmtKind::Goto(_) | StmtKind::Return(_));
        if is_jump {
            let mut j = i + 1;
            while j < block.len() && !matches!(stmts[block[j]], StmtKind::Label(_)) {
                j += 1;
            }
            if j > i + 1 {
                removed += block[i + 1..j]
                    .iter()
                    .map(|&s| stmts.tree_len(s))
                    .sum::<usize>();
                block.drain(i + 1..j);
            }
        }
        i += 1;
    }
    removed
}

/// The rejected baseline: full CFG reachability ("rebuild basic blocks")
/// and removal of every unreachable statement. Returns statements removed.
pub fn eliminate_unreachable_cfg(proc: &mut Procedure) -> usize {
    let cfg = Cfg::build(proc);
    let dead_nodes = cfg.unreachable_nodes();
    let dead_ids: Vec<StmtId> = dead_nodes.iter().filter_map(|&n| cfg.stmt_of[n]).collect();
    if dead_ids.is_empty() {
        return 0;
    }
    let mut removed = 0;
    let mut body = std::mem::take(&mut proc.body);
    remove_ids(&mut proc.stmts, &mut body, &dead_ids, &mut removed);
    proc.body = body;
    if removed > 0 {
        proc.bump_generation();
    }
    removed
}

fn remove_ids(stmts: &mut StmtPool, block: &mut Block, ids: &[StmtId], removed: &mut usize) {
    for &s in block.iter() {
        let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
        for b in kind.blocks_mut() {
            remove_ids(stmts, b, ids, removed);
        }
        stmts[s] = kind;
    }
    let before = block.len();
    block.retain(|s| !ids.contains(s));
    *removed += before - block.len();
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn cp(src: &str) -> (Procedure, ConstPropReport) {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let rep = constant_propagation(&mut proc);
        (proc, rep)
    }

    #[test]
    fn propagates_simple_constant() {
        let (proc, rep) = cp("int f(void) { int x; x = 3; return x + 4; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return 7;"), "{text}");
        assert!(rep.replaced >= 1);
    }

    #[test]
    fn does_not_merge_conflicting_defs() {
        let (proc, _rep) = cp("int f(int c) { int x; if (c) x = 1; else x = 2; return x; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return x;"), "{text}");
    }

    #[test]
    fn merges_agreeing_defs() {
        let (proc, _rep) = cp("int f(int c) { int x; if (c) x = 7; else x = 7; return x; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return 7;"), "{text}");
    }

    #[test]
    fn eliminates_false_branch() {
        let (proc, rep) = cp("int f(void) { int a; a = 0; if (a == 0) return 1; return 2; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return 1;"), "{text}");
        assert!(!text.contains("return 2;"), "postpass removes it: {text}");
        assert!(rep.removed >= 1);
    }

    #[test]
    fn daxpy_alpha_zero_unreachable() {
        // the §8 example: inlined daxpy with in_a == 0.0 — the FP
        // assignment is unreachable once constants propagate.
        let src = r#"
void f(float *x, float y, float z)
{
    float in_a;
    in_a = 0.0f;
    if (in_a == 0.0f)
        return;
    *x = y + in_a * z;
}
"#;
        let (proc, _rep) = cp(src);
        let text = pretty_proc(&proc);
        assert!(
            !text.contains("in_a *"),
            "floating assignment eliminated: {text}"
        );
    }

    #[test]
    fn removes_zero_trip_loop() {
        // pipeline order: while→DO conversion first (§5.2), then constant
        // propagation sees the constant bounds and removes the loop
        let prog = compile_to_il(
            "void f(float *a) { int i, n; n = 0; for (i = 0; i < n; i++) a[i] = 1; }",
        )
        .unwrap();
        let mut proc = prog.procs[0].clone();
        crate::whiledo::convert_while_loops(&mut proc);
        let rep = constant_propagation(&mut proc);
        let text = pretty_proc(&proc);
        assert!(!text.contains("do fortran"), "{text}");
        assert!(rep.removed >= 1);
    }

    #[test]
    fn constant_propagates_through_rounds() {
        // needs two rounds: eliminating the branch exposes b's constancy
        let src = r#"
int f(void)
{
    int a, b;
    a = 1;
    if (a) b = 5; else b = 9;
    return b * 2;
}
"#;
        let (proc, rep) = cp(src);
        let text = pretty_proc(&proc);
        assert!(text.contains("return 10;"), "{text}");
        assert!(rep.rounds >= 2);
    }

    #[test]
    fn volatile_conditions_never_fold() {
        let (proc, _rep) = cp("volatile int s; int f(void) { if (s == 0) return 1; return 2; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("if ("), "{text}");
    }

    #[test]
    fn postpass_removes_code_after_goto() {
        let src = r#"
int f(int a)
{
    goto end;
    a = a + 1;
    a = a + 2;
end:
    return a;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let removed = unreachable_postpass(&mut proc);
        assert_eq!(removed, 2);
    }

    #[test]
    fn cfg_baseline_matches_postpass_on_simple_code() {
        let src = "int f(int a) { return 1; a = 2; a = 3; return a; }";
        let prog = compile_to_il(src).unwrap();
        let mut p1 = prog.procs[0].clone();
        let mut p2 = prog.procs[0].clone();
        let by_postpass = unreachable_postpass(&mut p1);
        let by_cfg = eliminate_unreachable_cfg(&mut p2);
        assert_eq!(by_postpass, 3);
        assert_eq!(by_cfg, 3);
    }

    #[test]
    fn cfg_baseline_catches_what_postpass_misses() {
        // unreachable code guarded by an if whose both arms jump away:
        // the postpass (straight-line) cannot see it, the CFG can.
        let src = r#"
int f(int c)
{
    if (c) goto a; else goto b;
    c = 99;
a:
    return 1;
b:
    return 2;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut p1 = prog.procs[0].clone();
        let mut p2 = prog.procs[0].clone();
        let by_postpass = unreachable_postpass(&mut p1);
        let by_cfg = eliminate_unreachable_cfg(&mut p2);
        assert_eq!(by_postpass, 0, "straight-line heuristic is blind here");
        assert!(by_cfg >= 1, "CFG reachability sees it");
    }

    #[test]
    fn equivalence_on_simulator() {
        let src = r#"
int out_g[1];
int main(void)
{
    int a, b, i;
    a = 4;
    b = 0;
    if (a > 2) b = a * 3;
    for (i = 0; i < a; i++) b = b + 1;
    out_g[0] = b;
    return b;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt = prog.clone();
        constant_propagation(&mut opt.procs[0]);
        let g = [("out_g", ScalarType::Int, 1)];
        let cfg = titanc_titan::MachineConfig::default;
        let (b, _) = titanc_titan::observe(&prog, cfg(), "main", &g).unwrap();
        let (a, _) = titanc_titan::observe(&opt, cfg(), "main", &g).unwrap();
        assert_eq!(b, a);
    }
}
