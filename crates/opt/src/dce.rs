//! Dead-code elimination.
//!
//! Inlining makes dead code common where hand-written programs have none
//! (§8): parameter-binding temporaries, substituted induction variables,
//! and branches specialized away by constant propagation all leave dead
//! stores behind. This pass removes assignments to register candidates
//! whose values are never subsequently read (liveness-driven), sweeps
//! `Nop`s, unreferenced labels, and empty branches, and iterates to a
//! fixpoint.

use titanc_analysis::{Liveness, ProcAnalyses};
use titanc_il::{Block, LValue, Procedure, StmtId, StmtKind, StmtPool};

/// Resource budget: maximum fixpoint rounds per procedure. Hitting the cap
/// is sound (every completed round leaves verified IL) but is reported so
/// the driver can emit a remark.
pub const MAX_ROUNDS: usize = 32;

/// Elimination statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DceReport {
    /// Dead assignments removed.
    pub removed: usize,
    /// Fixpoint rounds.
    pub rounds: usize,
    /// The fixpoint was cut off by [`MAX_ROUNDS`] while still changing.
    pub budget_exhausted: bool,
}

impl DceReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: DceReport) {
        self.removed += other.removed;
        self.rounds += other.rounds;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

titanc_il::struct_json!(DceReport, [removed, rounds, budget_exhausted]);

/// Runs dead-code elimination to a fixpoint.
pub fn eliminate_dead_code(proc: &mut Procedure) -> DceReport {
    eliminate_dead_code_cached(proc, &mut ProcAnalyses::new())
}

/// Cache-aware dead-code elimination.
///
/// Liveness comes from the analysis cache; the final (clean) fixpoint
/// round rebuilds nothing it can reuse and deposits a CFG + liveness
/// valid for the procedure's final generation, so a later pass asking
/// for either gets a cache hit. Rounds that remove statements bump the
/// generation and invalidate — removal changes the statement set and can
/// change edges, so incremental repair would be unsound here.
pub fn eliminate_dead_code_cached(proc: &mut Procedure, analyses: &mut ProcAnalyses) -> DceReport {
    let mut report = DceReport::default();
    loop {
        report.rounds += 1;
        let mut removed = 0;

        // liveness-driven dead stores
        let live = analyses.liveness(proc);
        kill_dead_stores(&live, proc, &mut removed);

        // faint variables: dead self-feeding counters (`waste = waste+1`)
        removed += eliminate_faint(proc);

        // structural cleanups
        removed += sweep(proc);

        report.removed += removed;
        if removed > 0 {
            proc.bump_generation();
            analyses.invalidate();
        }
        if removed == 0 {
            break;
        }
        if report.rounds >= MAX_ROUNDS {
            report.budget_exhausted = true;
            break;
        }
    }
    report
}

fn kill_dead_stores(live: &Liveness, proc: &mut Procedure, removed: &mut usize) {
    // decide first (shared walk), rewrite after: slot rewrites to Nop
    let mut dead: Vec<StmtId> = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        if let StmtKind::Assign {
            lhs: LValue::Var(v),
            rhs,
        } = kind
        {
            if !proc.exprs.has_volatile_load(*rhs) && !live.live_after(s, *v) {
                dead.push(s);
            }
        }
    });
    for s in dead {
        proc.stmts[s] = StmtKind::Nop;
        *removed += 1;
    }
}

/// Faint-variable elimination: a register candidate is *needed* when some
/// statement other than an assignment to a (transitively) unneeded
/// candidate reads it. Assignments to unneeded candidates are removed —
/// this kills self-sustaining dead counters (`waste = waste + 1`) that
/// flow-sensitive liveness cannot, which matters after inlining and
/// induction-variable substitution leave orphaned updates behind.
fn eliminate_faint(proc: &mut Procedure) -> usize {
    use crate::util::register_candidate;
    use std::collections::HashSet;
    use titanc_il::VarId;

    // contributes[v] = vars read by assignments defining v
    let mut contributes: Vec<(VarId, Vec<VarId>)> = Vec::new();
    let mut needed: HashSet<VarId> = HashSet::new();
    proc.for_each_stmt(&mut |_, kind| match kind {
        StmtKind::Assign {
            lhs: LValue::Var(v),
            rhs,
        } if register_candidate(proc, *v) && !proc.exprs.has_volatile_load(*rhs) => {
            contributes.push((*v, proc.exprs.vars_read(*rhs)));
        }
        StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
            // the loop's own counter drives iteration
            needed.insert(*var);
            for e in kind.exprs() {
                needed.extend(proc.exprs.vars_read(e));
            }
        }
        _ => {
            for e in kind.exprs() {
                needed.extend(proc.exprs.vars_read(e));
            }
            if let StmtKind::Call {
                dst: Some(LValue::Var(v)),
                ..
            } = kind
            {
                // a call result must stay receivable
                needed.insert(*v);
            }
        }
    });
    // close over contributions
    let mut changed = true;
    while changed {
        changed = false;
        for (v, reads) in &contributes {
            if needed.contains(v) {
                for r in reads {
                    if needed.insert(*r) {
                        changed = true;
                    }
                }
            }
        }
    }
    // remove assignments to unneeded candidates
    let mut dead: Vec<StmtId> = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        if let StmtKind::Assign {
            lhs: LValue::Var(v),
            rhs,
        } = kind
        {
            if register_candidate(proc, *v)
                && !needed.contains(v)
                && !proc.exprs.has_volatile_load(*rhs)
            {
                dead.push(s);
            }
        }
    });
    let removed = dead.len();
    for s in dead {
        proc.stmts[s] = StmtKind::Nop;
    }
    removed
}

/// Structural cleanups: `Nop` sweep, unreferenced labels, `If`s whose
/// branches are empty, DO loops with empty bodies and pure bounds.
/// Returns the number of statements removed.
pub fn sweep(proc: &mut Procedure) -> usize {
    // collect referenced labels
    let mut referenced = Vec::new();
    proc.for_each_stmt(&mut |_, kind| match kind {
        StmtKind::Goto(l) | StmtKind::IfGoto { target: l, .. } => referenced.push(*l),
        _ => {}
    });
    let mut removed = 0;
    let mut body = std::mem::take(&mut proc.body);
    sweep_block(proc, &mut body, &referenced, &mut removed);
    proc.body = body;
    removed
}

fn sweep_block(
    proc: &mut Procedure,
    block: &mut Block,
    referenced: &[titanc_il::LabelId],
    removed: &mut usize,
) {
    for &s in block.iter() {
        let mut kind = std::mem::replace(&mut proc.stmts[s], StmtKind::Nop);
        for b in kind.blocks_mut() {
            sweep_block(proc, b, referenced, removed);
        }
        proc.stmts[s] = kind;
        let kill = match &proc.stmts[s] {
            StmtKind::Label(l) => !referenced.contains(l),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => then_blk.is_empty() && else_blk.is_empty() && !proc.exprs.has_volatile_load(*cond),
            StmtKind::DoLoop {
                body, lo, hi, step, ..
            } => {
                body.is_empty()
                    && !proc.exprs.has_volatile_load(*lo)
                    && !proc.exprs.has_volatile_load(*hi)
                    && !proc.exprs.has_volatile_load(*step)
            }
            _ => false,
        };
        if kill {
            proc.stmts[s] = StmtKind::Nop;
            *removed += 1;
        }
    }
    let before = block.len();
    retain_non_nops(&proc.stmts, block);
    // Nops already counted when created by this pass; count only the
    // pre-existing ones swept here.
    *removed += before - block.len();
}

fn retain_non_nops(stmts: &StmtPool, block: &mut Block) {
    block.retain(|&s| !matches!(stmts[s], StmtKind::Nop));
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn dce(src: &str) -> Procedure {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        eliminate_dead_code(&mut proc);
        proc
    }

    #[test]
    fn removes_dead_store() {
        let proc = dce("int f(void) { int x, y; x = 1; x = 2; y = x; return y; }");
        let text = pretty_proc(&proc);
        assert!(!text.contains("x = 1"), "{text}");
        assert!(text.contains("x = 2"), "{text}");
    }

    #[test]
    fn removes_transitively_dead_chains() {
        // u feeds only t, t feeds nothing: both die (needs two rounds)
        let proc = dce("int f(int a) { int t, u; u = a * 3; t = u + 1; return a; }");
        let text = pretty_proc(&proc);
        assert!(!text.contains("u ="), "{text}");
        assert!(!text.contains("t ="), "{text}");
    }

    #[test]
    fn keeps_volatile_reads() {
        let proc = dce("volatile int s; int f(void) { int t; t = s; return 0; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("volatile"), "volatile read survives: {text}");
    }

    #[test]
    fn keeps_memory_stores() {
        let proc = dce("void f(int *p) { *p = 3; }");
        assert_eq!(proc.body.len(), 1);
    }

    #[test]
    fn removes_unreferenced_labels() {
        // break lowers to goto+label; after simplification the label
        // remains referenced — build an unreferenced one via dead branch
        let src = "void f(int n) { while (n) { n--; } }";
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        // add an unreferenced label at the end
        let l = proc.fresh_label();
        proc.push(StmtKind::Label(l));
        eliminate_dead_code(&mut proc);
        let has_label = proc.any_stmt(|_, k| matches!(k, StmtKind::Label(_)));
        assert!(!has_label);
    }

    #[test]
    fn removes_empty_if() {
        let proc = dce("void f(int c) { int t; if (c) { t = 1; } }");
        assert!(proc.body.is_empty(), "{}", pretty_proc(&proc));
    }

    #[test]
    fn keeps_live_loop_updates() {
        let proc =
            dce("int f(int n) { int s; s = 0; while (n) { s = s + n; n = n - 1; } return s; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("s = (s + n)"), "{text}");
        assert!(text.contains("n = (n - 1)"), "{text}");
    }

    #[test]
    fn dead_loop_counter_removed_but_loop_kept_if_it_stores() {
        let src = r#"
void f(float *a, int n)
{
    int i, waste;
    waste = 0;
    for (i = 0; i < n; i++) {
        waste = waste + 1;
        a[i] = 0;
    }
}
"#;
        let proc = dce(src);
        let text = pretty_proc(&proc);
        assert!(!text.contains("waste"), "{text}");
        assert!(text.contains("while ("), "{text}");
    }

    #[test]
    fn equivalence_on_simulator() {
        let src = r#"
int out_g[1];
int main(void)
{
    int a, dead1, dead2;
    a = 5;
    dead1 = a * 100;
    dead2 = dead1 + 3;
    out_g[0] = a;
    return a + 1;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt = prog.clone();
        eliminate_dead_code(&mut opt.procs[0]);
        assert!(opt.procs[0].len() < prog.procs[0].len());
        let g = [("out_g", titanc_il::ScalarType::Int, 1)];
        let cfg = titanc_titan::MachineConfig::default;
        let (b, _) = titanc_titan::observe(&prog, cfg(), "main", &g).unwrap();
        let (a, _) = titanc_titan::observe(&opt, cfg(), "main", &g).unwrap();
        assert_eq!(b, a);
    }
}
