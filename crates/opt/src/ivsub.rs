//! Induction-variable substitution (§5.3).
//!
//! The C front end turns pointer walks like `*a++ = *b++;` into chains of
//! copy temporaries and pointer increments. This pass finds each *auxiliary
//! induction variable* — a variable advanced by a loop-invariant amount
//! exactly once per iteration, possibly through those copies — and rewrites
//! every use as an explicit affine function of the DO-loop counter, after
//! which the walking pointer itself is dead and the subscript is visible to
//! dependence analysis.
//!
//! The paper's *blocking/backtracking* heuristic appears here as a
//! worklist: an induction-variable candidate whose increment reads another
//! candidate (or whose uses are still hidden behind an unsubstituted copy)
//! is *blocked*; each time a variable is substituted, the candidates it
//! blocked are re-examined. Backtracking therefore only happens when it is
//! guaranteed to make progress, and the common case is a single pass —
//! worst case `n` passes over the loop (§5.3).

use crate::util::{invariant_in, register_candidate, resolve_copy};
use titanc_il::{BinOp, Expr, LValue, Procedure, ScalarType, Stmt, StmtKind, Type, VarId};

/// Resource budget: maximum scan passes per loop (worst case is `n`
/// passes for a body of `n` statements, §5.3). Hitting the cap is sound —
/// substitution simply stops early — but is reported so the driver can
/// emit a remark.
pub const MAX_PASSES: usize = 64;

/// Substitution statistics (EXP6 measures `passes` and `backtracks`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IvSubReport {
    /// Auxiliary induction variables substituted away.
    pub substituted: usize,
    /// Scan passes over loop bodies.
    pub passes: usize,
    /// Candidates that succeeded only after being unblocked by an earlier
    /// substitution (the backtracking events).
    pub backtracks: usize,
    /// Some loop's re-scan was cut off by [`MAX_PASSES`] while still
    /// finding substitutions.
    pub budget_exhausted: bool,
    /// Per-loop substitution events (loops where at least one auxiliary
    /// induction variable was removed), with source spans.
    pub events: Vec<titanc_il::LoopEvent>,
}

impl IvSubReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: IvSubReport) {
        self.substituted += other.substituted;
        self.passes += other.passes;
        self.backtracks += other.backtracks;
        self.budget_exhausted |= other.budget_exhausted;
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(
    IvSubReport,
    [substituted, passes, backtracks, budget_exhausted, events]
);

/// Runs induction-variable substitution on every DO loop of the procedure.
pub fn induction_substitution(proc: &mut Procedure) -> IvSubReport {
    let mut report = IvSubReport::default();
    // Collect DO-loop ids; process innermost-first (postorder).
    let mut loop_ids = Vec::new();
    collect_do_loops_postorder(&proc.body, &mut loop_ids);
    for id in loop_ids {
        substitute_in_loop(proc, id, &mut report);
    }
    if report.substituted > 0 {
        proc.bump_generation();
    }
    report
}

fn collect_do_loops_postorder(block: &[Stmt], out: &mut Vec<titanc_il::StmtId>) {
    for s in block {
        for b in s.blocks() {
            collect_do_loops_postorder(b, out);
        }
        if matches!(
            s.kind,
            StmtKind::DoLoop { .. } | StmtKind::DoParallel { .. }
        ) {
            out.push(s.id);
        }
    }
}

struct LoopShape {
    lv: VarId,
    lo: Expr,
    hi: Expr,
    step: i64,
}

/// An identified auxiliary induction variable.
struct Candidate {
    v: VarId,
    def_pos: usize,
    /// signed increment expression (already negated for `-=` forms)
    inc: Expr,
}

fn substitute_in_loop(proc: &mut Procedure, loop_id: titanc_il::StmtId, report: &mut IvSubReport) {
    // repeat until no candidate substitutes; the worklist effect of
    // blocking/backtracking is realized by the re-scan, and `backtracks`
    // counts successes after the first pass.
    let mut pass = 0usize;
    let mut loop_subs = 0usize;
    loop {
        pass += 1;
        report.passes += 1;
        let subs = one_pass(proc, loop_id);
        report.substituted += subs;
        loop_subs += subs;
        if pass > 1 {
            report.backtracks += subs;
        }
        if subs == 0 {
            break;
        }
        // guard: worst case n passes (n = body length)
        if pass >= MAX_PASSES {
            report.budget_exhausted = true;
            break;
        }
    }
    if loop_subs > 0 {
        if let Some(s) = proc.find_stmt(loop_id) {
            let var = match &s.kind {
                StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
                    proc.var(*var).name.clone()
                }
                _ => String::new(),
            };
            report.events.push(titanc_il::LoopEvent {
                proc: proc.name.clone(),
                var,
                span: s.span,
                decision: titanc_il::LoopDecision::IvSubstituted {
                    substituted: loop_subs,
                },
            });
        }
    }
}

/// Performs one scan over the loop, substituting every currently-unblocked
/// candidate. Returns the number substituted.
fn one_pass(proc: &mut Procedure, loop_id: titanc_il::StmtId) -> usize {
    let shape;
    let body_snapshot;
    {
        let s = match proc.find_stmt(loop_id) {
            Some(s) => s,
            None => return 0,
        };
        let (var, lo, hi, step, body) = match &s.kind {
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                ..
            }
            | StmtKind::DoParallel {
                var,
                lo,
                hi,
                step,
                body,
            } => (*var, lo.clone(), hi.clone(), step.clone(), body.clone()),
            _ => return 0,
        };
        let step_c = match step.as_int() {
            Some(c) if c != 0 => c,
            _ => return 0, // symbolic stride: no substitution
        };
        if !invariant_in(proc, &body, &lo) || !invariant_in(proc, &body, &hi) {
            return 0;
        }
        shape = LoopShape {
            lv: var,
            lo,
            hi,
            step: step_c,
        };
        body_snapshot = body;
    }

    let candidates = find_candidates(proc, &shape, &body_snapshot);
    if candidates.is_empty() {
        return 0;
    }
    let mut count = 0;
    for cand in candidates {
        if apply_candidate(proc, loop_id, &shape, &cand) {
            count += 1;
        }
    }
    count
}

/// Finds unblocked candidates: single top-level def `v = origin ± c` where
/// the origin resolves to `v` through copies and `c` is loop-invariant.
fn find_candidates(proc: &Procedure, shape: &LoopShape, body: &[Stmt]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (pos, s) in body.iter().enumerate() {
        let v = match s.defined_var() {
            Some(v) => v,
            None => continue,
        };
        if v == shape.lv || !register_candidate(proc, v) {
            continue;
        }
        // single def across the whole body
        let total_defs = count_defs(body, v);
        if total_defs != 1 {
            continue;
        }
        let (op, lhs, rhs) = match &s.kind {
            StmtKind::Assign {
                lhs: LValue::Var(_),
                rhs: Expr::Binary { op, lhs, rhs, .. },
            } => (*op, lhs, rhs),
            _ => continue,
        };
        let resolve = |e: &Expr| match e {
            Expr::Var(w) => Some(resolve_copy(proc, body, pos, *w)),
            _ => None,
        };
        let (origin_l, origin_r) = (resolve(lhs), resolve(rhs));
        let (inc, _other_is_left) = match op {
            BinOp::Add if origin_l == Some(v) => ((**rhs).clone(), false),
            BinOp::Add if origin_r == Some(v) => ((**lhs).clone(), true),
            BinOp::Sub if origin_l == Some(v) => (
                Expr::unary(titanc_il::UnOp::Neg, ScalarType::Int, (**rhs).clone()),
                false,
            ),
            _ => continue,
        };
        // the increment must be invariant; if it reads another candidate
        // the candidate is blocked — it will be re-examined next pass.
        // Note the loop variable is defined by the DO header, not by a
        // body statement, so it needs an explicit check.
        if inc.reads_var(shape.lv) || inc.reads_var(v) || !invariant_in(proc, body, &inc) {
            continue;
        }
        let mut inc = inc;
        titanc_il::fold::fold_expr(&mut inc);
        out.push(Candidate {
            v,
            def_pos: pos,
            inc,
        });
    }
    out
}

fn count_defs(body: &[Stmt], v: VarId) -> usize {
    let mut n = 0;
    for s in body {
        if s.defined_var() == Some(v) {
            n += 1;
        }
        for b in s.blocks() {
            n += count_defs_deep(b, v);
        }
    }
    n
}

fn count_defs_deep(block: &[Stmt], v: VarId) -> usize {
    let mut n = 0;
    for s in block {
        if s.defined_var() == Some(v) {
            n += 1;
        }
        for b in s.blocks() {
            n += count_defs_deep(b, v);
        }
    }
    n
}

/// The iteration-index expression `k` = (lv - lo) / step, simplified for
/// unit strides.
fn iteration_index(shape: &LoopShape) -> Expr {
    let lv = Expr::var(shape.lv);
    let mut k = match shape.step {
        1 => Expr::ibinary(BinOp::Sub, lv, shape.lo.clone()),
        -1 => Expr::ibinary(BinOp::Sub, shape.lo.clone(), lv),
        s => Expr::ibinary(
            BinOp::Div,
            Expr::ibinary(BinOp::Sub, lv, shape.lo.clone()),
            Expr::int(s),
        ),
    };
    titanc_il::fold::fold_expr(&mut k);
    k
}

/// The trip-count expression `max(0, (hi - lo + step) / step)`.
fn trip_count(shape: &LoopShape) -> Expr {
    let span = Expr::ibinary(
        BinOp::Add,
        Expr::ibinary(BinOp::Sub, shape.hi.clone(), shape.lo.clone()),
        Expr::int(shape.step),
    );
    let mut t = Expr::ibinary(
        BinOp::Max,
        Expr::int(0),
        Expr::ibinary(BinOp::Div, span, Expr::int(shape.step)),
    );
    titanc_il::fold::fold_expr(&mut t);
    t
}

/// Substitutes one candidate: uses before the increment read
/// `v0 + k*c`, uses after it read `v0 + (k+1)*c`; `v0` snapshots the entry
/// value before the loop and a finalization after the loop restores `v` for
/// any later readers (dead-code elimination removes both when unused).
fn apply_candidate(
    proc: &mut Procedure,
    loop_id: titanc_il::StmtId,
    shape: &LoopShape,
    cand: &Candidate,
) -> bool {
    let kind = proc.var_scalar(cand.v);
    let v0 = proc.fresh_temp(match kind {
        ScalarType::Ptr => Type::ptr_to(Type::Void),
        ScalarType::Int => Type::Int,
        ScalarType::Char => Type::Char,
        ScalarType::Float => Type::Float,
        ScalarType::Double => Type::Double,
    });
    let k = iteration_index(shape);
    let affine = |iters: Expr| {
        let mut e = Expr::binary(
            BinOp::Add,
            kind,
            Expr::var(v0),
            Expr::ibinary(BinOp::Mul, iters, cand.inc.clone()),
        );
        titanc_il::fold::fold_expr(&mut e);
        e
    };
    let pre_value = affine(k.clone());
    let post_value = affine(Expr::ibinary(BinOp::Add, k, Expr::int(1)));
    let final_value = affine(trip_count(shape));

    let pre_stmt = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(v0),
        rhs: Expr::var(cand.v),
    });
    let final_stmt = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(cand.v),
        rhs: final_value,
    });

    // rewrite the loop body in place
    #[allow(clippy::too_many_arguments)]
    fn find_and_apply(
        block: &mut Vec<Stmt>,
        loop_id: titanc_il::StmtId,
        cand_v: VarId,
        def_pos: usize,
        pre_value: &Expr,
        post_value: &Expr,
        pre_stmt: Stmt,
        final_stmt: Stmt,
    ) -> bool {
        for i in 0..block.len() {
            if block[i].id == loop_id {
                if let StmtKind::DoLoop { body, .. } | StmtKind::DoParallel { body, .. } =
                    &mut block[i].kind
                {
                    for (p, s) in body.iter_mut().enumerate() {
                        let value = if p <= def_pos { pre_value } else { post_value };
                        crate::util::replace_reads(s, cand_v, value);
                    }
                }
                block.insert(i, pre_stmt);
                block.insert(i + 2, final_stmt);
                return true;
            }
            let mut done = false;
            let pre_c = pre_stmt.clone();
            let fin_c = final_stmt.clone();
            for b in block[i].blocks_mut() {
                if find_and_apply(
                    b,
                    loop_id,
                    cand_v,
                    def_pos,
                    pre_value,
                    post_value,
                    pre_c.clone(),
                    fin_c.clone(),
                ) {
                    done = true;
                    break;
                }
            }
            if done {
                return true;
            }
        }
        false
    }

    let mut body = std::mem::take(&mut proc.body);
    let ok = find_and_apply(
        &mut body,
        loop_id,
        cand.v,
        cand.def_pos,
        &pre_value,
        &post_value,
        pre_stmt,
        final_stmt,
    );
    proc.body = body;
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whiledo::convert_while_loops;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn prep(src: &str) -> Procedure {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        convert_while_loops(&mut proc);
        proc
    }

    #[test]
    fn substitutes_pointer_walk() {
        let mut proc =
            prep("void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }");
        let rep = induction_substitution(&mut proc);
        // a, b and n are all auxiliary induction variables
        assert_eq!(rep.substituted, 3, "{}", pretty_proc(&proc));
        let text = pretty_proc(&proc);
        // the walking pointers are replaced by affine expressions of the
        // dummy counter
        assert!(text.contains("dummy"), "{text}");
    }

    #[test]
    fn single_pass_for_simple_loops() {
        let mut proc = prep("void f(float *a, int n) { int i; for (i = 0; i < n; i++) *a++ = 0; }");
        let rep = induction_substitution(&mut proc);
        assert!(rep.substituted >= 1);
        // substitution finishes in one productive pass + one empty pass
        assert!(rep.passes <= 4, "passes = {}", rep.passes);
    }

    #[test]
    fn preserves_semantics_upcount() {
        let src = r#"
float out_x[16];
int main(void)
{
    float *p;
    int i;
    p = &out_x[0];
    for (i = 0; i < 16; i++) {
        *p++ = i * 2.0f;
    }
    return (int)out_x[15];
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn preserves_semantics_countdown() {
        let src = r#"
float out_x[16];
int main(void)
{
    float *p;
    int n;
    p = &out_x[0];
    n = 16;
    while (n) {
        *p++ = n * 1.0f;
        n--;
    }
    return (int)out_x[15];
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn preserves_semantics_variable_still_used_after_loop() {
        // p is read after the loop: finalization must restore it
        let src = r#"
float out_x[8];
int main(void)
{
    float *p, *base;
    int i;
    base = &out_x[0];
    p = base;
    for (i = 0; i < 8; i++)
        *p++ = i;
    return (int)(p - base);
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn zero_trip_loop_finalization_is_correct() {
        let src = r#"
float out_x[8];
int main(void)
{
    float *p, *base;
    int i, n;
    n = 0;
    base = &out_x[0];
    p = base;
    for (i = 0; i < n; i++)
        *p++ = i;
    return (int)(p - base);
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn derived_candidate_needs_second_pass() {
        // q depends on p's increment; p substitutes first, unblocking
        // nothing here but exercising the rescan
        let src = r#"
float out_x[8];
int main(void)
{
    float *p;
    int i, stride;
    stride = 1;
    p = &out_x[0];
    for (i = 0; i < 8; i++) {
        *p = i;
        p = p + stride;
    }
    return (int)out_x[7];
}
"#;
        check_equivalence(src);
    }

    fn check_equivalence(src: &str) {
        let prog = compile_to_il(src).unwrap();
        let mut opt_prog = prog.clone();
        convert_while_loops(&mut opt_prog.procs[0]);
        let rep = induction_substitution(&mut opt_prog.procs[0]);
        let cfg = titanc_titan::MachineConfig::default;
        let (before, _) =
            titanc_titan::observe(&prog, cfg(), "main", &[("out_x", ScalarType::Float, 8)])
                .unwrap();
        let (after, _) =
            titanc_titan::observe(&opt_prog, cfg(), "main", &[("out_x", ScalarType::Float, 8)])
                .unwrap_or_else(|e| {
                    panic!(
                        "optimized program failed: {e}\n{}",
                        pretty_proc(&opt_prog.procs[0])
                    )
                });
        assert_eq!(
            before,
            after,
            "report {rep:?}\n{}",
            pretty_proc(&opt_prog.procs[0])
        );
    }
}
